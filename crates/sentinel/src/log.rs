//! The audit log: every rule firing, denial, alert and action failure.
//!
//! Active security needs history ("access requests … more than a certain
//! number of times within a duration"), administrators need reports, and the
//! tests need an observable record of what the rule system did.

use serde::{Deserialize, Serialize};
use snoop::{EventId, Ts};
use std::collections::VecDeque;
use std::fmt;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditKind {
    /// A rule's conditions held and its Then actions ran.
    Fired,
    /// A rule's conditions failed and its Else actions ran.
    ElseTaken,
    /// A `raise error` action: the request was denied.
    Denied,
    /// An explicit `<allow>` action.
    Allowed,
    /// An active-security alert for the administrators.
    Alert,
    /// A state action was rejected by the monitor.
    ActionRejected,
    /// Rule machinery problem (missing parameter, unknown event, …).
    EngineError,
    /// Rules were enabled/disabled in bulk.
    RuleToggle,
}

impl fmt::Display for AuditKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditKind::Fired => "fired",
            AuditKind::ElseTaken => "else",
            AuditKind::Denied => "denied",
            AuditKind::Allowed => "allowed",
            AuditKind::Alert => "ALERT",
            AuditKind::ActionRejected => "action-rejected",
            AuditKind::EngineError => "engine-error",
            AuditKind::RuleToggle => "rule-toggle",
        };
        f.write_str(s)
    }
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Detector time of the triggering occurrence.
    pub time: Ts,
    /// Kind of record.
    pub kind: AuditKind,
    /// Rule that produced it, if any.
    pub rule: Option<String>,
    /// Triggering event.
    pub event: Option<EventId>,
    /// Free-form message (error text, alert text, …).
    pub message: String,
}

impl fmt::Display for AuditEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.time, self.kind)?;
        if let Some(r) = &self.rule {
            write!(f, " rule={r}")?;
        }
        if let Some(e) = &self.event {
            write!(f, " on={e}")?;
        }
        if !self.message.is_empty() {
            write!(f, ": {}", self.message)?;
        }
        Ok(())
    }
}

/// Audit log with simple query helpers and an optional retention cap.
///
/// Uncapped (the default) it is append-only. With a cap set, the oldest
/// entries are evicted as new ones arrive; running totals (`denial_count`,
/// `alert_count`, `total_len`) still count evicted entries, so
/// threshold-style queries stay correct after eviction. Only
/// `denials_since` and `entries` are limited to what is retained.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AuditLog {
    entries: VecDeque<AuditEntry>,
    /// Max retained entries; `None` = unbounded.
    #[serde(default)]
    cap: Option<usize>,
    /// Entries evicted by the cap, total.
    #[serde(default)]
    evicted: usize,
    /// Evicted entries that were denials.
    #[serde(default)]
    evicted_denials: usize,
    /// Evicted entries that were alerts.
    #[serde(default)]
    evicted_alerts: usize,
}

impl AuditLog {
    /// An empty, unbounded log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// An empty log retaining at most `cap` entries.
    pub fn with_cap(cap: usize) -> AuditLog {
        AuditLog {
            cap: Some(cap),
            ..AuditLog::default()
        }
    }

    /// Change the retention cap (`None` = unbounded). Shrinking evicts the
    /// oldest entries immediately.
    pub fn set_cap(&mut self, cap: Option<usize>) {
        self.cap = cap;
        self.enforce_cap();
    }

    /// The retention cap in force.
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    fn enforce_cap(&mut self) {
        let Some(cap) = self.cap else {
            return;
        };
        while self.entries.len() > cap {
            let Some(old) = self.entries.pop_front() else {
                break;
            };
            self.evicted += 1;
            match old.kind {
                AuditKind::Denied => self.evicted_denials += 1,
                AuditKind::Alert => self.evicted_alerts += 1,
                _ => {}
            }
        }
    }

    /// Append an entry, evicting the oldest if the cap is exceeded.
    pub fn push(&mut self, entry: AuditEntry) {
        self.entries.push_back(entry);
        self.enforce_cap();
    }

    /// The retained entries in order (oldest first).
    pub fn entries(&self) -> &VecDeque<AuditEntry> {
        &self.entries
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total entries ever recorded, including evicted ones.
    pub fn total_len(&self) -> usize {
        self.entries.len() + self.evicted
    }

    /// Entries evicted by the retention cap so far.
    pub fn evicted_count(&self) -> usize {
        self.evicted
    }

    /// Is the log empty (nothing retained)?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Retained entries of one kind.
    pub fn of_kind(&self, kind: &AuditKind) -> impl Iterator<Item = &AuditEntry> {
        let kind = kind.clone();
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// Total denials recorded, including evicted ones.
    pub fn denial_count(&self) -> usize {
        self.evicted_denials + self.of_kind(&AuditKind::Denied).count()
    }

    /// Total alerts recorded, including evicted ones.
    pub fn alert_count(&self) -> usize {
        self.evicted_alerts + self.of_kind(&AuditKind::Alert).count()
    }

    /// Denials with `time > since` (active-security sliding windows). Only
    /// retained entries are visible; size the cap above the largest window.
    pub fn denials_since(&self, since: Ts) -> usize {
        self.entries
            .iter()
            .filter(|e| e.kind == AuditKind::Denied && e.time > since)
            .count()
    }

    /// Drop everything, including eviction totals (test hygiene between
    /// scenario phases). The cap itself is kept.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.evicted = 0;
        self.evicted_denials = 0;
        self.evicted_alerts = 0;
    }

    /// Render the whole log (administrator "report generation").
    pub fn report(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: AuditKind, t: u64) -> AuditEntry {
        AuditEntry {
            time: Ts::from_secs(t),
            kind,
            rule: Some("r".into()),
            event: Some(EventId(1)),
            message: "m".into(),
        }
    }

    #[test]
    fn counts_and_windows() {
        let mut log = AuditLog::new();
        log.push(entry(AuditKind::Denied, 1));
        log.push(entry(AuditKind::Denied, 5));
        log.push(entry(AuditKind::Alert, 6));
        log.push(entry(AuditKind::Fired, 7));
        assert_eq!(log.denial_count(), 2);
        assert_eq!(log.alert_count(), 1);
        assert_eq!(log.denials_since(Ts::from_secs(1)), 1);
        assert_eq!(log.denials_since(Ts::ZERO), 2);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn retention_cap_evicts_but_totals_survive() {
        let mut log = AuditLog::with_cap(3);
        for t in 0..10 {
            let kind = if t % 2 == 0 {
                AuditKind::Denied
            } else {
                AuditKind::Alert
            };
            log.push(entry(kind, t));
        }
        assert_eq!(log.len(), 3, "only the cap is retained");
        assert_eq!(log.total_len(), 10);
        assert_eq!(log.evicted_count(), 7);
        // Totals count evicted entries: 5 denials (even t), 5 alerts.
        assert_eq!(log.denial_count(), 5);
        assert_eq!(log.alert_count(), 5);
        // The retained window is the newest entries.
        assert_eq!(log.entries().front().unwrap().time, Ts::from_secs(7));
        // Windowed queries see only the retained tail.
        assert_eq!(log.denials_since(Ts::ZERO), 1);
        log.clear();
        assert_eq!(log.denial_count(), 0);
        assert_eq!(log.cap(), Some(3), "cap survives clear");
    }

    #[test]
    fn shrinking_cap_evicts_immediately() {
        let mut log = AuditLog::new();
        for t in 0..5 {
            log.push(entry(AuditKind::Denied, t));
        }
        assert_eq!(log.denial_count(), 5);
        log.set_cap(Some(2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.denial_count(), 5, "totals unchanged by eviction");
        log.set_cap(None);
        log.push(entry(AuditKind::Denied, 9));
        assert_eq!(log.len(), 3);
        assert_eq!(log.denial_count(), 6);
    }

    #[test]
    fn report_formats_entries() {
        let mut log = AuditLog::new();
        log.push(entry(AuditKind::Alert, 3));
        let r = log.report();
        assert!(r.contains("ALERT"));
        assert!(r.contains("rule=r"));
        assert!(r.contains("on=E1"));
        log.clear();
        assert!(log.is_empty());
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn audit_log_serializes_round_trip() {
        let mut log = AuditLog::new();
        log.push(AuditEntry {
            time: Ts::from_secs(1),
            kind: AuditKind::Denied,
            rule: Some("AAR2_PC".into()),
            event: Some(EventId(7)),
            message: "Access Denied".into(),
        });
        let json = serde_json::to_string(&log).unwrap();
        let back: AuditLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries(), log.entries());
    }
}
