//! The audit log: every rule firing, denial, alert and action failure.
//!
//! Active security needs history ("access requests … more than a certain
//! number of times within a duration"), administrators need reports, and the
//! tests need an observable record of what the rule system did.

use serde::{Deserialize, Serialize};
use snoop::{EventId, Ts};
use std::fmt;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditKind {
    /// A rule's conditions held and its Then actions ran.
    Fired,
    /// A rule's conditions failed and its Else actions ran.
    ElseTaken,
    /// A `raise error` action: the request was denied.
    Denied,
    /// An explicit `<allow>` action.
    Allowed,
    /// An active-security alert for the administrators.
    Alert,
    /// A state action was rejected by the monitor.
    ActionRejected,
    /// Rule machinery problem (missing parameter, unknown event, …).
    EngineError,
    /// Rules were enabled/disabled in bulk.
    RuleToggle,
}

impl fmt::Display for AuditKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditKind::Fired => "fired",
            AuditKind::ElseTaken => "else",
            AuditKind::Denied => "denied",
            AuditKind::Allowed => "allowed",
            AuditKind::Alert => "ALERT",
            AuditKind::ActionRejected => "action-rejected",
            AuditKind::EngineError => "engine-error",
            AuditKind::RuleToggle => "rule-toggle",
        };
        f.write_str(s)
    }
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Detector time of the triggering occurrence.
    pub time: Ts,
    /// Kind of record.
    pub kind: AuditKind,
    /// Rule that produced it, if any.
    pub rule: Option<String>,
    /// Triggering event.
    pub event: Option<EventId>,
    /// Free-form message (error text, alert text, …).
    pub message: String,
}

impl fmt::Display for AuditEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.time, self.kind)?;
        if let Some(r) = &self.rule {
            write!(f, " rule={r}")?;
        }
        if let Some(e) = &self.event {
            write!(f, " on={e}")?;
        }
        if !self.message.is_empty() {
            write!(f, ": {}", self.message)?;
        }
        Ok(())
    }
}

/// Append-only audit log with simple query helpers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Append an entry.
    pub fn push(&mut self, entry: AuditEntry) {
        self.entries.push(entry);
    }

    /// All entries in order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries of one kind.
    pub fn of_kind(&self, kind: &AuditKind) -> impl Iterator<Item = &AuditEntry> {
        let kind = kind.clone();
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// Total denials recorded.
    pub fn denial_count(&self) -> usize {
        self.of_kind(&AuditKind::Denied).count()
    }

    /// Total alerts recorded.
    pub fn alert_count(&self) -> usize {
        self.of_kind(&AuditKind::Alert).count()
    }

    /// Denials with `time > since` (active-security sliding windows).
    pub fn denials_since(&self, since: Ts) -> usize {
        self.entries
            .iter()
            .filter(|e| e.kind == AuditKind::Denied && e.time > since)
            .count()
    }

    /// Drop everything (test hygiene between scenario phases).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Render the whole log (administrator "report generation").
    pub fn report(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: AuditKind, t: u64) -> AuditEntry {
        AuditEntry {
            time: Ts::from_secs(t),
            kind,
            rule: Some("r".into()),
            event: Some(EventId(1)),
            message: "m".into(),
        }
    }

    #[test]
    fn counts_and_windows() {
        let mut log = AuditLog::new();
        log.push(entry(AuditKind::Denied, 1));
        log.push(entry(AuditKind::Denied, 5));
        log.push(entry(AuditKind::Alert, 6));
        log.push(entry(AuditKind::Fired, 7));
        assert_eq!(log.denial_count(), 2);
        assert_eq!(log.alert_count(), 1);
        assert_eq!(log.denials_since(Ts::from_secs(1)), 1);
        assert_eq!(log.denials_since(Ts::ZERO), 2);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn report_formats_entries() {
        let mut log = AuditLog::new();
        log.push(entry(AuditKind::Alert, 3));
        let r = log.report();
        assert!(r.contains("ALERT"));
        assert!(r.contains("rule=r"));
        assert!(r.contains("on=E1"));
        log.clear();
        assert!(log.is_empty());
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn audit_log_serializes_round_trip() {
        let mut log = AuditLog::new();
        log.push(AuditEntry {
            time: Ts::from_secs(1),
            kind: AuditKind::Denied,
            rule: Some("AAR2_PC".into()),
            event: Some(EventId(7)),
            message: "Access Denied".into(),
        });
        let json = serde_json::to_string(&log).unwrap();
        let back: AuditLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries(), log.entries());
    }
}
