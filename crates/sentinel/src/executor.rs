//! The rule executor: couples the event detector, the rule pool and the
//! authorization state.
//!
//! An event occurrence triggers the rules subscribed to it (highest priority
//! first); each rule's **W** conditions are evaluated against the
//! [`AuthState`]; **T** or **E** actions run accordingly. Actions may raise
//! further primitive events — the paper's *nested/cascaded rules* (Rule 4's
//! `addSessionRoleR1` → CC₁, Rule 8's CFD pair, Rule 9's transaction-based
//! activation) — which are processed in the same dispatch up to a depth
//! limit.

use crate::effect::{action_footprint, check_footprint, runtime_target, Access, Region, RuleTouch};
use crate::lang::{ActionSpec, Check, CondExpr};
use crate::log::{AuditEntry, AuditKind, AuditLog};
use crate::pool::RulePool;
use crate::rule::Rule;
use crate::state::{ActionOutcome, AuthState};
use serde::{Deserialize, Serialize};
use snoop::{Detection, Detector, DetectorError, Dur, EventId, Occurrence, Params, Ts};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Outcome of one dispatch (an external event plus everything it cascaded
/// into).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Rules whose Then actions ran.
    pub fired: usize,
    /// Rules whose Else actions ran.
    pub else_taken: usize,
    /// Denial messages (`raise error` actions and rejected state actions).
    pub denials: Vec<String>,
    /// Number of explicit `<allow>` actions.
    pub allows: usize,
    /// Alerts raised.
    pub alerts: Vec<String>,
    /// Engine errors (missing parameters, unknown events, depth exceeded).
    pub errors: Vec<String>,
    /// Number of state-changing actions that actually applied: successful
    /// monitor mutations (activations, assignments, role status), rule
    /// enable/disable toggles and timer cancellations. Zero means the
    /// dispatch was decision-only, which lets callers keep published
    /// read-path snapshots valid across it.
    pub mutations: usize,
    /// Deepest cascade level at which any rule ran during this dispatch
    /// (0 = only directly-triggered rules; each synchronous `raise`
    /// adds one). Checkable against the static analyzer's proved bound.
    pub max_depth: usize,
    /// State regions each rule execution actually touched, with
    /// runtime-resolved targets. Empty unless
    /// [`Executor::record_effects`] is set; checkable against the static
    /// analyzer's declared footprints (observed ⊆ declared).
    pub touches: Vec<RuleTouch>,
}

impl ExecReport {
    /// Was the request denied by any rule?
    pub fn denied(&self) -> bool {
        !self.denials.is_empty()
    }

    /// Merge a sub-report (cascade accumulation).
    pub(crate) fn absorb(&mut self, other: ExecReport) {
        self.fired += other.fired;
        self.else_taken += other.else_taken;
        self.denials.extend(other.denials);
        self.allows += other.allows;
        self.alerts.extend(other.alerts);
        self.errors.extend(other.errors);
        self.mutations += other.mutations;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.touches.extend(other.touches);
    }
}

/// Drives rule evaluation. Stateless apart from configuration; all mutable
/// state lives in the detector, pool, auth state and log it is handed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Executor {
    /// Maximum cascade depth before the executor cuts a rule loop.
    pub max_cascade_depth: usize,
    /// Skip the per-dispatch cascade-depth guard.
    ///
    /// Only set this when a static analysis has *proved* the pool free of
    /// synchronous rule cycles (`policy::analyze`, verdict
    /// `ProvedTerminating`): the guard is the last line of defence against
    /// a looping pool, and with this flag an actual loop runs unbounded.
    /// Legitimate cascades deeper than `max_cascade_depth` then complete
    /// instead of being cut.
    #[serde(default)]
    pub assume_acyclic: bool,
    /// Use the independence fast path for events listed in
    /// [`Executor::independent_events`]: the enabled-rule batch for such
    /// an event is snapshotted once per occurrence instead of re-fetching
    /// and re-checking the pool before every rule.
    ///
    /// Only set this from the effect analysis (`policy::analyze`): the
    /// snapshot is sound exactly when no rule triggered by the event can
    /// (transitively) toggle rule enablement — the analyzer's
    /// `independent_events` certificate. Deny-overrides short-circuiting
    /// is preserved either way.
    #[serde(default)]
    pub assume_independent: bool,
    /// Events whose triggered rules were proved free of (effective)
    /// rule-toggle writes — the license for the fast path above.
    #[serde(default)]
    pub independent_events: BTreeSet<EventId>,
    /// Record every state region each rule execution touches into
    /// [`ExecReport::touches`] (runtime-resolved targets). Used by the
    /// simulator to certify declared footprints dynamically.
    #[serde(default)]
    pub record_effects: bool,
}

impl Default for Executor {
    fn default() -> Executor {
        Executor {
            max_cascade_depth: 32,
            assume_acyclic: false,
            assume_independent: false,
            independent_events: BTreeSet::new(),
            record_effects: false,
        }
    }
}

/// Everything the executor operates on, borrowed together.
pub struct Runtime<'a> {
    /// The event detector (clock, event graph).
    pub detector: &'a mut Detector,
    /// The rule pool.
    pub pool: &'a mut RulePool,
    /// The guarded authorization state.
    pub state: &'a mut dyn AuthState,
    /// The audit log.
    pub log: &'a mut AuditLog,
}

/// Register a rule: watches its triggering event in the detector (so
/// occurrences are delivered) and adds it to the pool.
pub fn attach_rule(
    detector: &mut Detector,
    pool: &mut RulePool,
    rule: Rule,
) -> crate::rule::RuleId {
    detector.watch(rule.event);
    pool.add(rule)
}

impl Executor {
    /// A new executor with the default depth limit.
    pub fn new() -> Executor {
        Executor::default()
    }

    /// Raise a primitive event and run all triggered (and cascaded) rules.
    pub fn dispatch(
        &self,
        rt: &mut Runtime<'_>,
        event: EventId,
        params: Params,
    ) -> Result<ExecReport, DetectorError> {
        let detections = rt.detector.raise(event, params)?;
        Ok(self.process(rt, detections, 0))
    }

    /// Raise a primitive event by name.
    pub fn dispatch_named(
        &self,
        rt: &mut Runtime<'_>,
        event: &str,
        params: Params,
    ) -> Result<ExecReport, DetectorError> {
        let detections = rt.detector.raise_named(event, params)?;
        Ok(self.process(rt, detections, 0))
    }

    /// Advance the detector clock, running rules for every temporal event
    /// that fires on the way.
    ///
    /// Advancing happens timer by timer: rules triggered by a firing run
    /// *at* that instant (so their conditions, cascades and audit entries
    /// see the correct logical time), before the clock moves on.
    pub fn advance_to(&self, rt: &mut Runtime<'_>, ts: Ts) -> Result<ExecReport, DetectorError> {
        let mut report = ExecReport::default();
        while let Some(at) = rt.detector.next_timer_at().filter(|&at| at <= ts) {
            let detections = rt.detector.advance_to(at)?;
            report.absorb(self.process(rt, detections, 0));
        }
        let detections = rt.detector.advance_to(ts)?;
        report.absorb(self.process(rt, detections, 0));
        Ok(report)
    }

    /// Advance the detector clock by a duration.
    pub fn advance(&self, rt: &mut Runtime<'_>, d: Dur) -> Result<ExecReport, DetectorError> {
        let now = rt.detector.now();
        self.advance_to(rt, now + d)
    }

    /// Run rules for already-collected detections.
    pub fn process(
        &self,
        rt: &mut Runtime<'_>,
        detections: Vec<Detection>,
        depth: usize,
    ) -> ExecReport {
        let mut report = ExecReport::default();
        for det in detections {
            let occ = det.occurrence;
            if self.assume_independent && self.independent_events.contains(&occ.event) {
                // Fast path (toggle-independence certificate): no rule
                // triggered by this event can — directly or through any
                // synchronous cascade — flip rule enablement, so the
                // enabled batch is snapshotted once and the per-rule pool
                // refetch + enabled re-check are skipped. Deny-overrides
                // short-circuiting below is untouched.
                let batch: Vec<Arc<Rule>> = rt
                    .pool
                    .triggered_by(occ.event)
                    .iter()
                    .filter_map(|&id| rt.pool.get_arc(id))
                    .filter(|r| r.enabled)
                    .collect();
                for rule in batch {
                    let sub = self.run_rule(rt, &rule, &occ, depth);
                    let denied = !sub.denials.is_empty();
                    report.absorb(sub);
                    if denied {
                        break;
                    }
                }
                continue;
            }
            let rule_ids = rt.pool.triggered_by(occ.event).to_vec();
            for id in rule_ids {
                let Some(rule) = rt.pool.get_arc(id) else {
                    continue;
                };
                if !rule.enabled {
                    continue;
                }
                let sub = self.run_rule(rt, &rule, &occ, depth);
                let denied = !sub.denials.is_empty();
                report.absorb(sub);
                // Deny-overrides, priority-ordered: once a rule denies this
                // occurrence, lower-priority rules on the same occurrence
                // are skipped. This is what lets generated guard rules
                // (specialized caps, SoD guards) precede the apply rule.
                if denied {
                    break;
                }
            }
        }
        report
    }

    fn run_rule(
        &self,
        rt: &mut Runtime<'_>,
        rule: &Rule,
        occ: &Occurrence,
        depth: usize,
    ) -> ExecReport {
        let mut report = ExecReport {
            max_depth: depth,
            ..ExecReport::default()
        };
        let mut traced = Vec::new();
        let sink = if self.record_effects {
            Some(&mut traced)
        } else {
            None
        };
        let cond = match eval_cond_rec(&rule.when, occ, rt.state, rt.detector, sink) {
            Ok(b) => b,
            Err(msg) => {
                let m = format!("condition error in {}: {msg}", rule.name);
                rt.log.push(AuditEntry {
                    time: rt.detector.now(),
                    kind: AuditKind::EngineError,
                    rule: Some(rule.name.clone()),
                    event: Some(occ.event),
                    message: m.clone(),
                });
                report.errors.push(m);
                false
            }
        };
        report
            .touches
            .extend(traced.into_iter().map(|region| RuleTouch {
                rule: rule.name.clone(),
                access: Access::Read,
                region,
            }));
        let (actions, kind) = if cond {
            report.fired += 1;
            (&rule.then, AuditKind::Fired)
        } else {
            report.else_taken += 1;
            (&rule.otherwise, AuditKind::ElseTaken)
        };
        rt.log.push(AuditEntry {
            time: rt.detector.now(),
            kind,
            rule: Some(rule.name.clone()),
            event: Some(occ.event),
            message: String::new(),
        });
        for action in actions {
            let before = report.denials.len();
            let sub = self.run_action(rt, rule, action, occ, depth);
            report.absorb(sub);
            // A rejected/denying action aborts the rest of this rule's
            // action list (later actions usually depend on its success,
            // e.g. raising the "role added" event after adding it).
            if report.denials.len() > before {
                break;
            }
        }
        report
    }

    fn run_action(
        &self,
        rt: &mut Runtime<'_>,
        rule: &Rule,
        action: &ActionSpec,
        occ: &Occurrence,
        depth: usize,
    ) -> ExecReport {
        let mut report = ExecReport::default();
        if self.record_effects {
            // Record at the executed site with runtime-resolved targets —
            // the declared (static) footprint must cover every one.
            let fp = action_footprint(action, |p| runtime_target(p, occ));
            let name = &rule.name;
            report
                .touches
                .extend(fp.reads.into_iter().map(|region| RuleTouch {
                    rule: name.clone(),
                    access: Access::Read,
                    region,
                }));
            report
                .touches
                .extend(fp.writes.into_iter().map(|region| RuleTouch {
                    rule: name.clone(),
                    access: Access::Write,
                    region,
                }));
        }
        let now = rt.detector.now();
        let log_entry = |rt: &mut Runtime<'_>, kind: AuditKind, message: String| {
            rt.log.push(AuditEntry {
                time: now,
                kind,
                rule: Some(rule.name.clone()),
                event: Some(occ.event),
                message,
            });
        };
        // Resolve an integer argument or record an engine error.
        macro_rules! arg {
            ($p:expr) => {
                match $p.resolve_int(occ) {
                    Some(v) => v,
                    None => {
                        let m = format!("rule {}: parameter {} missing in {}", rule.name, $p, occ);
                        log_entry(rt, AuditKind::EngineError, m.clone());
                        report.errors.push(m);
                        return report;
                    }
                }
            };
        }

        match action {
            ActionSpec::Allow => {
                report.allows += 1;
                log_entry(rt, AuditKind::Allowed, String::new());
            }
            ActionSpec::RaiseError(m) => {
                report.denials.push(m.clone());
                log_entry(rt, AuditKind::Denied, m.clone());
            }
            ActionSpec::Alert(m) => {
                report.alerts.push(m.clone());
                log_entry(rt, AuditKind::Alert, m.clone());
            }
            ActionSpec::RaiseEvent { event, params } => {
                if !self.assume_acyclic && depth + 1 > self.max_cascade_depth {
                    let m = format!(
                        "rule {}: cascade depth {} exceeded raising {event}",
                        rule.name, self.max_cascade_depth
                    );
                    log_entry(rt, AuditKind::EngineError, m.clone());
                    report.errors.push(m);
                    return report;
                }
                let mut p = Params::new();
                for (name, src) in params {
                    match src.resolve(occ) {
                        Some(v) => p.set(name.clone(), v),
                        None => {
                            let m = format!(
                                "rule {}: parameter {src} missing for raised event {event}",
                                rule.name
                            );
                            log_entry(rt, AuditKind::EngineError, m.clone());
                            report.errors.push(m);
                            return report;
                        }
                    }
                }
                match rt.detector.raise_named(event, p) {
                    Ok(dets) => {
                        let sub = self.process(rt, dets, depth + 1);
                        report.absorb(sub);
                    }
                    Err(e) => {
                        let m = format!("rule {}: raise {event} failed: {e}", rule.name);
                        log_entry(rt, AuditKind::EngineError, m.clone());
                        report.errors.push(m);
                    }
                }
            }
            ActionSpec::CancelPlus { event, key_param } => {
                let Some(id) = rt.detector.lookup(event) else {
                    let m = format!("rule {}: cancelPlus unknown event {event}", rule.name);
                    log_entry(rt, AuditKind::EngineError, m.clone());
                    report.errors.push(m);
                    return report;
                };
                let key = occ.params.get(key_param).cloned();
                let n = rt.detector.cancel_timers_where(id, |base| {
                    base.is_some_and(|b| b.params.get(key_param) == key.as_ref())
                });
                report.mutations += n;
            }
            ActionSpec::DisableRuleClass(c) => {
                let n = rt.pool.set_class_enabled(*c, false);
                report.mutations += 1;
                log_entry(rt, AuditKind::RuleToggle, format!("disabled {n} {c} rules"));
            }
            ActionSpec::EnableRuleClass(c) => {
                let n = rt.pool.set_class_enabled(*c, true);
                report.mutations += 1;
                log_entry(rt, AuditKind::RuleToggle, format!("enabled {n} {c} rules"));
            }
            ActionSpec::DisableRule(name) => {
                rt.pool.set_enabled(name, false);
                report.mutations += 1;
                log_entry(rt, AuditKind::RuleToggle, format!("disabled rule {name}"));
            }
            ActionSpec::EnableRule(name) => {
                rt.pool.set_enabled(name, true);
                report.mutations += 1;
                log_entry(rt, AuditKind::RuleToggle, format!("enabled rule {name}"));
            }
            ActionSpec::AddSessionRole {
                user,
                session,
                role,
            } => {
                let (u, s, r) = (arg!(user), arg!(session), arg!(role));
                self.apply(rt, &mut report, rule, occ, |st| {
                    st.add_session_role(u, s, r)
                });
            }
            ActionSpec::DropSessionRole {
                user,
                session,
                role,
            } => {
                let (u, s, r) = (arg!(user), arg!(session), arg!(role));
                self.apply(rt, &mut report, rule, occ, |st| {
                    st.drop_session_role(u, s, r)
                });
            }
            ActionSpec::DeactivateRoleEverywhere(role) => {
                let r = arg!(role);
                self.apply(rt, &mut report, rule, occ, |st| {
                    st.deactivate_role_everywhere(r)
                });
            }
            ActionSpec::EnableRole(role) => {
                let r = arg!(role);
                self.apply(rt, &mut report, rule, occ, |st| st.enable_role(r));
            }
            ActionSpec::DisableRole { role, deactivate } => {
                let r = arg!(role);
                let d = *deactivate;
                self.apply(rt, &mut report, rule, occ, |st| st.disable_role(r, d));
            }
            ActionSpec::AssignUser { user, role } => {
                let (u, r) = (arg!(user), arg!(role));
                self.apply(rt, &mut report, rule, occ, |st| st.assign_user(u, r));
            }
            ActionSpec::DeassignUser { user, role } => {
                let (u, r) = (arg!(user), arg!(role));
                self.apply(rt, &mut report, rule, occ, |st| st.deassign_user(u, r));
            }
            ActionSpec::Custom { name, args } => {
                let mut resolved = Vec::with_capacity(args.len());
                for a in args {
                    resolved.push(arg!(a));
                }
                let outcome = rt.state.custom_action(name, &resolved, occ);
                match outcome {
                    ActionOutcome::Done => report.mutations += 1,
                    ActionOutcome::Rejected(m) => {
                        report.denials.push(m.clone());
                        log_entry(rt, AuditKind::ActionRejected, m);
                    }
                }
            }
        }
        report
    }

    fn apply(
        &self,
        rt: &mut Runtime<'_>,
        report: &mut ExecReport,
        rule: &Rule,
        occ: &Occurrence,
        f: impl FnOnce(&mut dyn AuthState) -> ActionOutcome,
    ) {
        match f(rt.state) {
            ActionOutcome::Done => report.mutations += 1,
            ActionOutcome::Rejected(m) => {
                report.denials.push(m.clone());
                rt.log.push(AuditEntry {
                    time: rt.detector.now(),
                    kind: AuditKind::ActionRejected,
                    rule: Some(rule.name.clone()),
                    event: Some(occ.event),
                    message: m,
                });
            }
        }
    }
}

/// Evaluate a condition expression. `Err` carries a description of a
/// malformed rule (missing parameter / unknown event name).
pub fn eval_cond(
    cond: &CondExpr,
    occ: &Occurrence,
    state: &dyn AuthState,
    detector: &Detector,
) -> Result<bool, String> {
    eval_cond_rec(cond, occ, state, detector, None)
}

/// [`eval_cond`] with an optional effect sink: every *evaluated* check
/// appends the regions it read (runtime-resolved targets). Short-circuited
/// branches record nothing — observed effects are what actually ran.
fn eval_cond_rec(
    cond: &CondExpr,
    occ: &Occurrence,
    state: &dyn AuthState,
    detector: &Detector,
    mut sink: Option<&mut Vec<Region>>,
) -> Result<bool, String> {
    match cond {
        CondExpr::True => Ok(true),
        CondExpr::False => Ok(false),
        CondExpr::Not(c) => Ok(!eval_cond_rec(c, occ, state, detector, sink)?),
        CondExpr::All(v) => {
            for c in v {
                if !eval_cond_rec(c, occ, state, detector, sink.as_deref_mut())? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        CondExpr::Any(v) => {
            for c in v {
                if eval_cond_rec(c, occ, state, detector, sink.as_deref_mut())? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        CondExpr::If {
            guard,
            then,
            otherwise,
        } => {
            if eval_cond_rec(guard, occ, state, detector, sink.as_deref_mut())? {
                eval_cond_rec(then, occ, state, detector, sink)
            } else {
                eval_cond_rec(otherwise, occ, state, detector, sink)
            }
        }
        CondExpr::Check(check) => {
            if let Some(sink) = sink {
                sink.extend(check_footprint(check, |p| runtime_target(p, occ)).reads);
            }
            eval_check(check, occ, state, detector)
        }
    }
}

fn eval_check(
    check: &Check,
    occ: &Occurrence,
    state: &dyn AuthState,
    detector: &Detector,
) -> Result<bool, String> {
    let int = |p: &crate::lang::ParamRef| {
        p.resolve_int(occ)
            .ok_or_else(|| format!("parameter {p} missing or not an id in {occ}"))
    };
    match check {
        Check::UserExists(u) => Ok(state.user_exists(int(u)?)),
        Check::SessionExists(s) => Ok(state.session_exists(int(s)?)),
        Check::SessionOwnedBy { session, user } => {
            Ok(state.session_owned_by(int(session)?, int(user)?))
        }
        Check::RoleNotActive { session, role } => Ok(!state.role_active(int(session)?, int(role)?)),
        Check::RoleActive { session, role } => Ok(state.role_active(int(session)?, int(role)?)),
        Check::Assigned { user, role } => Ok(state.assigned(int(user)?, int(role)?)),
        Check::Authorized { user, role } => Ok(state.authorized(int(user)?, int(role)?)),
        Check::DsdSatisfied { session, role } => Ok(state.dsd_satisfied(int(session)?, int(role)?)),
        Check::RoleEnabled(r) => Ok(state.role_enabled(int(r)?)),
        Check::RoleActiveAnywhere(r) => Ok(state.role_active_anywhere(int(r)?)),
        Check::RoleCardinalityBelow { role, user, max } => {
            let r = int(role)?;
            let u = int(user)?;
            // A user already active in the role does not consume a new slot.
            Ok(state.user_active_in_role(u, r) || state.active_users_of_role(r) < *max)
        }
        Check::UserCardinalityBelow { user, role, max } => {
            let u = int(user)?;
            let r = int(role)?;
            Ok(state.user_active_in_role(u, r) || state.active_roles_of_user(u) < *max)
        }
        Check::UserCapOk { user, role } => Ok(state.user_cap_ok(int(user)?, int(role)?)),
        Check::SessionHasPermission { session, op, obj } => {
            Ok(state.session_has_permission(int(session)?, int(op)?, int(obj)?))
        }
        Check::SourceIs(name) => {
            let id = detector
                .lookup(name)
                .ok_or_else(|| format!("unknown event {name:?} in SourceIs"))?;
            Ok(occ.has_source(id))
        }
        Check::ParamEquals { name, value } => Ok(occ.params.get(name) == Some(value)),
        Check::Custom { name, args } => {
            let mut resolved = Vec::with_capacity(args.len());
            for a in args {
                resolved.push(int(a)?);
            }
            Ok(state.custom_check(name, &resolved, occ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::ParamRef;
    use crate::rule::RuleClass;
    use crate::state::PermissiveState;

    struct Fixture {
        detector: Detector,
        pool: RulePool,
        state: PermissiveState,
        log: AuditLog,
    }

    impl Fixture {
        fn new() -> Fixture {
            Fixture {
                detector: Detector::new(Ts::ZERO),
                pool: RulePool::new(),
                state: PermissiveState::default(),
                log: AuditLog::new(),
            }
        }

        fn attach(&mut self, rule: Rule) {
            attach_rule(&mut self.detector, &mut self.pool, rule);
        }

        fn rt(&mut self) -> Runtime<'_> {
            Runtime {
                detector: &mut self.detector,
                pool: &mut self.pool,
                state: &mut self.state,
                log: &mut self.log,
            }
        }
    }

    #[test]
    fn then_branch_runs_actions() {
        let mut fx = Fixture::new();
        let e = fx.detector.primitive("activate");
        fx.attach(
            Rule::new("r", e, CondExpr::True)
                .then(vec![ActionSpec::AddSessionRole {
                    user: ParamRef::param("user"),
                    session: ParamRef::param("session"),
                    role: ParamRef::Int(5),
                }])
                .otherwise(vec![ActionSpec::RaiseError("no".into())]),
        );
        let mut rt = fx.rt();
        let exec = Executor::new();
        let rep = exec
            .dispatch(
                &mut rt,
                e,
                Params::new().with("user", 1i64).with("session", 2i64),
            )
            .unwrap();
        assert_eq!(rep.fired, 1);
        assert!(!rep.denied());
        assert_eq!(fx.state.log, vec!["add_session_role(1,2,5)"]);
        assert_eq!(fx.log.entries().len(), 1, "one fired record");
    }

    #[test]
    fn mutation_counter_tracks_applied_state_actions() {
        let mut fx = Fixture::new();
        let e = fx.detector.primitive("activate");
        fx.attach(Rule::new("r", e, CondExpr::True).then(vec![
            ActionSpec::Allow,
            ActionSpec::AddSessionRole {
                user: ParamRef::Int(1),
                session: ParamRef::Int(2),
                role: ParamRef::Int(3),
            },
        ]));
        let mut rt = fx.rt();
        let rep = Executor::new().dispatch(&mut rt, e, Params::new()).unwrap();
        assert_eq!(rep.mutations, 1, "Allow is decision-only, the add mutates");

        // A pure decision dispatch reports zero mutations, so read-path
        // snapshots survive it.
        let mut fx2 = Fixture::new();
        let e2 = fx2.detector.primitive("check");
        fx2.attach(Rule::new("ca", e2, CondExpr::True).then(vec![ActionSpec::Allow]));
        let mut rt = fx2.rt();
        let rep = Executor::new()
            .dispatch(&mut rt, e2, Params::new())
            .unwrap();
        assert_eq!(rep.mutations, 0);
    }

    #[test]
    fn else_branch_on_false_condition() {
        let mut fx = Fixture::new();
        let e = fx.detector.primitive("activate");
        fx.attach(
            Rule::new("r", e, CondExpr::False)
                .then(vec![ActionSpec::Allow])
                .otherwise(vec![ActionSpec::RaiseError("denied".into())]),
        );
        let mut rt = fx.rt();
        let rep = Executor::new().dispatch(&mut rt, e, Params::new()).unwrap();
        assert_eq!(rep.else_taken, 1);
        assert_eq!(rep.denials, vec!["denied".to_string()]);
        assert!(rep.denied());
        assert_eq!(fx.log.denial_count(), 1);
    }

    #[test]
    fn missing_param_is_engine_error_and_else() {
        let mut fx = Fixture::new();
        let e = fx.detector.primitive("activate");
        fx.attach(
            Rule::new(
                "r",
                e,
                CondExpr::check(Check::UserExists(ParamRef::param("user"))),
            )
            .otherwise(vec![ActionSpec::RaiseError("denied".into())]),
        );
        let mut rt = fx.rt();
        let rep = Executor::new().dispatch(&mut rt, e, Params::new()).unwrap();
        assert_eq!(rep.errors.len(), 1);
        assert!(rep.denied(), "malformed condition falls through to Else");
    }

    #[test]
    fn cascaded_rules_via_raise_event() {
        // The paper's Rule 4 shape: AAR raises addSessionRole, CC guards it.
        let mut fx = Fixture::new();
        let e_req = fx.detector.primitive("addActiveRole");
        let e_add = fx.detector.primitive("addSessionRole");
        fx.attach(
            Rule::new("AAR", e_req, CondExpr::True).then(vec![ActionSpec::RaiseEvent {
                event: "addSessionRole".into(),
                params: vec![
                    ("user".into(), ParamRef::param("user")),
                    ("session".into(), ParamRef::param("session")),
                ],
            }]),
        );
        fx.attach(
            Rule::new("CC", e_add, CondExpr::True).then(vec![ActionSpec::AddSessionRole {
                user: ParamRef::param("user"),
                session: ParamRef::param("session"),
                role: ParamRef::Int(9),
            }]),
        );
        let mut rt = fx.rt();
        let rep = Executor::new()
            .dispatch(
                &mut rt,
                e_req,
                Params::new().with("user", 1i64).with("session", 2i64),
            )
            .unwrap();
        assert_eq!(rep.fired, 2, "both AAR and cascaded CC fired");
        assert_eq!(fx.state.log, vec!["add_session_role(1,2,9)"]);
    }

    #[test]
    fn cascade_depth_limited() {
        // A rule that re-raises its own event loops forever without a limit.
        let mut fx = Fixture::new();
        let e = fx.detector.primitive("loop");
        fx.attach(
            Rule::new("L", e, CondExpr::True).then(vec![ActionSpec::RaiseEvent {
                event: "loop".into(),
                params: vec![],
            }]),
        );
        let exec = Executor {
            max_cascade_depth: 5,
            ..Executor::default()
        };
        let mut rt = fx.rt();
        let rep = exec.dispatch(&mut rt, e, Params::new()).unwrap();
        assert_eq!(rep.fired, 6, "initial + 5 cascades");
        assert_eq!(rep.errors.len(), 1, "then the depth guard cut it");
    }

    #[test]
    fn acyclic_hint_lifts_depth_guard() {
        // A finite chain deeper than the limit: cut without the hint,
        // completed with it.
        let mut fx = Fixture::new();
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push(fx.detector.primitive(&format!("c{i}")));
        }
        for (i, &id) in ids.iter().enumerate().take(9) {
            fx.attach(Rule::new(format!("C{i}"), id, CondExpr::True).then(vec![
                ActionSpec::RaiseEvent {
                    event: format!("c{}", i + 1),
                    params: vec![],
                },
            ]));
        }
        let guarded = Executor {
            max_cascade_depth: 5,
            ..Executor::default()
        };
        let mut rt = fx.rt();
        let rep = guarded.dispatch(&mut rt, ids[0], Params::new()).unwrap();
        assert_eq!(rep.errors.len(), 1, "chain cut at depth 5");

        let proved = Executor {
            max_cascade_depth: 5,
            assume_acyclic: true,
            ..Executor::default()
        };
        let mut rt = fx.rt();
        let rep = proved.dispatch(&mut rt, ids[0], Params::new()).unwrap();
        assert!(rep.errors.is_empty(), "{:?}", rep.errors);
        assert_eq!(rep.fired, 9, "whole chain ran");
    }

    #[test]
    fn priority_order_and_disable() {
        let mut fx = Fixture::new();
        let e = fx.detector.primitive("e");
        fx.attach(
            Rule::new("second", e, CondExpr::True)
                .priority(1)
                .then(vec![ActionSpec::Custom {
                    name: "b".into(),
                    args: vec![],
                }]),
        );
        fx.attach(
            Rule::new("first", e, CondExpr::True)
                .priority(10)
                .then(vec![ActionSpec::Custom {
                    name: "a".into(),
                    args: vec![],
                }]),
        );
        let mut rt = fx.rt();
        Executor::new().dispatch(&mut rt, e, Params::new()).unwrap();
        assert_eq!(fx.state.log, vec!["custom(a,[])", "custom(b,[])"]);
        // Disabling skips a rule.
        fx.pool.set_enabled("first", false);
        fx.state.log.clear();
        let mut rt = fx.rt();
        Executor::new().dispatch(&mut rt, e, Params::new()).unwrap();
        assert_eq!(fx.state.log, vec!["custom(b,[])"]);
    }

    #[test]
    fn denial_short_circuits_lower_priority_rules() {
        let mut fx = Fixture::new();
        let e = fx.detector.primitive("e");
        fx.attach(
            Rule::new("guard", e, CondExpr::False)
                .priority(10)
                .otherwise(vec![ActionSpec::RaiseError("capped".into())]),
        );
        fx.attach(
            Rule::new("apply", e, CondExpr::True).then(vec![ActionSpec::AddSessionRole {
                user: ParamRef::Int(1),
                session: ParamRef::Int(2),
                role: ParamRef::Int(3),
            }]),
        );
        let mut rt = fx.rt();
        let rep = Executor::new().dispatch(&mut rt, e, Params::new()).unwrap();
        assert!(rep.denied());
        assert!(
            fx.state.log.is_empty(),
            "the apply rule must not run after a guard denial"
        );
    }

    #[test]
    fn denying_action_aborts_rest_of_rule() {
        let mut fx = Fixture::new();
        let e = fx.detector.primitive("e");
        fx.attach(Rule::new("r", e, CondExpr::True).then(vec![
            ActionSpec::RaiseError("stop".into()),
            ActionSpec::Alert("never".into()),
        ]));
        let mut rt = fx.rt();
        let rep = Executor::new().dispatch(&mut rt, e, Params::new()).unwrap();
        assert!(rep.denied());
        assert!(rep.alerts.is_empty(), "actions after a denial are skipped");
    }

    #[test]
    fn active_security_disables_rule_class() {
        let mut fx = Fixture::new();
        let e = fx.detector.primitive("storm");
        let x = fx.detector.primitive("x");
        fx.attach(Rule::new("victim", x, CondExpr::True).class(RuleClass::ActivityControl));
        fx.attach(
            Rule::new("guard", e, CondExpr::True)
                .class(RuleClass::ActiveSecurity)
                .then(vec![
                    ActionSpec::Alert("storm detected".into()),
                    ActionSpec::DisableRuleClass(RuleClass::ActivityControl),
                ]),
        );
        let mut rt = fx.rt();
        let rep = Executor::new().dispatch(&mut rt, e, Params::new()).unwrap();
        assert_eq!(rep.alerts, vec!["storm detected".to_string()]);
        assert!(!fx.pool.get_by_name("victim").unwrap().enabled);
        assert!(fx.pool.get_by_name("guard").unwrap().enabled);
        assert_eq!(fx.log.alert_count(), 1);
    }

    #[test]
    fn advance_runs_temporal_rules() {
        use snoop::EventExpr;
        let mut fx = Fixture::new();
        let open = fx.detector.primitive("open");
        let plus = fx
            .detector
            .define(&EventExpr::plus(
                EventExpr::named("open"),
                Dur::from_secs(10),
            ))
            .unwrap();
        fx.detector.watch(plus);
        fx.attach(Rule::new("close-after", plus, CondExpr::True).then(vec![
            ActionSpec::DropSessionRole {
                user: ParamRef::param("user"),
                session: ParamRef::param("session"),
                role: ParamRef::Int(4),
            },
        ]));
        let mut rt = fx.rt();
        let exec = Executor::new();
        exec.dispatch(
            &mut rt,
            open,
            Params::new().with("user", 1i64).with("session", 7i64),
        )
        .unwrap();
        let rep = exec.advance(&mut rt, Dur::from_secs(20)).unwrap();
        assert_eq!(rep.fired, 1);
        assert_eq!(fx.state.log, vec!["drop_session_role(1,7,4)"]);
    }

    #[test]
    fn source_is_distinguishes_or_branches() {
        use snoop::EventExpr;
        let mut fx = Fixture::new();
        let nurse = fx.detector.primitive("nurse_disable");
        let _doctor = fx.detector.primitive("doctor_disable");
        let or = fx
            .detector
            .define(&EventExpr::or(
                EventExpr::named("nurse_disable"),
                EventExpr::named("doctor_disable"),
            ))
            .unwrap();
        fx.detector.watch(or);
        fx.attach(
            Rule::new(
                "tsod",
                or,
                CondExpr::check(Check::SourceIs("nurse_disable".into())),
            )
            .then(vec![ActionSpec::Alert("nurse branch".into())])
            .otherwise(vec![ActionSpec::Alert("doctor branch".into())]),
        );
        let mut rt = fx.rt();
        let exec = Executor::new();
        let rep = exec.dispatch(&mut rt, nurse, Params::new()).unwrap();
        assert_eq!(rep.alerts, vec!["nurse branch".to_string()]);
        let doctor = fx.detector.lookup("doctor_disable").unwrap();
        let mut rt = fx.rt();
        let rep = exec.dispatch(&mut rt, doctor, Params::new()).unwrap();
        assert_eq!(rep.alerts, vec!["doctor branch".to_string()]);
    }

    #[test]
    fn unwatched_composite_does_not_trigger() {
        use snoop::EventExpr;
        let mut fx = Fixture::new();
        let a = fx.detector.primitive("a");
        let seq = fx
            .detector
            .define(&EventExpr::seq(EventExpr::named("a"), EventExpr::prim("b")))
            .unwrap();
        // Rule subscribed but event NOT watched: adding a rule should go
        // hand in hand with watching; the engine layer does that. Here we
        // verify the executor simply sees no detection.
        fx.pool.add(Rule::new("r", seq, CondExpr::True));
        let mut rt = fx.rt();
        let rep = Executor::new().dispatch(&mut rt, a, Params::new()).unwrap();
        assert_eq!(rep.fired, 0);
    }
}

#[cfg(test)]
mod cond_if_tests {
    use super::*;
    use crate::lang::{Check, ParamRef};
    use crate::state::PermissiveState;

    /// Rule 6's branch shape: `if source == nurse { doctor active } else
    /// { nurse active }`, evaluated through CondExpr::If.
    #[test]
    fn if_condition_branches_on_guard() {
        let mut detector = Detector::new(Ts::ZERO);
        let nurse = detector.primitive("nurse_disable");
        let doctor = detector.primitive("doctor_disable");
        let or = detector
            .define(&snoop::EventExpr::or(
                snoop::EventExpr::named("nurse_disable"),
                snoop::EventExpr::named("doctor_disable"),
            ))
            .unwrap();
        let mut pool = RulePool::new();
        let cond = CondExpr::If {
            guard: Box::new(CondExpr::check(Check::SourceIs("nurse_disable".into()))),
            then: Box::new(CondExpr::check(Check::ParamEquals {
                name: "doctor_ok".into(),
                value: snoop::Value::Bool(true),
            })),
            otherwise: Box::new(CondExpr::check(Check::ParamEquals {
                name: "nurse_ok".into(),
                value: snoop::Value::Bool(true),
            })),
        };
        attach_rule(
            &mut detector,
            &mut pool,
            Rule::new("tsod", or, cond)
                .then(vec![ActionSpec::Alert("disable allowed".into())])
                .otherwise(vec![ActionSpec::RaiseError("denied".into())]),
        );
        let mut state = PermissiveState::default();
        let mut log = AuditLog::new();
        let exec = Executor::new();

        // Nurse branch, doctor still active: allowed.
        let mut rt = Runtime {
            detector: &mut detector,
            pool: &mut pool,
            state: &mut state,
            log: &mut log,
        };
        let rep = exec
            .dispatch(&mut rt, nurse, Params::new().with("doctor_ok", true))
            .unwrap();
        assert_eq!(rep.alerts.len(), 1);
        // Doctor branch, nurse not active: denied.
        let rep = exec
            .dispatch(&mut rt, doctor, Params::new().with("nurse_ok", false))
            .unwrap();
        assert!(rep.denied());
        // ParamRef sanity: unrelated literals don't disturb branching.
        let _ = ParamRef::Int(0);
    }
}
