//! The boundary between the rule system and the authorization state it
//! guards.
//!
//! Sentinel evaluates rule *conditions* through read-only queries and
//! performs rule *actions* through mutations on an [`AuthState`]. The
//! `owte-core` crate implements this trait over the `rbac` reference
//! monitor; tests implement it over toy states. Entity ids cross the
//! boundary as `i64` (the parameter value type), keeping this crate
//! independent of any particular monitor.

use snoop::Occurrence;

/// Outcome of a state action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionOutcome {
    /// The mutation was applied.
    Done,
    /// The mutation was rejected by the monitor (message explains why).
    /// The executor records this as a denial, like `raise error`.
    Rejected(String),
}

/// Read/write interface the rule executor uses.
///
/// The read methods mirror the check functions the paper's rules call; all
/// take raw `i64` entity ids resolved from occurrence parameters. Queries on
/// unknown ids must return `false`/`0` (a rule condition over a vanished
/// entity simply fails, triggering the rule's Else actions).
pub trait AuthState {
    /// `user IN userL`
    fn user_exists(&self, user: i64) -> bool;
    /// `sessionId IN sessionL`
    fn session_exists(&self, session: i64) -> bool;
    /// Is the session owned by the user?
    fn session_owned_by(&self, session: i64, user: i64) -> bool;
    /// Is the role active in the session?
    fn role_active(&self, session: i64, role: i64) -> bool;
    /// Direct UA assignment.
    fn assigned(&self, user: i64, role: i64) -> bool;
    /// Assignment via hierarchy (user assigned to the role or a senior).
    fn authorized(&self, user: i64, role: i64) -> bool;
    /// Would activating `role` in `session` keep all DSD sets satisfied?
    fn dsd_satisfied(&self, session: i64, role: i64) -> bool;
    /// Is the role enabled?
    fn role_enabled(&self, role: i64) -> bool;
    /// Is the role active in at least one session?
    fn role_active_anywhere(&self, role: i64) -> bool;
    /// Distinct users currently active in the role.
    fn active_users_of_role(&self, role: i64) -> usize;
    /// Is `user` one of the users currently active in `role`?
    fn user_active_in_role(&self, user: i64, role: i64) -> bool;
    /// Distinct roles the user has active (across sessions).
    fn active_roles_of_user(&self, user: i64) -> usize;
    /// Does some active role of the session hold (op, obj)?
    fn session_has_permission(&self, session: i64, op: i64, obj: i64) -> bool;
    /// Is the user directly assigned to *any* of `roles`? The compiled
    /// executor evaluates baked hierarchy closures through this; with
    /// `roles` = the target role plus its seniors closure it is
    /// equivalent to [`AuthState::authorized`]. Implementors may
    /// override it with a cheaper membership test.
    fn authorized_any(&self, user: i64, roles: &[i64]) -> bool {
        roles.iter().any(|&r| self.assigned(user, r))
    }
    /// Does the user's configured active-role cap (if any) permit adding
    /// `role`? Users without a cap always pass.
    fn user_cap_ok(&self, user: i64, role: i64) -> bool {
        let _ = (user, role);
        true
    }
    /// Host-defined check (context constraints, privacy purposes, …).
    fn custom_check(&self, name: &str, args: &[i64], occ: &Occurrence) -> bool {
        let _ = (name, args, occ);
        false
    }

    // ---- mutations ---------------------------------------------------------

    /// Activate `role` in `session` (owned by `user`).
    fn add_session_role(&mut self, user: i64, session: i64, role: i64) -> ActionOutcome;
    /// Deactivate `role` in `session`.
    fn drop_session_role(&mut self, user: i64, session: i64, role: i64) -> ActionOutcome;
    /// Deactivate `role` in every session.
    fn deactivate_role_everywhere(&mut self, role: i64) -> ActionOutcome;
    /// Enable a role.
    fn enable_role(&mut self, role: i64) -> ActionOutcome;
    /// Disable a role, optionally deactivating it.
    fn disable_role(&mut self, role: i64, deactivate: bool) -> ActionOutcome;
    /// Assign a user to a role.
    fn assign_user(&mut self, user: i64, role: i64) -> ActionOutcome;
    /// Deassign a user from a role.
    fn deassign_user(&mut self, user: i64, role: i64) -> ActionOutcome;
    /// Host-defined action.
    fn custom_action(&mut self, name: &str, args: &[i64], occ: &Occurrence) -> ActionOutcome {
        let _ = (name, args, occ);
        ActionOutcome::Rejected(format!("unknown custom action {name:?}"))
    }
}

/// A trivial [`AuthState`] where every check succeeds and every action is
/// accepted. Useful for exercising the executor machinery in isolation.
#[derive(Debug, Default, Clone)]
pub struct PermissiveState {
    /// Mutations performed, in order (action name, user/session/role args).
    pub log: Vec<String>,
}

impl AuthState for PermissiveState {
    fn user_exists(&self, _: i64) -> bool {
        true
    }
    fn session_exists(&self, _: i64) -> bool {
        true
    }
    fn session_owned_by(&self, _: i64, _: i64) -> bool {
        true
    }
    fn role_active(&self, _: i64, _: i64) -> bool {
        false
    }
    fn assigned(&self, _: i64, _: i64) -> bool {
        true
    }
    fn authorized(&self, _: i64, _: i64) -> bool {
        true
    }
    fn dsd_satisfied(&self, _: i64, _: i64) -> bool {
        true
    }
    fn role_enabled(&self, _: i64) -> bool {
        true
    }
    fn role_active_anywhere(&self, _: i64) -> bool {
        true
    }
    fn active_users_of_role(&self, _: i64) -> usize {
        0
    }
    fn user_active_in_role(&self, _: i64, _: i64) -> bool {
        false
    }
    fn active_roles_of_user(&self, _: i64) -> usize {
        0
    }
    fn session_has_permission(&self, _: i64, _: i64, _: i64) -> bool {
        true
    }

    fn add_session_role(&mut self, u: i64, s: i64, r: i64) -> ActionOutcome {
        self.log.push(format!("add_session_role({u},{s},{r})"));
        ActionOutcome::Done
    }
    fn drop_session_role(&mut self, u: i64, s: i64, r: i64) -> ActionOutcome {
        self.log.push(format!("drop_session_role({u},{s},{r})"));
        ActionOutcome::Done
    }
    fn deactivate_role_everywhere(&mut self, r: i64) -> ActionOutcome {
        self.log.push(format!("deactivate_everywhere({r})"));
        ActionOutcome::Done
    }
    fn enable_role(&mut self, r: i64) -> ActionOutcome {
        self.log.push(format!("enable_role({r})"));
        ActionOutcome::Done
    }
    fn disable_role(&mut self, r: i64, d: bool) -> ActionOutcome {
        self.log.push(format!("disable_role({r},{d})"));
        ActionOutcome::Done
    }
    fn assign_user(&mut self, u: i64, r: i64) -> ActionOutcome {
        self.log.push(format!("assign_user({u},{r})"));
        ActionOutcome::Done
    }
    fn deassign_user(&mut self, u: i64, r: i64) -> ActionOutcome {
        self.log.push(format!("deassign_user({u},{r})"));
        ActionOutcome::Done
    }
    fn custom_action(&mut self, name: &str, args: &[i64], _occ: &Occurrence) -> ActionOutcome {
        self.log.push(format!("custom({name},{args:?})"));
        ActionOutcome::Done
    }
}
