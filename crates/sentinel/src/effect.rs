//! State regions and per-rule effect footprints.
//!
//! The analyzer (`policy::analyze`) and the executor see the same
//! authorization state through two different lenses: the analyzer walks a
//! rule's [`CondExpr`]/[`ActionSpec`] trees *statically*, the executor
//! evaluates them against an [`crate::state::AuthState`] at runtime. This
//! module is the shared vocabulary between the two — an abstract partition
//! of the monitor state into [`Region`]s plus one mapping from every check
//! and action to the regions it reads or writes.
//!
//! Both sides use the *same* mapping, parameterized only over how a
//! [`ParamRef`] becomes a [`Target`]:
//!
//! * static analysis maps literals to [`Target::Id`] and occurrence
//!   parameters to [`Target::Param`] (one unknown entity per dispatch);
//! * the executor maps every argument to the concrete [`Target::Id`] it
//!   resolved.
//!
//! Because [`Target::Param`] and [`Target::Any`] *cover* every concrete
//! id, `observed ⊆ declared` holds by construction as long as the two
//! sides agree on the mapping — and `crates/sim` model-checks exactly that
//! containment on every explored schedule (`FootprintViolated`), so any
//! drift between this table and what the executor actually touches is
//! caught dynamically.

use crate::lang::{ActionSpec, Check, CondExpr, ParamRef};
use serde::{Deserialize, Serialize};
use snoop::Occurrence;
use std::fmt;

/// Which entity instance(s) of a region family an effect touches.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Target {
    /// One statically-known entity (generated rules bake ids in).
    Id(i64),
    /// One entity per dispatch, bound by a triggering-occurrence
    /// parameter — unknown statically, but a *single* instance.
    Param,
    /// Potentially every instance of the family (bulk operations,
    /// malformed references).
    Any,
}

impl Target {
    /// Could the two targets denote the same entity? `Param` and `Any`
    /// overlap everything; two literals overlap iff equal.
    pub fn overlaps(&self, other: &Target) -> bool {
        match (self, other) {
            (Target::Id(a), Target::Id(b)) => a == b,
            _ => true,
        }
    }

    /// Does this (declared) target account for an observed one? `Param`
    /// and `Any` cover any runtime id; a literal covers only itself.
    pub fn covers(&self, observed: &Target) -> bool {
        match (self, observed) {
            (Target::Id(a), Target::Id(b)) => a == b,
            (Target::Id(_), _) => false,
            _ => true,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Id(i) => write!(f, "{i}"),
            Target::Param => write!(f, "?"),
            Target::Any => write!(f, "*"),
        }
    }
}

/// An abstract region of the authorization state. Two effects can
/// interfere only when they touch the same region family with
/// overlapping [`Target`]s; distinct families are disjoint state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// The session table itself: which sessions exist and who owns them.
    SessionSet,
    /// The active-role set of one session.
    SessionRoles(Target),
    /// The cross-session activation aggregate of one role (who is active
    /// in it anywhere — the paper's cardinality counters).
    RoleActivation(Target),
    /// The active-role aggregate of one user across their sessions
    /// (per-user cardinality caps).
    UserActivation(Target),
    /// The user↔role assignment relation, per user (UA and the derived
    /// authorization closure).
    Assignments(Target),
    /// The enabled/disabled status of one role (GTRBAC).
    RoleStatus(Target),
    /// SSD/DSD set membership (which roles conflict).
    SodState,
    /// GTRBAC enabling windows and durations.
    TemporalWindows,
    /// Context variables consulted by context-aware constraints.
    ContextVars,
    /// The recent-denial history that active-security rules read
    /// (`denials_at_least`) and every denial appends to. Fired/allow
    /// audit entries are pure observability and deliberately *not* a
    /// region — otherwise everything would interfere with everything.
    DenialWindow,
    /// Pending detector timers (PLUS events, scheduled deactivations).
    Timers,
    /// The enabled bits of the rule pool itself (active security).
    RuleToggles,
    /// An uninterpreted host-side region, named by the custom check or
    /// action that touches it.
    Host(String),
}

impl Region {
    /// Could the two regions denote overlapping state?
    pub fn overlaps(&self, other: &Region) -> bool {
        use Region::*;
        match (self, other) {
            (SessionRoles(a), SessionRoles(b))
            | (RoleActivation(a), RoleActivation(b))
            | (UserActivation(a), UserActivation(b))
            | (Assignments(a), Assignments(b))
            | (RoleStatus(a), RoleStatus(b)) => a.overlaps(b),
            (Host(a), Host(b)) => a == b,
            _ => std::mem::discriminant(self) == std::mem::discriminant(other),
        }
    }

    /// Does this (declared) region account for an observed one?
    pub fn covers(&self, observed: &Region) -> bool {
        use Region::*;
        match (self, observed) {
            (SessionRoles(a), SessionRoles(b))
            | (RoleActivation(a), RoleActivation(b))
            | (UserActivation(a), UserActivation(b))
            | (Assignments(a), Assignments(b))
            | (RoleStatus(a), RoleStatus(b)) => a.covers(b),
            (Host(a), Host(b)) => a == b,
            _ => std::mem::discriminant(self) == std::mem::discriminant(observed),
        }
    }

    /// Do two blind *writes* to this region commute? The denial history
    /// is an append-only multiset: `denials_at_least` counts entries
    /// within a time window and never observes insertion order, so two
    /// appends can be reordered freely. Every other region is
    /// order-sensitive (activations toggle, timers cancel vs schedule).
    /// Write-vs-read never commutes regardless of this answer.
    pub fn commutes_on_write(&self) -> bool {
        matches!(self, Region::DenialWindow)
    }

    /// Is the target scope of this region `Any` — i.e. does it span every
    /// instance of a per-entity family? (Families without a target are
    /// global by nature and answer `true`.)
    pub fn spans_all(&self) -> bool {
        use Region::*;
        match self {
            SessionRoles(t) | RoleActivation(t) | UserActivation(t) | Assignments(t)
            | RoleStatus(t) => *t == Target::Any,
            _ => true,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Region::*;
        match self {
            SessionSet => write!(f, "session-set"),
            SessionRoles(t) => write!(f, "session-roles({t})"),
            RoleActivation(t) => write!(f, "role-activation({t})"),
            UserActivation(t) => write!(f, "user-activation({t})"),
            Assignments(t) => write!(f, "assignments({t})"),
            RoleStatus(t) => write!(f, "role-status({t})"),
            SodState => write!(f, "sod-state"),
            TemporalWindows => write!(f, "temporal-windows"),
            ContextVars => write!(f, "context-vars"),
            DenialWindow => write!(f, "denial-window"),
            Timers => write!(f, "timers"),
            RuleToggles => write!(f, "rule-toggles"),
            Host(n) => write!(f, "host({n})"),
        }
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Access {
    /// The effect only observes the region.
    Read,
    /// The effect may mutate the region.
    Write,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => write!(f, "read"),
            Access::Write => write!(f, "write"),
        }
    }
}

/// One recorded state access: during execution, rule `rule` performed
/// `access` on `region` (with runtime-resolved targets).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RuleTouch {
    /// The rule whose check or action touched the state.
    pub rule: String,
    /// Read or write.
    pub access: Access,
    /// The region touched.
    pub region: Region,
}

/// A set of region effects: what something reads, what it writes, and
/// whether part of it escaped the analysis (`opaque` — an unknown custom
/// check/action, treated as touching *everything*).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Footprint {
    /// Regions read.
    pub reads: Vec<Region>,
    /// Regions written.
    pub writes: Vec<Region>,
    /// Some effect could not be mapped to regions; assume it touches
    /// every region (⊤ of the lattice).
    pub opaque: bool,
}

impl Footprint {
    /// The empty footprint (⊥).
    pub fn empty() -> Footprint {
        Footprint::default()
    }

    /// Merge another footprint in (lattice join).
    pub fn absorb(&mut self, other: Footprint) {
        self.reads.extend(other.reads);
        self.writes.extend(other.writes);
        self.opaque |= other.opaque;
    }

    /// Sort and deduplicate the region lists (canonical form for reports
    /// and golden comparisons).
    pub fn normalize(&mut self) {
        self.reads.sort();
        self.reads.dedup();
        self.writes.sort();
        self.writes.dedup();
    }

    /// Does this (declared) footprint account for an observed access?
    /// Opaque footprints cover everything.
    pub fn covers(&self, access: Access, region: &Region) -> bool {
        if self.opaque {
            return true;
        }
        let declared = match access {
            Access::Read => &self.reads,
            Access::Write => &self.writes,
        };
        declared.iter().any(|d| d.covers(region))
    }

    /// Could this footprint's writes conflict with the other's reads or
    /// writes (or vice versa)? Write-write overlap on a region whose
    /// writes commute ([`Region::commutes_on_write`]) is not a conflict;
    /// write-read overlap always is. Opaque footprints interfere with
    /// everything.
    pub fn interferes(&self, other: &Footprint) -> bool {
        if self.opaque || other.opaque {
            return true;
        }
        let hits = |ws: &[Region], rs: &Footprint| {
            ws.iter().any(|w| {
                rs.reads.iter().any(|r| w.overlaps(r))
                    || rs
                        .writes
                        .iter()
                        .any(|r| w.overlaps(r) && !w.commutes_on_write())
            })
        };
        hits(&self.writes, other) || hits(&other.writes, self)
    }
}

/// How a [`ParamRef`] becomes a [`Target`] for static analysis: literal
/// ids stay concrete, occurrence parameters become the single-unknown
/// [`Target::Param`], strings (never a valid entity id) widen to `Any`.
pub fn static_target(p: &ParamRef) -> Target {
    match p {
        ParamRef::Int(i) => Target::Id(*i),
        ParamRef::Param(_) => Target::Param,
        ParamRef::Str(_) => Target::Any,
    }
}

/// How a [`ParamRef`] becomes a [`Target`] at runtime: the concrete id it
/// resolves to against the triggering occurrence, or `Any` when
/// resolution fails (the executor records the access attempt either way).
pub fn runtime_target(p: &ParamRef, occ: &Occurrence) -> Target {
    p.resolve_int(occ).map_or(Target::Any, Target::Id)
}

/// Regions read by one atomic check. The `target` closure decides the
/// [`ParamRef`] → [`Target`] lens (static vs runtime).
pub fn check_footprint(check: &Check, mut target: impl FnMut(&ParamRef) -> Target) -> Footprint {
    let mut fp = Footprint::empty();
    let mut read = |r: Region| fp.reads.push(r);
    match check {
        Check::UserExists(u) => read(Region::Assignments(target(u))),
        Check::SessionExists(_) => read(Region::SessionSet),
        Check::SessionOwnedBy {
            session: _,
            user: _,
        } => read(Region::SessionSet),
        Check::RoleNotActive { session, role: _ } | Check::RoleActive { session, role: _ } => {
            read(Region::SessionRoles(target(session)))
        }
        Check::Assigned { user, role: _ } | Check::Authorized { user, role: _ } => {
            read(Region::Assignments(target(user)))
        }
        Check::DsdSatisfied { session, role: _ } => {
            read(Region::SodState);
            read(Region::SessionRoles(target(session)));
        }
        Check::RoleEnabled(r) => read(Region::RoleStatus(target(r))),
        Check::RoleActiveAnywhere(r) => read(Region::RoleActivation(target(r))),
        Check::RoleCardinalityBelow { role, user, max: _ } => {
            read(Region::RoleActivation(target(role)));
            read(Region::UserActivation(target(user)));
        }
        Check::UserCardinalityBelow {
            user,
            role: _,
            max: _,
        }
        | Check::UserCapOk { user, role: _ } => read(Region::UserActivation(target(user))),
        Check::SessionHasPermission {
            session,
            op: _,
            obj: _,
        } => read(Region::SessionRoles(target(session))),
        // Pure occurrence inspection: no authorization state at all.
        Check::SourceIs(_) | Check::ParamEquals { .. } => {}
        Check::Custom { name, args } => fp.absorb(custom_check_footprint(name, args, &mut target)),
    }
    fp
}

/// The bridge's registered custom checks (`owte-core`'s `BridgeView`),
/// mapped to the host regions they consult. Anything not in this table is
/// opaque — the analyzer widens to ⊤ and flags the rule.
pub fn custom_check_footprint(
    name: &str,
    args: &[ParamRef],
    target: &mut impl FnMut(&ParamRef) -> Target,
) -> Footprint {
    let mut fp = Footprint::empty();
    match name {
        // SoD feasibility of disabling/enabling a role: scans role status
        // and activations across the whole SoD neighbourhood.
        "disabling_sod_ok" => {
            fp.reads.push(Region::SodState);
            fp.reads.push(Region::RoleStatus(Target::Any));
            fp.reads.push(Region::RoleActivation(Target::Any));
            fp.reads.push(Region::TemporalWindows);
        }
        "enabling_sod_ok" => {
            fp.reads.push(Region::SodState);
            fp.reads.push(Region::RoleStatus(Target::Any));
            fp.reads.push(Region::TemporalWindows);
        }
        "context_ok" => fp.reads.push(Region::ContextVars),
        "may_enable" => fp.reads.push(Region::TemporalWindows),
        "denials_at_least" => fp.reads.push(Region::DenialWindow),
        // purpose_ok(session, op, obj, purpose): privacy check over the
        // session's active roles plus the (static) purpose bindings.
        "purpose_ok" => {
            let t = args.first().map_or(Target::Any, target);
            fp.reads.push(Region::SessionRoles(t));
        }
        _ => {
            fp.reads.push(Region::Host(name.to_string()));
            fp.opaque = true;
        }
    }
    fp
}

/// Regions read/written by one action, under the given target lens.
///
/// Monitor mutations that can be *rejected* (SoD, cardinality, temporal
/// guards inside the reference monitor) also write [`Region::DenialWindow`]
/// — a rejection appends to the security-relevant denial history.
pub fn action_footprint(
    action: &ActionSpec,
    mut target: impl FnMut(&ParamRef) -> Target,
) -> Footprint {
    let mut fp = Footprint::empty();
    match action {
        ActionSpec::AddSessionRole {
            user,
            session,
            role,
        }
        | ActionSpec::DropSessionRole {
            user,
            session,
            role,
        } => {
            fp.writes.push(Region::SessionRoles(target(session)));
            fp.writes.push(Region::RoleActivation(target(role)));
            fp.writes.push(Region::UserActivation(target(user)));
            fp.writes.push(Region::DenialWindow);
        }
        ActionSpec::DeactivateRoleEverywhere(role) => {
            fp.writes.push(Region::RoleActivation(target(role)));
            fp.writes.push(Region::SessionRoles(Target::Any));
            fp.writes.push(Region::UserActivation(Target::Any));
            fp.writes.push(Region::DenialWindow);
        }
        ActionSpec::EnableRole(role) => {
            fp.writes.push(Region::RoleStatus(target(role)));
            fp.writes.push(Region::DenialWindow);
        }
        ActionSpec::DisableRole { role, deactivate } => {
            fp.writes.push(Region::RoleStatus(target(role)));
            if *deactivate {
                fp.writes.push(Region::RoleActivation(target(role)));
                fp.writes.push(Region::SessionRoles(Target::Any));
                fp.writes.push(Region::UserActivation(Target::Any));
            }
            fp.writes.push(Region::DenialWindow);
        }
        ActionSpec::AssignUser { user, role: _ } | ActionSpec::DeassignUser { user, role: _ } => {
            fp.writes.push(Region::Assignments(target(user)));
            fp.writes.push(Region::DenialWindow);
        }
        // Pure decision/observability: an explicit allow and an alert
        // append to the audit log only, which is not a region.
        ActionSpec::Allow | ActionSpec::Alert(_) => {}
        ActionSpec::RaiseError(_) => fp.writes.push(Region::DenialWindow),
        // A raise schedules/produces occurrences: the *synchronous* part
        // is accounted transitively (effective footprints close over the
        // rule-dependency graph); composite events may arm timers.
        ActionSpec::RaiseEvent { .. } => fp.writes.push(Region::Timers),
        ActionSpec::CancelPlus { .. } => fp.writes.push(Region::Timers),
        ActionSpec::DisableRuleClass(_)
        | ActionSpec::EnableRuleClass(_)
        | ActionSpec::DisableRule(_)
        | ActionSpec::EnableRule(_) => fp.writes.push(Region::RuleToggles),
        ActionSpec::Custom { name, args: _ } => {
            fp.writes.push(Region::Host(name.clone()));
            fp.opaque = true;
        }
    }
    fp
}

/// The full static footprint of one condition tree: the union of every
/// atomic check's reads (every branch — the analysis is path-insensitive,
/// which is exactly what makes it an over-approximation).
pub fn cond_footprint(cond: &CondExpr, target: &mut impl FnMut(&ParamRef) -> Target) -> Footprint {
    let mut fp = Footprint::empty();
    match cond {
        CondExpr::True | CondExpr::False => {}
        CondExpr::Check(c) => fp.absorb(check_footprint(c, &mut *target)),
        CondExpr::All(v) | CondExpr::Any(v) => {
            for c in v {
                fp.absorb(cond_footprint(c, target));
            }
        }
        CondExpr::Not(c) => fp.absorb(cond_footprint(c, target)),
        CondExpr::If {
            guard,
            then,
            otherwise,
        } => {
            fp.absorb(cond_footprint(guard, target));
            fp.absorb(cond_footprint(then, target));
            fp.absorb(cond_footprint(otherwise, target));
        }
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_overlap_and_cover() {
        assert!(Target::Id(1).overlaps(&Target::Id(1)));
        assert!(!Target::Id(1).overlaps(&Target::Id(2)));
        assert!(Target::Param.overlaps(&Target::Id(2)));
        assert!(Target::Any.covers(&Target::Id(7)));
        assert!(Target::Param.covers(&Target::Id(7)));
        assert!(!Target::Id(1).covers(&Target::Id(7)));
    }

    #[test]
    fn region_families_are_disjoint() {
        assert!(!Region::SessionSet.overlaps(&Region::SodState));
        assert!(Region::SessionRoles(Target::Param).overlaps(&Region::SessionRoles(Target::Id(3))));
        assert!(!Region::SessionRoles(Target::Id(1)).overlaps(&Region::SessionRoles(Target::Id(2))));
        assert!(!Region::Host("a".into()).overlaps(&Region::Host("b".into())));
        assert!(Region::Host("a".into()).overlaps(&Region::Host("a".into())));
    }

    #[test]
    fn footprint_interference() {
        let mut a = Footprint::empty();
        a.reads.push(Region::SessionSet);
        let mut b = Footprint::empty();
        b.reads.push(Region::SessionSet);
        assert!(!a.interferes(&b), "read-read never interferes");
        b.writes.push(Region::SessionSet);
        assert!(a.interferes(&b), "read-write on the same region does");
        let opaque = Footprint {
            opaque: true,
            ..Footprint::empty()
        };
        assert!(opaque.interferes(&a));
    }

    #[test]
    fn denial_appends_commute_but_reads_conflict() {
        let appender = Footprint {
            writes: vec![Region::DenialWindow],
            ..Footprint::empty()
        };
        assert!(
            !appender.interferes(&appender.clone()),
            "two blind appends to the denial history are reorderable"
        );
        let counter = Footprint {
            reads: vec![Region::DenialWindow],
            ..Footprint::empty()
        };
        assert!(
            appender.interferes(&counter),
            "an append is visible to denials_at_least"
        );
    }

    #[test]
    fn declared_covers_runtime_resolution() {
        // Static lens: parameter widens to Param; runtime lens: concrete
        // id. Param must cover whatever id runtime resolution produced.
        let check = Check::Assigned {
            user: ParamRef::param("user"),
            role: ParamRef::Int(3),
        };
        let declared = check_footprint(&check, static_target);
        let observed = check_footprint(&check, |_| Target::Id(42));
        for r in &observed.reads {
            assert!(declared.covers(Access::Read, r), "{r} not covered");
        }
    }

    #[test]
    fn unknown_custom_is_opaque() {
        let fp = check_footprint(
            &Check::Custom {
                name: "mystery".into(),
                args: vec![],
            },
            static_target,
        );
        assert!(fp.opaque);
        assert!(fp.covers(Access::Write, &Region::SodState), "⊤ covers all");
        let known = check_footprint(
            &Check::Custom {
                name: "denials_at_least".into(),
                args: vec![ParamRef::Int(3), ParamRef::Int(60)],
            },
            static_target,
        );
        assert!(!known.opaque);
        assert_eq!(known.reads, vec![Region::DenialWindow]);
    }
}
