//! Compilation of a verified rule pool into a flat execution plan.
//!
//! The interpreter in [`crate::executor`] walks `CondExpr`/`ActionSpec`
//! trees and re-resolves names, hierarchy closures and SoD sets on every
//! firing. This module lowers a pool into a [`CompiledPool`]: per-event
//! dispatch tables of pre-resolved rule indices (priority order preserved),
//! conditions flattened into a small accumulator bytecode ([`CondOp`]),
//! parameter references pre-parsed ([`CRef`]), raised events pre-resolved
//! to [`EventId`]s, and — where the [`CompileHost`] can prove the targets
//! fixed — hierarchy ancestor closures and DSD sets baked into dense
//! arrays.
//!
//! **Decision identity is the contract**: for every occurrence the
//! compiled fast path must produce the same decisions, the same
//! [`crate::ExecReport`] counters and byte-identical audit entries as the
//! interpreter. Every error message format below is copied from
//! `executor.rs` verbatim; any change there must be mirrored here (the
//! equivalence proptests and the simulator's `CompiledDivergence`
//! invariant enforce this).
//!
//! Compilation is *licensed*: callers may only lower a pool that static
//! analysis proved terminating and error-free (`policy::compile_pool`
//! checks the verdict). A pool that fails to compile simply keeps running
//! interpreted — the plan is an optimization, never a semantic gate.

use crate::executor::{ExecReport, Executor, Runtime};
use crate::lang::{ActionSpec, Check, CondExpr, ParamRef};
use crate::log::{AuditEntry, AuditKind};
use crate::pool::RulePool;
use crate::rule::{RuleClass, RuleId};
use crate::state::{ActionOutcome, AuthState};
use snoop::{Detection, Detector, DetectorError, Dur, EventId, Occurrence, Params, Ts, Value};
use std::collections::HashMap;
use std::fmt;

/// Why a pool could not be lowered. Compile failure is non-fatal: the
/// caller keeps the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A rule references an event name the detector does not know.
    UnknownEvent {
        /// The referencing rule.
        rule: String,
        /// The unresolved event name.
        event: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownEvent { rule, event } => {
                write!(f, "rule {rule}: unknown event {event:?}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Monitor-side closures the compiler may bake into the plan. Returning
/// `None` keeps the corresponding check generic (evaluated through
/// [`AuthState`] exactly like the interpreter), so a host that cannot
/// answer is always safe.
pub trait CompileHost {
    /// The role ids whose direct assignment authorizes `role`: `role`
    /// itself plus its seniors closure. `None` if the role is unknown.
    fn authorized_closure(&self, role: i64) -> Option<Vec<i64>>;
    /// The DSD sets `role` participates in, as `(member role ids,
    /// cardinality)` pairs, in the monitor's check order. `None` if the
    /// role is unknown.
    fn dsd_sets(&self, role: i64) -> Option<Vec<(Vec<i64>, usize)>>;
}

/// A [`CompileHost`] that bakes nothing; every check stays generic.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBake;

impl CompileHost for NoBake {
    fn authorized_closure(&self, _role: i64) -> Option<Vec<i64>> {
        None
    }
    fn dsd_sets(&self, _role: i64) -> Option<Vec<(Vec<i64>, usize)>> {
        None
    }
}

/// A compiled [`ParamRef`]: literals carry their value, parameters their
/// name. `Display` matches [`ParamRef`] exactly — runtime error messages
/// interpolate these and must stay byte-identical to the interpreter's.
#[derive(Debug, Clone, PartialEq)]
pub enum CRef {
    /// Literal integer (entity id).
    Lit(i64),
    /// Named parameter of the triggering occurrence.
    Param(String),
    /// Literal string.
    Str(String),
}

impl CRef {
    fn lower(p: &ParamRef) -> CRef {
        match p {
            ParamRef::Param(n) => CRef::Param(n.clone()),
            ParamRef::Int(i) => CRef::Lit(*i),
            ParamRef::Str(s) => CRef::Str(s.clone()),
        }
    }

    /// Resolve to a value (mirror of [`ParamRef::resolve`]).
    pub fn resolve(&self, occ: &Occurrence) -> Option<Value> {
        match self {
            CRef::Param(name) => occ.params.get(name).cloned(),
            CRef::Lit(i) => Some(Value::Int(*i)),
            CRef::Str(s) => Some(Value::Str(s.clone())),
        }
    }

    /// Resolve to an integer id without cloning string values (mirror of
    /// [`ParamRef::resolve_int`], which only succeeds on `Int` anyway).
    pub fn resolve_int(&self, occ: &Occurrence) -> Option<i64> {
        match self {
            CRef::Lit(i) => Some(*i),
            CRef::Param(name) => occ.params.get(name).and_then(Value::as_int),
            CRef::Str(_) => None,
        }
    }
}

impl fmt::Display for CRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CRef::Param(n) => write!(f, "{n}"),
            CRef::Lit(i) => write!(f, "{i}"),
            CRef::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// One opcode of the condition bytecode. Evaluation runs a single boolean
/// accumulator over a flat instruction array; jump targets are absolute
/// instruction indices. Lowering preserves the interpreter's evaluation
/// order, short-circuiting and error propagation exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondOp {
    /// Load a constant into the accumulator.
    Push(bool),
    /// Evaluate check `#n` into the accumulator.
    Check(u32),
    /// Negate the accumulator.
    Not,
    /// Jump when the accumulator is false (short-circuit `&&`).
    JumpIfFalse(u32),
    /// Jump when the accumulator is true (short-circuit `||`).
    JumpIfTrue(u32),
    /// Unconditional jump (skip an `If` else-arm).
    Jump(u32),
}

/// A baked DSD set: member role ids and the paper's `n` cardinality.
#[derive(Debug, Clone, PartialEq)]
pub struct DsdSetBaked {
    /// Member role ids.
    pub roles: Box<[i64]>,
    /// Violation threshold: activating a member with `n - 1` members
    /// already active is denied.
    pub n: usize,
}

/// A pre-bound [`Check`]. Generic variants mirror the interpreter's
/// one-to-one; `AuthorizedBaked`/`DsdBaked` replace monitor-side closure
/// recomputation with dense arrays when the role was a literal the
/// [`CompileHost`] could resolve at compile time.
#[derive(Debug, Clone, PartialEq)]
pub enum CCheck {
    /// `user IN userL`
    UserExists(CRef),
    /// `sessionId IN sessionL`
    SessionExists(CRef),
    /// Session ownership.
    SessionOwnedBy {
        /// The session.
        session: CRef,
        /// The claimed owner.
        user: CRef,
    },
    /// Role not already active in the session.
    RoleNotActive {
        /// The session.
        session: CRef,
        /// The role.
        role: CRef,
    },
    /// Role active in the session.
    RoleActive {
        /// The session.
        session: CRef,
        /// The role.
        role: CRef,
    },
    /// Direct UA assignment.
    Assigned {
        /// The user.
        user: CRef,
        /// The role.
        role: CRef,
    },
    /// Assignment via hierarchy, generic form.
    Authorized {
        /// The user.
        user: CRef,
        /// The role.
        role: CRef,
    },
    /// Assignment via hierarchy with the ancestor closure baked: the user
    /// is authorized iff directly assigned to any listed role.
    AuthorizedBaked {
        /// The user.
        user: CRef,
        /// The role itself plus its seniors closure.
        roles: Box<[i64]>,
    },
    /// DSD satisfaction, generic form.
    DsdSatisfied {
        /// The session.
        session: CRef,
        /// The candidate role.
        role: CRef,
    },
    /// DSD satisfaction with the role's sets baked.
    DsdBaked {
        /// The session.
        session: CRef,
        /// Sets the candidate role participates in.
        sets: Box<[DsdSetBaked]>,
    },
    /// Role enabled (temporal RBAC).
    RoleEnabled(CRef),
    /// Role active in at least one session.
    RoleActiveAnywhere(CRef),
    /// Role-cardinality bound.
    RoleCardinalityBelow {
        /// The role.
        role: CRef,
        /// The activating user.
        user: CRef,
        /// Maximum distinct active users.
        max: usize,
    },
    /// User-cardinality bound.
    UserCardinalityBelow {
        /// The user.
        user: CRef,
        /// The role being added.
        role: CRef,
        /// Maximum active roles.
        max: usize,
    },
    /// Per-user active-role cap looked up in the state.
    UserCapOk {
        /// The user.
        user: CRef,
        /// The role being added.
        role: CRef,
    },
    /// Some active role of the session holds (op, obj).
    SessionHasPermission {
        /// The session.
        session: CRef,
        /// The operation.
        op: CRef,
        /// The object.
        obj: CRef,
    },
    /// Source test with the event pre-resolved.
    SourceIs {
        /// The resolved event.
        id: EventId,
        /// The event name (plan listings only).
        name: String,
    },
    /// Occurrence parameter equals a value.
    ParamEquals {
        /// Parameter name.
        name: String,
        /// Expected value.
        value: Value,
    },
    /// Host-defined check.
    Custom {
        /// Host-registered check name.
        name: String,
        /// Arguments.
        args: Vec<CRef>,
    },
}

impl fmt::Display for CCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CCheck::UserExists(u) => write!(f, "({u} IN userL)"),
            CCheck::SessionExists(s) => write!(f, "({s} IN sessionL)"),
            CCheck::SessionOwnedBy { session, user } => {
                write!(f, "({session} IN checkUserSessions({user}))")
            }
            CCheck::RoleNotActive { session, role } => {
                write!(f, "({role} NOT IN checkSessionRoles({session}))")
            }
            CCheck::RoleActive { session, role } => {
                write!(f, "({role} IN checkSessionRoles({session}))")
            }
            CCheck::Assigned { user, role } => write!(f, "(checkAssigned({user}, {role}))"),
            CCheck::Authorized { user, role } => write!(f, "(checkAuthorization({user}, {role}))"),
            CCheck::AuthorizedBaked { user, roles } => {
                write!(f, "(checkAuthorization*({user}, roles{roles:?}))")
            }
            CCheck::DsdSatisfied { session, role } => {
                write!(f, "(checkDynamicSoDSet({session}, {role}))")
            }
            CCheck::DsdBaked { session, sets } => {
                write!(f, "(checkDynamicSoDSet*({session}")?;
                for s in sets.iter() {
                    write!(f, ", {:?}<{}", s.roles, s.n)?;
                }
                write!(f, "))")
            }
            CCheck::RoleEnabled(r) => write!(f, "(checkEnabled({r}))"),
            CCheck::RoleActiveAnywhere(r) => write!(f, "(checkActive({r}))"),
            CCheck::RoleCardinalityBelow { role, max, .. } => {
                write!(f, "(Cardinality({role}, INCR) <= {max})")
            }
            CCheck::UserCardinalityBelow { user, max, .. } => {
                write!(f, "(UserCardinality({user}, INCR) <= {max})")
            }
            CCheck::UserCapOk { user, role } => write!(f, "(UserCapOk({user}, {role}))"),
            CCheck::SessionHasPermission { session, op, obj } => write!(
                f,
                "(ForANY role IN getSessionRoles({session}): checkPermissions({op}, {obj}, role))"
            ),
            CCheck::SourceIs { id, name } => write!(f, "(source == {name} #{})", id.0),
            CCheck::ParamEquals { name, value } => write!(f, "({name} == {value})"),
            CCheck::Custom { name, args } => {
                write!(f, "({name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "))")
            }
        }
    }
}

/// A pre-bound [`ActionSpec`]. Event-raising actions carry the resolved
/// [`EventId`] plus the original name (error messages interpolate the
/// name and must stay byte-identical to the interpreter's).
#[derive(Debug, Clone, PartialEq)]
pub enum CAction {
    /// Record an explicit allow.
    Allow,
    /// Deny with a message.
    RaiseError(String),
    /// Alert the administrators.
    Alert(String),
    /// Raise a primitive event (cascade), pre-resolved.
    RaiseEvent {
        /// The resolved event.
        id: EventId,
        /// The event name (for error messages).
        name: String,
        /// `(target param name, source)` pairs.
        params: Vec<(String, CRef)>,
    },
    /// Cancel pending PLUS timers, pre-resolved.
    CancelPlus {
        /// The resolved PLUS event.
        id: EventId,
        /// Parameter matched between base and current occurrence.
        key_param: String,
    },
    /// Disable all rules of a class.
    DisableRuleClass(RuleClass),
    /// Enable all rules of a class.
    EnableRuleClass(RuleClass),
    /// Disable one rule by name.
    DisableRule(String),
    /// Enable one rule by name.
    EnableRule(String),
    /// Activate a role in a session.
    AddSessionRole {
        /// The user.
        user: CRef,
        /// The session.
        session: CRef,
        /// The role.
        role: CRef,
    },
    /// Deactivate a role in a session.
    DropSessionRole {
        /// The user.
        user: CRef,
        /// The session.
        session: CRef,
        /// The role.
        role: CRef,
    },
    /// Deactivate a role in every session.
    DeactivateRoleEverywhere(CRef),
    /// Enable a role.
    EnableRole(CRef),
    /// Disable a role.
    DisableRole {
        /// The role.
        role: CRef,
        /// Also deactivate it in open sessions.
        deactivate: bool,
    },
    /// Assign a user to a role.
    AssignUser {
        /// The user.
        user: CRef,
        /// The role.
        role: CRef,
    },
    /// Deassign a user from a role.
    DeassignUser {
        /// The user.
        user: CRef,
        /// The role.
        role: CRef,
    },
    /// Host-defined action.
    Custom {
        /// Host-registered action name.
        name: String,
        /// Arguments.
        args: Vec<CRef>,
    },
}

impl fmt::Display for CAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CAction::AddSessionRole { session, role, .. } => {
                write!(f, "addSessionRole({session}, {role})")
            }
            CAction::DropSessionRole { session, role, .. } => {
                write!(f, "dropSessionRole({session}, {role})")
            }
            CAction::DeactivateRoleEverywhere(r) => write!(f, "deactivateRoleEverywhere({r})"),
            CAction::EnableRole(r) => write!(f, "enableRole({r})"),
            CAction::DisableRole { role, deactivate } => {
                if *deactivate {
                    write!(f, "disableRole({role}, deactivate)")
                } else {
                    write!(f, "disableRole({role})")
                }
            }
            CAction::AssignUser { user, role } => write!(f, "assignUser({user}, {role})"),
            CAction::DeassignUser { user, role } => write!(f, "deassignUser({user}, {role})"),
            CAction::Allow => write!(f, "<allow>"),
            CAction::RaiseError(m) => write!(f, "raise error {m:?}"),
            CAction::RaiseEvent { id, name, .. } => write!(f, "raiseEvent({name} #{})", id.0),
            CAction::CancelPlus { id, key_param } => {
                write!(f, "cancelPlus(#{}, by {key_param})", id.0)
            }
            CAction::Alert(m) => write!(f, "alert({m:?})"),
            CAction::DisableRuleClass(c) => write!(f, "disableRules({c})"),
            CAction::EnableRuleClass(c) => write!(f, "enableRules({c})"),
            CAction::DisableRule(n) => write!(f, "disableRule({n})"),
            CAction::EnableRule(n) => write!(f, "enableRule({n})"),
            CAction::Custom { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One rule lowered into bytecode + pre-bound actions. Enablement is NOT
/// baked: the executor reads the live pool entry per firing, exactly like
/// the interpreter, so `disableRule`/class toggles keep working without
/// invalidating the plan.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// The pool slot this rule was lowered from (live enablement lookup).
    pub pool_id: RuleId,
    /// Rule name (audit entries).
    pub name: String,
    /// Triggering event.
    pub event: EventId,
    /// Condition bytecode.
    pub when: Box<[CondOp]>,
    /// Check table referenced by [`CondOp::Check`].
    pub checks: Box<[CCheck]>,
    /// Then actions.
    pub then: Box<[CAction]>,
    /// Else actions.
    pub otherwise: Box<[CAction]>,
}

/// The execution plan: per-event dispatch tables over a flat rule array.
#[derive(Debug, Clone, Default)]
pub struct CompiledPool {
    /// Indexed by `EventId.0`; each entry lists indices into
    /// [`CompiledPool::rules`] in the pool's priority order for that
    /// event. Events without rules have empty (or absent) entries.
    pub dispatch: Vec<Box<[u32]>>,
    /// All lowered rules, ordered by pool id.
    pub rules: Vec<CompiledRule>,
}

/// Lower a pool against a detector (event resolution) and a host (closure
/// baking). Fails only on unresolvable event names — which the static
/// analyzer reports as errors, so a *licensed* pool always compiles.
pub fn compile(
    pool: &RulePool,
    detector: &Detector,
    host: &dyn CompileHost,
) -> Result<CompiledPool, CompileError> {
    let mut live: Vec<(RuleId, &crate::rule::Rule)> = pool.iter().collect();
    live.sort_by_key(|(id, _)| *id);

    let mut rules = Vec::with_capacity(live.len());
    let mut index: HashMap<RuleId, u32> = HashMap::with_capacity(live.len());
    for (id, rule) in &live {
        let mut checks = Vec::new();
        let mut when = Vec::new();
        lower_cond(
            &rule.when,
            &rule.name,
            detector,
            host,
            &mut checks,
            &mut when,
        )?;
        let lower_actions = |specs: &[ActionSpec]| -> Result<Box<[CAction]>, CompileError> {
            specs
                .iter()
                .map(|a| lower_action(a, &rule.name, detector))
                .collect()
        };
        index.insert(
            *id,
            u32::try_from(rules.len()).expect("rule count fits u32"),
        );
        rules.push(CompiledRule {
            pool_id: *id,
            name: rule.name.clone(),
            event: rule.event,
            when: when.into_boxed_slice(),
            checks: checks.into_boxed_slice(),
            then: lower_actions(&rule.then)?,
            otherwise: lower_actions(&rule.otherwise)?,
        });
    }

    let max_event = rules.iter().map(|r| r.event.0 as usize).max();
    let mut dispatch = vec![Box::<[u32]>::default(); max_event.map_or(0, |m| m + 1)];
    for slot in dispatch.iter_mut().enumerate() {
        let (eid, slot) = slot;
        let table: Vec<u32> = pool
            .triggered_by(EventId(u32::try_from(eid).expect("event id fits u32")))
            .iter()
            .filter_map(|id| index.get(id).copied())
            .collect();
        *slot = table.into_boxed_slice();
    }
    Ok(CompiledPool { dispatch, rules })
}

fn lower_cond(
    cond: &CondExpr,
    rule: &str,
    detector: &Detector,
    host: &dyn CompileHost,
    checks: &mut Vec<CCheck>,
    code: &mut Vec<CondOp>,
) -> Result<(), CompileError> {
    match cond {
        CondExpr::True => code.push(CondOp::Push(true)),
        CondExpr::False => code.push(CondOp::Push(false)),
        CondExpr::Check(c) => {
            let idx = u32::try_from(checks.len()).expect("check count fits u32");
            checks.push(lower_check(c, rule, detector, host)?);
            code.push(CondOp::Check(idx));
        }
        CondExpr::Not(c) => {
            lower_cond(c, rule, detector, host, checks, code)?;
            code.push(CondOp::Not);
        }
        CondExpr::All(v) => {
            if v.is_empty() {
                code.push(CondOp::Push(true));
            } else {
                let mut jumps = Vec::new();
                for (i, c) in v.iter().enumerate() {
                    if i > 0 {
                        jumps.push(code.len());
                        code.push(CondOp::JumpIfFalse(0));
                    }
                    lower_cond(c, rule, detector, host, checks, code)?;
                }
                let end = u32::try_from(code.len()).expect("code fits u32");
                for j in jumps {
                    code[j] = CondOp::JumpIfFalse(end);
                }
            }
        }
        CondExpr::Any(v) => {
            if v.is_empty() {
                code.push(CondOp::Push(false));
            } else {
                let mut jumps = Vec::new();
                for (i, c) in v.iter().enumerate() {
                    if i > 0 {
                        jumps.push(code.len());
                        code.push(CondOp::JumpIfTrue(0));
                    }
                    lower_cond(c, rule, detector, host, checks, code)?;
                }
                let end = u32::try_from(code.len()).expect("code fits u32");
                for j in jumps {
                    code[j] = CondOp::JumpIfTrue(end);
                }
            }
        }
        CondExpr::If {
            guard,
            then,
            otherwise,
        } => {
            lower_cond(guard, rule, detector, host, checks, code)?;
            let jf = code.len();
            code.push(CondOp::JumpIfFalse(0));
            lower_cond(then, rule, detector, host, checks, code)?;
            let jend = code.len();
            code.push(CondOp::Jump(0));
            let else_at = u32::try_from(code.len()).expect("code fits u32");
            code[jf] = CondOp::JumpIfFalse(else_at);
            lower_cond(otherwise, rule, detector, host, checks, code)?;
            let end = u32::try_from(code.len()).expect("code fits u32");
            code[jend] = CondOp::Jump(end);
        }
    }
    Ok(())
}

fn lower_check(
    check: &Check,
    rule: &str,
    detector: &Detector,
    host: &dyn CompileHost,
) -> Result<CCheck, CompileError> {
    Ok(match check {
        Check::UserExists(u) => CCheck::UserExists(CRef::lower(u)),
        Check::SessionExists(s) => CCheck::SessionExists(CRef::lower(s)),
        Check::SessionOwnedBy { session, user } => CCheck::SessionOwnedBy {
            session: CRef::lower(session),
            user: CRef::lower(user),
        },
        Check::RoleNotActive { session, role } => CCheck::RoleNotActive {
            session: CRef::lower(session),
            role: CRef::lower(role),
        },
        Check::RoleActive { session, role } => CCheck::RoleActive {
            session: CRef::lower(session),
            role: CRef::lower(role),
        },
        Check::Assigned { user, role } => CCheck::Assigned {
            user: CRef::lower(user),
            role: CRef::lower(role),
        },
        Check::Authorized { user, role } => {
            // Bake the ancestor closure when the role is a literal the
            // host knows: `authorized(u, r)` ⇔ `u` directly assigned to
            // `r` or any senior — a membership test over a fixed array.
            match role {
                ParamRef::Int(r) => match host.authorized_closure(*r) {
                    Some(closure) => CCheck::AuthorizedBaked {
                        user: CRef::lower(user),
                        roles: closure.into_boxed_slice(),
                    },
                    None => CCheck::Authorized {
                        user: CRef::lower(user),
                        role: CRef::lower(role),
                    },
                },
                _ => CCheck::Authorized {
                    user: CRef::lower(user),
                    role: CRef::lower(role),
                },
            }
        }
        Check::DsdSatisfied { session, role } => match role {
            ParamRef::Int(r) => match host.dsd_sets(*r) {
                Some(sets) => CCheck::DsdBaked {
                    session: CRef::lower(session),
                    sets: sets
                        .into_iter()
                        .map(|(roles, n)| DsdSetBaked {
                            roles: roles.into_boxed_slice(),
                            n,
                        })
                        .collect(),
                },
                None => CCheck::DsdSatisfied {
                    session: CRef::lower(session),
                    role: CRef::lower(role),
                },
            },
            _ => CCheck::DsdSatisfied {
                session: CRef::lower(session),
                role: CRef::lower(role),
            },
        },
        Check::RoleEnabled(r) => CCheck::RoleEnabled(CRef::lower(r)),
        Check::RoleActiveAnywhere(r) => CCheck::RoleActiveAnywhere(CRef::lower(r)),
        Check::RoleCardinalityBelow { role, user, max } => CCheck::RoleCardinalityBelow {
            role: CRef::lower(role),
            user: CRef::lower(user),
            max: *max,
        },
        Check::UserCardinalityBelow { user, role, max } => CCheck::UserCardinalityBelow {
            user: CRef::lower(user),
            role: CRef::lower(role),
            max: *max,
        },
        Check::UserCapOk { user, role } => CCheck::UserCapOk {
            user: CRef::lower(user),
            role: CRef::lower(role),
        },
        Check::SessionHasPermission { session, op, obj } => CCheck::SessionHasPermission {
            session: CRef::lower(session),
            op: CRef::lower(op),
            obj: CRef::lower(obj),
        },
        Check::SourceIs(name) => {
            let id = detector
                .lookup(name)
                .ok_or_else(|| CompileError::UnknownEvent {
                    rule: rule.to_string(),
                    event: name.clone(),
                })?;
            CCheck::SourceIs {
                id,
                name: name.clone(),
            }
        }
        Check::ParamEquals { name, value } => CCheck::ParamEquals {
            name: name.clone(),
            value: value.clone(),
        },
        Check::Custom { name, args } => CCheck::Custom {
            name: name.clone(),
            args: args.iter().map(CRef::lower).collect(),
        },
    })
}

fn lower_action(
    action: &ActionSpec,
    rule: &str,
    detector: &Detector,
) -> Result<CAction, CompileError> {
    Ok(match action {
        ActionSpec::Allow => CAction::Allow,
        ActionSpec::RaiseError(m) => CAction::RaiseError(m.clone()),
        ActionSpec::Alert(m) => CAction::Alert(m.clone()),
        ActionSpec::RaiseEvent { event, params } => {
            let id = detector
                .lookup(event)
                .ok_or_else(|| CompileError::UnknownEvent {
                    rule: rule.to_string(),
                    event: event.clone(),
                })?;
            CAction::RaiseEvent {
                id,
                name: event.clone(),
                params: params
                    .iter()
                    .map(|(n, p)| (n.clone(), CRef::lower(p)))
                    .collect(),
            }
        }
        ActionSpec::CancelPlus { event, key_param } => {
            let id = detector
                .lookup(event)
                .ok_or_else(|| CompileError::UnknownEvent {
                    rule: rule.to_string(),
                    event: event.clone(),
                })?;
            CAction::CancelPlus {
                id,
                key_param: key_param.clone(),
            }
        }
        ActionSpec::DisableRuleClass(c) => CAction::DisableRuleClass(*c),
        ActionSpec::EnableRuleClass(c) => CAction::EnableRuleClass(*c),
        ActionSpec::DisableRule(n) => CAction::DisableRule(n.clone()),
        ActionSpec::EnableRule(n) => CAction::EnableRule(n.clone()),
        ActionSpec::AddSessionRole {
            user,
            session,
            role,
        } => CAction::AddSessionRole {
            user: CRef::lower(user),
            session: CRef::lower(session),
            role: CRef::lower(role),
        },
        ActionSpec::DropSessionRole {
            user,
            session,
            role,
        } => CAction::DropSessionRole {
            user: CRef::lower(user),
            session: CRef::lower(session),
            role: CRef::lower(role),
        },
        ActionSpec::DeactivateRoleEverywhere(r) => {
            CAction::DeactivateRoleEverywhere(CRef::lower(r))
        }
        ActionSpec::EnableRole(r) => CAction::EnableRole(CRef::lower(r)),
        ActionSpec::DisableRole { role, deactivate } => CAction::DisableRole {
            role: CRef::lower(role),
            deactivate: *deactivate,
        },
        ActionSpec::AssignUser { user, role } => CAction::AssignUser {
            user: CRef::lower(user),
            role: CRef::lower(role),
        },
        ActionSpec::DeassignUser { user, role } => CAction::DeassignUser {
            user: CRef::lower(user),
            role: CRef::lower(role),
        },
        ActionSpec::Custom { name, args } => CAction::Custom {
            name: name.clone(),
            args: args.iter().map(CRef::lower).collect(),
        },
    })
}

/// Evaluate condition bytecode. Mirrors `eval_cond_rec` including error
/// texts; short-circuited checks are never evaluated.
fn eval_compiled_cond(
    code: &[CondOp],
    checks: &[CCheck],
    occ: &Occurrence,
    state: &dyn AuthState,
) -> Result<bool, String> {
    let mut acc = false;
    let mut pc = 0usize;
    while let Some(op) = code.get(pc) {
        match *op {
            CondOp::Push(b) => acc = b,
            CondOp::Check(i) => acc = eval_ccheck(&checks[i as usize], occ, state)?,
            CondOp::Not => acc = !acc,
            CondOp::JumpIfFalse(t) => {
                if !acc {
                    pc = t as usize;
                    continue;
                }
            }
            CondOp::JumpIfTrue(t) => {
                if acc {
                    pc = t as usize;
                    continue;
                }
            }
            CondOp::Jump(t) => {
                pc = t as usize;
                continue;
            }
        }
        pc += 1;
    }
    Ok(acc)
}

fn eval_ccheck(check: &CCheck, occ: &Occurrence, state: &dyn AuthState) -> Result<bool, String> {
    let int = |p: &CRef| {
        p.resolve_int(occ)
            .ok_or_else(|| format!("parameter {p} missing or not an id in {occ}"))
    };
    match check {
        CCheck::UserExists(u) => Ok(state.user_exists(int(u)?)),
        CCheck::SessionExists(s) => Ok(state.session_exists(int(s)?)),
        CCheck::SessionOwnedBy { session, user } => {
            Ok(state.session_owned_by(int(session)?, int(user)?))
        }
        CCheck::RoleNotActive { session, role } => {
            Ok(!state.role_active(int(session)?, int(role)?))
        }
        CCheck::RoleActive { session, role } => Ok(state.role_active(int(session)?, int(role)?)),
        CCheck::Assigned { user, role } => Ok(state.assigned(int(user)?, int(role)?)),
        CCheck::Authorized { user, role } => Ok(state.authorized(int(user)?, int(role)?)),
        CCheck::AuthorizedBaked { user, roles } => Ok(state.authorized_any(int(user)?, roles)),
        CCheck::DsdSatisfied { session, role } => {
            Ok(state.dsd_satisfied(int(session)?, int(role)?))
        }
        CCheck::DsdBaked { session, sets } => {
            let s = int(session)?;
            // The monitor's check errors (= evaluates false through the
            // bridge) on an unknown session before consulting any set.
            if !state.session_exists(s) {
                return Ok(false);
            }
            for set in sets.iter() {
                let active = set
                    .roles
                    .iter()
                    .filter(|&&r| state.role_active(s, r))
                    .count();
                if active + 1 >= set.n {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        CCheck::RoleEnabled(r) => Ok(state.role_enabled(int(r)?)),
        CCheck::RoleActiveAnywhere(r) => Ok(state.role_active_anywhere(int(r)?)),
        CCheck::RoleCardinalityBelow { role, user, max } => {
            let r = int(role)?;
            let u = int(user)?;
            Ok(state.user_active_in_role(u, r) || state.active_users_of_role(r) < *max)
        }
        CCheck::UserCardinalityBelow { user, role, max } => {
            let u = int(user)?;
            let r = int(role)?;
            Ok(state.user_active_in_role(u, r) || state.active_roles_of_user(u) < *max)
        }
        CCheck::UserCapOk { user, role } => Ok(state.user_cap_ok(int(user)?, int(role)?)),
        CCheck::SessionHasPermission { session, op, obj } => {
            Ok(state.session_has_permission(int(session)?, int(op)?, int(obj)?))
        }
        CCheck::SourceIs { id, .. } => Ok(occ.has_source(*id)),
        CCheck::ParamEquals { name, value } => Ok(occ.params.get(name) == Some(value)),
        CCheck::Custom { name, args } => {
            let mut resolved = Vec::with_capacity(args.len());
            for a in args {
                resolved.push(int(a)?);
            }
            Ok(state.custom_check(name, &resolved, occ))
        }
    }
}

impl Executor {
    /// Raise a primitive event and run the triggered rules through the
    /// compiled plan (fast-path twin of [`Executor::dispatch`]).
    pub fn dispatch_compiled(
        &self,
        rt: &mut Runtime<'_>,
        plan: &CompiledPool,
        event: EventId,
        params: Params,
    ) -> Result<ExecReport, DetectorError> {
        let detections = rt.detector.raise(event, params)?;
        Ok(self.process_compiled(rt, plan, detections, 0))
    }

    /// Advance the clock through the compiled plan (fast-path twin of
    /// [`Executor::advance_to`]).
    pub fn advance_to_compiled(
        &self,
        rt: &mut Runtime<'_>,
        plan: &CompiledPool,
        ts: Ts,
    ) -> Result<ExecReport, DetectorError> {
        let mut report = ExecReport::default();
        while let Some(at) = rt.detector.next_timer_at().filter(|&at| at <= ts) {
            let detections = rt.detector.advance_to(at)?;
            report.absorb(self.process_compiled(rt, plan, detections, 0));
        }
        let detections = rt.detector.advance_to(ts)?;
        report.absorb(self.process_compiled(rt, plan, detections, 0));
        Ok(report)
    }

    /// Advance by a duration through the compiled plan.
    pub fn advance_compiled(
        &self,
        rt: &mut Runtime<'_>,
        plan: &CompiledPool,
        d: Dur,
    ) -> Result<ExecReport, DetectorError> {
        let now = rt.detector.now();
        self.advance_to_compiled(rt, plan, now + d)
    }

    /// Run compiled rules for already-collected detections.
    pub fn process_compiled(
        &self,
        rt: &mut Runtime<'_>,
        plan: &CompiledPool,
        detections: Vec<Detection>,
        depth: usize,
    ) -> ExecReport {
        // Effect recording keeps the interpreter's exact footprint shape;
        // the engine routes such dispatches away from the compiled path.
        debug_assert!(!self.record_effects, "compiled path records no effects");
        let mut report = ExecReport::default();
        for det in detections {
            let occ = det.occurrence;
            let Some(table) = plan.dispatch.get(occ.event.0 as usize) else {
                continue;
            };
            for &ci in table.iter() {
                let crule = &plan.rules[ci as usize];
                // Enablement is read live from the pool slot, exactly like
                // the interpreter's per-rule fetch.
                if !rt.pool.get(crule.pool_id).is_some_and(|r| r.enabled) {
                    continue;
                }
                let sub = self.run_compiled_rule(rt, plan, crule, &occ, depth);
                let denied = !sub.denials.is_empty();
                report.absorb(sub);
                if denied {
                    break;
                }
            }
        }
        report
    }

    fn run_compiled_rule(
        &self,
        rt: &mut Runtime<'_>,
        plan: &CompiledPool,
        crule: &CompiledRule,
        occ: &Occurrence,
        depth: usize,
    ) -> ExecReport {
        let mut report = ExecReport {
            max_depth: depth,
            ..ExecReport::default()
        };
        let cond = match eval_compiled_cond(&crule.when, &crule.checks, occ, rt.state) {
            Ok(b) => b,
            Err(msg) => {
                let m = format!("condition error in {}: {msg}", crule.name);
                rt.log.push(AuditEntry {
                    time: rt.detector.now(),
                    kind: AuditKind::EngineError,
                    rule: Some(crule.name.clone()),
                    event: Some(occ.event),
                    message: m.clone(),
                });
                report.errors.push(m);
                false
            }
        };
        let (actions, kind) = if cond {
            report.fired += 1;
            (&crule.then, AuditKind::Fired)
        } else {
            report.else_taken += 1;
            (&crule.otherwise, AuditKind::ElseTaken)
        };
        rt.log.push(AuditEntry {
            time: rt.detector.now(),
            kind,
            rule: Some(crule.name.clone()),
            event: Some(occ.event),
            message: String::new(),
        });
        for action in actions.iter() {
            let before = report.denials.len();
            let sub = self.run_compiled_action(rt, plan, crule, action, occ, depth);
            report.absorb(sub);
            if report.denials.len() > before {
                break;
            }
        }
        report
    }

    fn run_compiled_action(
        &self,
        rt: &mut Runtime<'_>,
        plan: &CompiledPool,
        crule: &CompiledRule,
        action: &CAction,
        occ: &Occurrence,
        depth: usize,
    ) -> ExecReport {
        let mut report = ExecReport::default();
        let now = rt.detector.now();
        let log_entry = |rt: &mut Runtime<'_>, kind: AuditKind, message: String| {
            rt.log.push(AuditEntry {
                time: now,
                kind,
                rule: Some(crule.name.clone()),
                event: Some(occ.event),
                message,
            });
        };
        // Resolve an integer argument or record an engine error
        // (byte-identical to the interpreter's `arg!`).
        macro_rules! arg {
            ($p:expr) => {
                match $p.resolve_int(occ) {
                    Some(v) => v,
                    None => {
                        let m = format!("rule {}: parameter {} missing in {}", crule.name, $p, occ);
                        log_entry(rt, AuditKind::EngineError, m.clone());
                        report.errors.push(m);
                        return report;
                    }
                }
            };
        }
        // Apply a monitor mutation (byte-identical to the interpreter's
        // `apply`).
        macro_rules! apply {
            ($f:expr) => {{
                let f: &mut dyn FnMut(&mut dyn AuthState) -> ActionOutcome = &mut $f;
                match f(rt.state) {
                    ActionOutcome::Done => report.mutations += 1,
                    ActionOutcome::Rejected(m) => {
                        report.denials.push(m.clone());
                        log_entry(rt, AuditKind::ActionRejected, m);
                    }
                }
            }};
        }

        match action {
            CAction::Allow => {
                report.allows += 1;
                log_entry(rt, AuditKind::Allowed, String::new());
            }
            CAction::RaiseError(m) => {
                report.denials.push(m.clone());
                log_entry(rt, AuditKind::Denied, m.clone());
            }
            CAction::Alert(m) => {
                report.alerts.push(m.clone());
                log_entry(rt, AuditKind::Alert, m.clone());
            }
            CAction::RaiseEvent { id, name, params } => {
                let event = name;
                if !self.assume_acyclic && depth + 1 > self.max_cascade_depth {
                    let m = format!(
                        "rule {}: cascade depth {} exceeded raising {event}",
                        crule.name, self.max_cascade_depth
                    );
                    log_entry(rt, AuditKind::EngineError, m.clone());
                    report.errors.push(m);
                    return report;
                }
                let mut p = Params::new();
                for (name, src) in params {
                    match src.resolve(occ) {
                        Some(v) => p.set(name.clone(), v),
                        None => {
                            let m = format!(
                                "rule {}: parameter {src} missing for raised event {event}",
                                crule.name
                            );
                            log_entry(rt, AuditKind::EngineError, m.clone());
                            report.errors.push(m);
                            return report;
                        }
                    }
                }
                // Raise by the pre-resolved id: the detector's name table
                // is append-only, so this is `raise_named` minus the
                // lookup.
                match rt.detector.raise(*id, p) {
                    Ok(dets) => {
                        let sub = self.process_compiled(rt, plan, dets, depth + 1);
                        report.absorb(sub);
                    }
                    Err(e) => {
                        let m = format!("rule {}: raise {event} failed: {e}", crule.name);
                        log_entry(rt, AuditKind::EngineError, m.clone());
                        report.errors.push(m);
                    }
                }
            }
            CAction::CancelPlus { id, key_param } => {
                let key = occ.params.get(key_param).cloned();
                let n = rt.detector.cancel_timers_where(*id, |base| {
                    base.is_some_and(|b| b.params.get(key_param) == key.as_ref())
                });
                report.mutations += n;
            }
            CAction::DisableRuleClass(c) => {
                let n = rt.pool.set_class_enabled(*c, false);
                report.mutations += 1;
                log_entry(rt, AuditKind::RuleToggle, format!("disabled {n} {c} rules"));
            }
            CAction::EnableRuleClass(c) => {
                let n = rt.pool.set_class_enabled(*c, true);
                report.mutations += 1;
                log_entry(rt, AuditKind::RuleToggle, format!("enabled {n} {c} rules"));
            }
            CAction::DisableRule(name) => {
                rt.pool.set_enabled(name, false);
                report.mutations += 1;
                log_entry(rt, AuditKind::RuleToggle, format!("disabled rule {name}"));
            }
            CAction::EnableRule(name) => {
                rt.pool.set_enabled(name, true);
                report.mutations += 1;
                log_entry(rt, AuditKind::RuleToggle, format!("enabled rule {name}"));
            }
            CAction::AddSessionRole {
                user,
                session,
                role,
            } => {
                let (u, s, r) = (arg!(user), arg!(session), arg!(role));
                apply!(|st: &mut dyn AuthState| st.add_session_role(u, s, r));
            }
            CAction::DropSessionRole {
                user,
                session,
                role,
            } => {
                let (u, s, r) = (arg!(user), arg!(session), arg!(role));
                apply!(|st: &mut dyn AuthState| st.drop_session_role(u, s, r));
            }
            CAction::DeactivateRoleEverywhere(role) => {
                let r = arg!(role);
                apply!(|st: &mut dyn AuthState| st.deactivate_role_everywhere(r));
            }
            CAction::EnableRole(role) => {
                let r = arg!(role);
                apply!(|st: &mut dyn AuthState| st.enable_role(r));
            }
            CAction::DisableRole { role, deactivate } => {
                let r = arg!(role);
                let d = *deactivate;
                apply!(|st: &mut dyn AuthState| st.disable_role(r, d));
            }
            CAction::AssignUser { user, role } => {
                let (u, r) = (arg!(user), arg!(role));
                apply!(|st: &mut dyn AuthState| st.assign_user(u, r));
            }
            CAction::DeassignUser { user, role } => {
                let (u, r) = (arg!(user), arg!(role));
                apply!(|st: &mut dyn AuthState| st.deassign_user(u, r));
            }
            CAction::Custom { name, args } => {
                let mut resolved = Vec::with_capacity(args.len());
                for a in args {
                    resolved.push(arg!(a));
                }
                let outcome = rt.state.custom_action(name, &resolved, occ);
                match outcome {
                    ActionOutcome::Done => report.mutations += 1,
                    ActionOutcome::Rejected(m) => {
                        report.denials.push(m.clone());
                        log_entry(rt, AuditKind::ActionRejected, m);
                    }
                }
            }
        }
        report
    }
}

impl CompiledPool {
    /// Number of events with at least one dispatch entry.
    pub fn dispatch_events(&self) -> usize {
        self.dispatch.iter().filter(|t| !t.is_empty()).count()
    }

    /// Render the plan deterministically: dispatch tables by ascending
    /// event id, then each rule's bytecode, check table and action lists.
    /// Golden-filed by the shell's `analyze --plan`.
    pub fn dump(&self, detector: &Detector) -> String {
        use std::fmt::Write as _;
        let ev_name = |id: EventId| {
            detector
                .name_of(id)
                .map_or_else(|| format!("event#{}", id.0), str::to_string)
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compiled plan: {} rules, {} dispatch events",
            self.rules.len(),
            self.dispatch_events()
        );
        let _ = writeln!(out);
        for (eid, table) in self.dispatch.iter().enumerate() {
            if table.is_empty() {
                continue;
            }
            let names: Vec<&str> = table
                .iter()
                .map(|&ci| self.rules[ci as usize].name.as_str())
                .collect();
            let _ = writeln!(
                out,
                "on {} (#{eid}): {}",
                ev_name(EventId(eid as u32)),
                names.join(", ")
            );
        }
        for rule in &self.rules {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "rule {} [pool #{} on {}]",
                rule.name,
                rule.pool_id.0,
                ev_name(rule.event)
            );
            for (i, op) in rule.when.iter().enumerate() {
                let line = match op {
                    CondOp::Push(b) => format!("push {b}"),
                    CondOp::Check(c) => format!("check {}", rule.checks[*c as usize]),
                    CondOp::Not => "not".to_string(),
                    CondOp::JumpIfFalse(t) => format!("jfalse -> {t}"),
                    CondOp::JumpIfTrue(t) => format!("jtrue -> {t}"),
                    CondOp::Jump(t) => format!("jump -> {t}"),
                };
                let _ = writeln!(out, "  w{i:<3} {line}");
            }
            for a in rule.then.iter() {
                let _ = writeln!(out, "  then {a}");
            }
            for a in rule.otherwise.iter() {
                let _ = writeln!(out, "  else {a}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::attach_rule;
    use crate::log::AuditLog;
    use crate::rule::Rule;
    use crate::state::PermissiveState;

    fn lower_expr(cond: &CondExpr) -> (Vec<CondOp>, Vec<CCheck>) {
        let detector = Detector::new(Ts::ZERO);
        let mut checks = Vec::new();
        let mut code = Vec::new();
        lower_cond(cond, "t", &detector, &NoBake, &mut checks, &mut code).unwrap();
        (code, checks)
    }

    fn eval(cond: &CondExpr, occ: &Occurrence, state: &dyn AuthState) -> Result<bool, String> {
        let (code, checks) = lower_expr(cond);
        eval_compiled_cond(&code, &checks, occ, state)
    }

    fn occ() -> Occurrence {
        Occurrence::primitive(
            EventId(1),
            Ts::from_secs(1),
            Params::new().with("user", 7i64),
        )
    }

    #[test]
    fn bytecode_matches_interpreter_on_boolean_shapes() {
        let state = PermissiveState::default();
        let detector = Detector::new(Ts::ZERO);
        let t = CondExpr::True;
        let f = CondExpr::False;
        let shapes = vec![
            t.clone(),
            f.clone(),
            CondExpr::Not(Box::new(t.clone())),
            CondExpr::All(vec![]),
            CondExpr::Any(vec![]),
            CondExpr::All(vec![t.clone(), f.clone(), t.clone()]),
            CondExpr::Any(vec![f.clone(), t.clone(), f.clone()]),
            CondExpr::If {
                guard: Box::new(t.clone()),
                then: Box::new(f.clone()),
                otherwise: Box::new(t.clone()),
            },
            CondExpr::If {
                guard: Box::new(f.clone()),
                then: Box::new(f.clone()),
                otherwise: Box::new(CondExpr::Not(Box::new(f.clone()))),
            },
            CondExpr::All(vec![
                CondExpr::Any(vec![f.clone(), t.clone()]),
                CondExpr::Not(Box::new(f.clone())),
            ]),
        ];
        let o = occ();
        for shape in shapes {
            let want = crate::executor::eval_cond(&shape, &o, &state, &detector).unwrap();
            let got = eval(&shape, &o, &state).unwrap();
            assert_eq!(got, want, "shape {shape}");
        }
    }

    #[test]
    fn short_circuit_skips_errors_like_interpreter() {
        let state = PermissiveState::default();
        let o = occ();
        // Missing param in the second conjunct: only reached when the
        // first is true.
        let bad = CondExpr::check(Check::UserExists(ParamRef::param("missing")));
        let all = CondExpr::All(vec![CondExpr::False, bad.clone()]);
        assert_eq!(eval(&all, &o, &state), Ok(false), "short-circuited");
        let all = CondExpr::All(vec![CondExpr::True, bad.clone()]);
        assert!(eval(&all, &o, &state).is_err(), "reached -> propagates");
        let any = CondExpr::Any(vec![CondExpr::True, bad]);
        assert_eq!(eval(&any, &o, &state), Ok(true), "short-circuited");
    }

    #[test]
    fn error_text_matches_interpreter() {
        let state = PermissiveState::default();
        let detector = Detector::new(Ts::ZERO);
        let o = occ();
        let cond = CondExpr::check(Check::Assigned {
            user: ParamRef::param("ghost"),
            role: ParamRef::Int(3),
        });
        let want = crate::executor::eval_cond(&cond, &o, &state, &detector).unwrap_err();
        let got = eval(&cond, &o, &state).unwrap_err();
        assert_eq!(got, want);
    }

    #[test]
    fn compile_resolves_dispatch_in_priority_order() {
        let mut detector = Detector::new(Ts::ZERO);
        let mut pool = RulePool::new();
        let e = detector.primitive("e");
        attach_rule(
            &mut detector,
            &mut pool,
            Rule::new("low", e, CondExpr::True),
        );
        attach_rule(
            &mut detector,
            &mut pool,
            Rule::new("high", e, CondExpr::True).priority(10),
        );
        let plan = compile(&pool, &detector, &NoBake).unwrap();
        let table = &plan.dispatch[e.0 as usize];
        let names: Vec<&str> = table
            .iter()
            .map(|&ci| plan.rules[ci as usize].name.as_str())
            .collect();
        assert_eq!(names, vec!["high", "low"]);
        assert!(plan.dump(&detector).contains("on e"));
    }

    #[test]
    fn unknown_raise_event_fails_compile() {
        let mut detector = Detector::new(Ts::ZERO);
        let mut pool = RulePool::new();
        let e = detector.primitive("e");
        attach_rule(
            &mut detector,
            &mut pool,
            Rule::new("ghost", e, CondExpr::True).then(vec![ActionSpec::RaiseEvent {
                event: "nothing".into(),
                params: vec![],
            }]),
        );
        let err = compile(&pool, &detector, &NoBake).unwrap_err();
        assert_eq!(
            err,
            CompileError::UnknownEvent {
                rule: "ghost".into(),
                event: "nothing".into()
            }
        );
    }

    #[test]
    fn compiled_dispatch_matches_interpreter_report_and_audit() {
        // One denying guard + one applying rule + a cascade: the report
        // counters and the audit log must be byte-identical on both paths.
        let build = || {
            let mut detector = Detector::new(Ts::ZERO);
            let mut pool = RulePool::new();
            let e = detector.primitive("req");
            let _cascade = detector.primitive("go");
            attach_rule(
                &mut detector,
                &mut pool,
                Rule::new(
                    "guard",
                    e,
                    CondExpr::check(Check::UserExists(ParamRef::param("user"))),
                )
                .priority(10)
                .otherwise(vec![ActionSpec::RaiseError("no user".into())]),
            );
            attach_rule(
                &mut detector,
                &mut pool,
                Rule::new("apply", e, CondExpr::True).then(vec![
                    ActionSpec::RaiseEvent {
                        event: "go".into(),
                        params: vec![("user".into(), ParamRef::param("user"))],
                    },
                    ActionSpec::Allow,
                ]),
            );
            let go = detector.lookup("go").unwrap();
            attach_rule(
                &mut detector,
                &mut pool,
                Rule::new("cascaded", go, CondExpr::True).then(vec![ActionSpec::AddSessionRole {
                    user: ParamRef::param("user"),
                    session: ParamRef::Int(2),
                    role: ParamRef::Int(5),
                }]),
            );
            (detector, pool)
        };
        let exec = Executor::new();

        for params in [Params::new().with("user", 1i64), Params::new()] {
            let (mut d1, mut p1) = build();
            let mut s1 = PermissiveState::default();
            let mut l1 = AuditLog::new();
            let e = d1.lookup("req").unwrap();
            let mut rt = Runtime {
                detector: &mut d1,
                pool: &mut p1,
                state: &mut s1,
                log: &mut l1,
            };
            let interp = exec.dispatch(&mut rt, e, params.clone()).unwrap();

            let (mut d2, mut p2) = build();
            let plan = compile(&p2, &d2, &NoBake).unwrap();
            let mut s2 = PermissiveState::default();
            let mut l2 = AuditLog::new();
            let mut rt = Runtime {
                detector: &mut d2,
                pool: &mut p2,
                state: &mut s2,
                log: &mut l2,
            };
            let compiled = exec.dispatch_compiled(&mut rt, &plan, e, params).unwrap();

            assert_eq!(interp, compiled);
            assert_eq!(s1.log, s2.log, "same mutations in the same order");
            assert_eq!(l1.entries(), l2.entries(), "byte-identical audit");
        }
    }

    #[test]
    fn baked_dsd_empty_sets_reduce_to_session_existence() {
        struct Host;
        impl CompileHost for Host {
            fn authorized_closure(&self, role: i64) -> Option<Vec<i64>> {
                Some(vec![role, 99])
            }
            fn dsd_sets(&self, _role: i64) -> Option<Vec<(Vec<i64>, usize)>> {
                Some(vec![])
            }
        }
        let detector = Detector::new(Ts::ZERO);
        let cond = CondExpr::All(vec![
            CondExpr::check(Check::Authorized {
                user: ParamRef::param("user"),
                role: ParamRef::Int(3),
            }),
            CondExpr::check(Check::DsdSatisfied {
                session: ParamRef::param("session"),
                role: ParamRef::Int(3),
            }),
        ]);
        let mut checks = Vec::new();
        let mut code = Vec::new();
        lower_cond(&cond, "t", &detector, &Host, &mut checks, &mut code).unwrap();
        assert!(matches!(checks[0], CCheck::AuthorizedBaked { .. }));
        assert!(matches!(checks[1], CCheck::DsdBaked { .. }));
        let state = PermissiveState::default();
        let o = Occurrence::primitive(
            EventId(1),
            Ts::from_secs(1),
            Params::new().with("user", 7i64).with("session", 2i64),
        );
        // PermissiveState: session exists, authorized_any -> assigned -> true.
        assert_eq!(eval_compiled_cond(&code, &checks, &o, &state), Ok(true));
    }
}
