//! # sentinel — the OWTE active rule system
//!
//! A from-scratch reimplementation of the rule layer of Sentinel+ (§3, §5 of
//! the paper): **On-When-Then-Else** authorization rules — ECA rules
//! enhanced with *alternative actions* and access-control-aware operator
//! semantics.
//!
//! * [`rule::Rule`] — the five-component rule (name, On event, When
//!   conditions, Then actions, Else alternative actions) with the paper's
//!   classifications (administrative / activity-control / active-security)
//!   and granularities (specialized / localized / globalized);
//! * [`lang`] — conditions and actions as inspectable *data*, renderable in
//!   the paper's OWTE syntax (rules are generated, printed, compared and
//!   regenerated — never hand-written closures);
//! * [`pool::RulePool`] — the rule pool, indexed by triggering event with
//!   priorities and bulk enable/disable;
//! * [`executor::Executor`] — evaluation: condition checks against an
//!   [`state::AuthState`], Then/Else action execution, cascaded rule
//!   triggering via raised events, depth-guarded;
//! * [`log::AuditLog`] — every firing, denial, alert and failure, queryable
//!   for active-security windows.
//!
//! The crate is monitor-agnostic: it depends only on the `snoop` event
//! substrate and sees the authorization state through the [`state::AuthState`]
//! trait (implemented over the `rbac` reference monitor by `owte-core`).

#![warn(missing_docs)]

pub mod compile;
pub mod effect;
pub mod executor;
pub mod lang;
pub mod log;
pub mod pool;
pub mod rule;
pub mod state;

pub use compile::{
    compile, CAction, CCheck, CRef, CompileError, CompileHost, CompiledPool, CompiledRule, CondOp,
    DsdSetBaked, NoBake,
};
pub use effect::{
    action_footprint, check_footprint, cond_footprint, custom_check_footprint, runtime_target,
    static_target, Access, Footprint, Region, RuleTouch, Target,
};
pub use executor::{attach_rule, eval_cond, ExecReport, Executor, Runtime};
pub use lang::{ActionSpec, Check, CondExpr, ParamRef};
pub use log::{AuditEntry, AuditKind, AuditLog};
pub use pool::{PoolStats, RulePool};
pub use rule::{Granularity, Rule, RuleClass, RuleId};
pub use state::{ActionOutcome, AuthState, PermissiveState};
