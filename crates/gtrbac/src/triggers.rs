//! TRBAC-style role triggers (Bertino et al., TISSEC '01): "periodic role
//! enabling and disabling, and temporal dependencies among such actions",
//! expressed as `event ∧ conditions → action after Δ`.
//!
//! The paper positions OWTE rules as a superset of role triggers; this
//! module provides the classic trigger form so policies written against
//! TRBAC can be carried over. The OWTE generator lowers each trigger to a
//! (possibly PLUS-delayed) rule; the baseline engine interprets them
//! directly through [`fire`].

use rbac::{RoleId, System};
use serde::{Deserialize, Serialize};
use snoop::Dur;
use std::fmt;

/// The status events a trigger can react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoleEvent {
    /// `enableR` fired.
    Enabled(RoleId),
    /// `disableR` fired.
    Disabled(RoleId),
}

impl fmt::Display for RoleEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoleEvent::Enabled(r) => write!(f, "enable({r})"),
            RoleEvent::Disabled(r) => write!(f, "disable({r})"),
        }
    }
}

/// A status predicate over the current role states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatusPred {
    /// The role is currently enabled.
    IsEnabled(RoleId),
    /// The role is currently disabled.
    IsDisabled(RoleId),
}

impl StatusPred {
    /// Evaluate against the monitor.
    pub fn holds(&self, sys: &System) -> bool {
        match self {
            StatusPred::IsEnabled(r) => sys.is_enabled(*r).unwrap_or(false),
            StatusPred::IsDisabled(r) => !sys.is_enabled(*r).unwrap_or(true),
        }
    }
}

/// The action side of a trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoleAction {
    /// Enable the role.
    Enable(RoleId),
    /// Disable the role (deactivating it in sessions).
    Disable(RoleId),
}

/// A role trigger: on `on`, if all `conditions` hold, perform `action`
/// after `delay` (zero = immediately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoleTrigger {
    /// Trigger name.
    pub name: String,
    /// The status event that fires the trigger.
    pub on: RoleEvent,
    /// Status conditions checked at fire time.
    pub conditions: Vec<StatusPred>,
    /// The resulting status action.
    pub action: RoleAction,
    /// Delay before the action (`after Δ`).
    pub delay: Dur,
}

/// Interpret `trigger` for an occurred `event`. Returns the action to
/// perform (with its delay) if the trigger matches and its conditions hold.
pub fn fire(trigger: &RoleTrigger, event: RoleEvent, sys: &System) -> Option<(RoleAction, Dur)> {
    if trigger.on != event {
        return None;
    }
    if trigger.conditions.iter().all(|c| c.holds(sys)) {
        Some((trigger.action, trigger.delay))
    } else {
        None
    }
}

/// Apply a role action to the monitor immediately.
pub fn apply(action: RoleAction, sys: &mut System) -> rbac::Result<()> {
    match action {
        RoleAction::Enable(r) => sys.enable_role(r),
        RoleAction::Disable(r) => sys.disable_role(r, true).map(|_| ()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_fires_on_matching_event_with_conditions() {
        let mut sys = System::new();
        let a = sys.add_role("a").unwrap();
        let b = sys.add_role("b").unwrap();
        let t = RoleTrigger {
            name: "couple".into(),
            on: RoleEvent::Enabled(a),
            conditions: vec![StatusPred::IsEnabled(b)],
            action: RoleAction::Enable(b),
            delay: Dur::from_secs(60),
        };
        // Matching event, condition holds (b enabled by default).
        assert_eq!(
            fire(&t, RoleEvent::Enabled(a), &sys),
            Some((RoleAction::Enable(b), Dur::from_secs(60)))
        );
        // Wrong event.
        assert_eq!(fire(&t, RoleEvent::Disabled(a), &sys), None);
        // Condition fails.
        sys.disable_role(b, false).unwrap();
        assert_eq!(fire(&t, RoleEvent::Enabled(a), &sys), None);
    }

    #[test]
    fn apply_actions() {
        let mut sys = System::new();
        let r = sys.add_role("r").unwrap();
        apply(RoleAction::Disable(r), &mut sys).unwrap();
        assert!(!sys.is_enabled(r).unwrap());
        apply(RoleAction::Enable(r), &mut sys).unwrap();
        assert!(sys.is_enabled(r).unwrap());
    }

    #[test]
    fn status_preds() {
        let mut sys = System::new();
        let r = sys.add_role("r").unwrap();
        assert!(StatusPred::IsEnabled(r).holds(&sys));
        assert!(!StatusPred::IsDisabled(r).holds(&sys));
        sys.disable_role(r, false).unwrap();
        assert!(StatusPred::IsDisabled(r).holds(&sys));
        // Unknown role: conservative false for enabled.
        assert!(!StatusPred::IsEnabled(RoleId(99)).holds(&sys));
    }
}
