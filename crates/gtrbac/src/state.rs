//! Per-role temporal policies: the GTRBAC constraint *data model*.
//!
//! GTRBAC distinguishes a role being **enabled** (activatable) from being
//! **active** (in some session). Temporal policies say *when* a role is
//! enabled and *how long* activations may last. Enforcement is done either
//! by generated OWTE rules (calendar events + PLUS events) or directly by
//! the baseline engine evaluating [`TemporalPolicies::should_be_enabled`].

use crate::periodic::BoundedPeriodic;
use rbac::{RoleId, UserId};
use serde::{Deserialize, Serialize};
use snoop::{Dur, Ts};
use std::collections::HashMap;

/// Temporal policy attached to one role.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoleTemporalPolicy {
    /// When the role is enabled. `None` = always enabled.
    pub enabling: Option<BoundedPeriodic>,
    /// Max duration of one activation, for all users (paper Rule 7's Δ —
    /// "limiting car parking to a fixed number of hours at one time").
    pub max_activation: Option<Dur>,
    /// Per-user overrides of `max_activation` (the rule in the paper is
    /// per user-role: "role R3 is deactivated after Δ … by user Bob").
    pub per_user_max_activation: HashMap<UserId, Dur>,
}

impl RoleTemporalPolicy {
    /// The Δ applying to `user`, if any (per-user override wins).
    pub fn activation_limit(&self, user: UserId) -> Option<Dur> {
        self.per_user_max_activation
            .get(&user)
            .copied()
            .or(self.max_activation)
    }

    /// Does this policy constrain anything?
    pub fn is_trivial(&self) -> bool {
        self.enabling.is_none()
            && self.max_activation.is_none()
            && self.per_user_max_activation.is_empty()
    }
}

/// The temporal policies of all roles.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TemporalPolicies {
    policies: HashMap<RoleId, RoleTemporalPolicy>,
}

impl TemporalPolicies {
    /// No policies (all roles always enabled, unbounded activations).
    pub fn new() -> TemporalPolicies {
        TemporalPolicies::default()
    }

    /// Set (replacing) a role's policy.
    pub fn set(&mut self, role: RoleId, policy: RoleTemporalPolicy) {
        if policy.is_trivial() {
            self.policies.remove(&role);
        } else {
            self.policies.insert(role, policy);
        }
    }

    /// Set just the enabling expression.
    pub fn set_enabling(&mut self, role: RoleId, when: BoundedPeriodic) {
        self.policies.entry(role).or_default().enabling = Some(when);
    }

    /// Set the role-wide activation limit.
    pub fn set_max_activation(&mut self, role: RoleId, delta: Dur) {
        self.policies.entry(role).or_default().max_activation = Some(delta);
    }

    /// Set a per-user activation limit.
    pub fn set_user_max_activation(&mut self, role: RoleId, user: UserId, delta: Dur) {
        self.policies
            .entry(role)
            .or_default()
            .per_user_max_activation
            .insert(user, delta);
    }

    /// The policy for a role, if any.
    pub fn get(&self, role: RoleId) -> Option<&RoleTemporalPolicy> {
        self.policies.get(&role)
    }

    /// Remove a role's policy (role deleted / policy change).
    pub fn remove(&mut self, role: RoleId) -> Option<RoleTemporalPolicy> {
        self.policies.remove(&role)
    }

    /// Should the role be enabled at `t` according to its enabling
    /// expression? Roles without one are always enabled.
    pub fn should_be_enabled(&self, role: RoleId, t: Ts) -> bool {
        match self.policies.get(&role).and_then(|p| p.enabling.as_ref()) {
            Some(expr) => expr.contains(t),
            None => true,
        }
    }

    /// The Δ limit for (role, user) activations, if any.
    pub fn activation_limit(&self, role: RoleId, user: UserId) -> Option<Dur> {
        self.policies.get(&role)?.activation_limit(user)
    }

    /// The earliest instant strictly after `t` at which *any* role's
    /// enabling state may flip, or `None` when every enabling expression is
    /// constant from `t` on. This is the temporal half of a read-path
    /// snapshot's validity horizon: a snapshot built at `t` stops being
    /// trustworthy at this instant, because some role may enable or
    /// disable then.
    pub fn next_transition_after(&self, t: Ts) -> Option<Ts> {
        self.policies
            .values()
            .filter_map(|p| p.enabling.as_ref())
            .filter_map(|e| e.next_transition_after(t))
            .min()
    }

    /// Roles with a non-trivial policy.
    pub fn constrained_roles(&self) -> impl Iterator<Item = RoleId> + '_ {
        self.policies.keys().copied()
    }

    /// Number of constrained roles.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// No constrained roles?
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::periodic::PeriodicWindow;
    use snoop::Civil;

    fn at(h: u32) -> Ts {
        Civil::new(2000, 1, 5, h, 0, 0).to_ts()
    }

    #[test]
    fn unconstrained_roles_always_enabled() {
        let p = TemporalPolicies::new();
        assert!(p.should_be_enabled(RoleId(1), at(3)));
        assert!(p.is_empty());
    }

    #[test]
    fn shift_enabling() {
        let mut p = TemporalPolicies::new();
        let day_doctor = RoleId(1);
        p.set_enabling(
            day_doctor,
            BoundedPeriodic::window(PeriodicWindow::daily(8, 0, 16, 0)),
        );
        assert!(!p.should_be_enabled(day_doctor, at(7)));
        assert!(p.should_be_enabled(day_doctor, at(12)));
        assert!(!p.should_be_enabled(day_doctor, at(18)));
        // Other roles untouched.
        assert!(p.should_be_enabled(RoleId(2), at(18)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn activation_limits_per_user_override() {
        let mut p = TemporalPolicies::new();
        let r = RoleId(3);
        let bob = UserId(1);
        let jane = UserId(2);
        p.set_max_activation(r, Dur::from_hours(4));
        p.set_user_max_activation(r, bob, Dur::from_hours(2));
        assert_eq!(p.activation_limit(r, bob), Some(Dur::from_hours(2)));
        assert_eq!(p.activation_limit(r, jane), Some(Dur::from_hours(4)));
        assert_eq!(p.activation_limit(RoleId(9), bob), None);
    }

    #[test]
    fn next_transition_is_earliest_over_all_roles() {
        let mut p = TemporalPolicies::new();
        assert_eq!(p.next_transition_after(at(3)), None);
        p.set_enabling(
            RoleId(1),
            BoundedPeriodic::window(PeriodicWindow::daily(8, 0, 16, 0)),
        );
        p.set_enabling(
            RoleId(2),
            BoundedPeriodic::window(PeriodicWindow::daily(10, 0, 12, 0)),
        );
        // At 09:00, role 2's 10:00 opening is still ahead but role 1's next
        // flip is 16:00 — the earliest wins.
        assert_eq!(p.next_transition_after(at(9)), Some(at(10)));
        assert_eq!(p.next_transition_after(at(13)), Some(at(16)));
        // Activation limits alone impose no horizon.
        let mut q = TemporalPolicies::new();
        q.set_max_activation(RoleId(5), Dur::from_hours(1));
        assert_eq!(q.next_transition_after(at(9)), None);
    }

    #[test]
    fn trivial_policy_is_dropped() {
        let mut p = TemporalPolicies::new();
        p.set(RoleId(1), RoleTemporalPolicy::default());
        assert!(p.is_empty());
        p.set_max_activation(RoleId(1), Dur::from_secs(1));
        assert_eq!(p.constrained_roles().count(), 1);
        p.remove(RoleId(1));
        assert!(p.is_empty());
    }
}
