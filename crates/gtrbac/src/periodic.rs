//! GTRBAC periodic-time expressions: `(I, P)` pairs.
//!
//! The paper writes them as `⟨[begin, end], P⟩` where `P` is "a periodic
//! expression denoting an infinite set of periodic time instants" and
//! `[begin, end]` bounds them. We represent `P` as a *window* between two
//! calendar patterns (e.g. daily 10:00 → 17:00 — exactly the events
//! `[10:00:00/*/*/*]` / `[17:00:00/*/*/*]` in Rule 6) and `I` as optional
//! absolute bounds.

use serde::{Deserialize, Serialize};
use snoop::{CalendarExpr, Ts};
use std::fmt;

/// A recurring window opened by `start` occurrences and closed by `end`
/// occurrences (daily shifts, monthly periods, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodicWindow {
    /// Pattern whose occurrences open the window.
    pub start: CalendarExpr,
    /// Pattern whose occurrences close it.
    pub end: CalendarExpr,
}

impl PeriodicWindow {
    /// A daily window `start_h:start_m — end_h:end_m` (the common shift
    /// form: "day doctor works 9 a.m. to 5 p.m.").
    pub fn daily(start_h: u32, start_m: u32, end_h: u32, end_m: u32) -> PeriodicWindow {
        PeriodicWindow {
            start: CalendarExpr::daily(start_h, start_m, 0),
            end: CalendarExpr::daily(end_h, end_m, 0),
        }
    }

    /// Is `t` inside the window? True when the most recent `start`
    /// occurrence at-or-before `t` is more recent than the most recent
    /// `end` occurrence (start instants count as inside, end instants as
    /// outside).
    pub fn contains(&self, t: Ts) -> bool {
        let last_start = self.start.prev_at_or_before(t);
        let last_end = self.end.prev_at_or_before(t);
        match (last_start, last_end) {
            (Some(s), Some(e)) => e < s,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// The next boundary (open or close) strictly after `t`, with the state
    /// that begins there. Drives baseline enable/disable scheduling.
    pub fn next_boundary(&self, t: Ts) -> Option<(Ts, bool)> {
        let ns = self.start.next_after(t);
        let ne = self.end.next_after(t);
        match (ns, ne) {
            (Some(s), Some(e)) if s <= e => Some((s, true)),
            (Some(_) | None, Some(e)) => Some((e, false)),
            (Some(s), None) => Some((s, true)),
            (None, None) => None,
        }
    }
}

impl fmt::Display for PeriodicWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]..[{}]", self.start, self.end)
    }
}

/// A GTRBAC `(I, P)` expression: optional absolute interval bounds plus an
/// optional periodic window. With neither, it denotes *always*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BoundedPeriodic {
    /// `begin` of I (inclusive).
    pub begin: Option<Ts>,
    /// `end` of I (inclusive).
    pub end: Option<Ts>,
    /// P, as a recurring window.
    pub window: Option<PeriodicWindow>,
}

impl BoundedPeriodic {
    /// The unbounded expression (always true).
    pub fn always() -> BoundedPeriodic {
        BoundedPeriodic::default()
    }

    /// Only a periodic window, unbounded interval.
    pub fn window(w: PeriodicWindow) -> BoundedPeriodic {
        BoundedPeriodic {
            window: Some(w),
            ..BoundedPeriodic::default()
        }
    }

    /// Restrict to `[begin, end]`.
    pub fn bounded(mut self, begin: Ts, end: Ts) -> BoundedPeriodic {
        self.begin = Some(begin);
        self.end = Some(end);
        self
    }

    /// The next instant strictly after `t` at which `contains` may change
    /// value, or `None` if the expression is constant from `t` on. Used to
    /// bound how long a published read-path snapshot stays valid: a
    /// snapshot taken at `t` can answer enablement questions up to (but not
    /// including) this instant.
    ///
    /// Candidates are the next periodic-window boundary, the interval
    /// `begin` (the expression switches on there), and the first instant
    /// after the inclusive interval `end` (it switches off one tick later).
    pub fn next_transition_after(&self, t: Ts) -> Option<Ts> {
        let mut next: Option<Ts> = None;
        let mut consider = |c: Ts| {
            if c > t && next.is_none_or(|n| c < n) {
                next = Some(c);
            }
        };
        if let Some(w) = &self.window {
            if let Some((b, _)) = w.next_boundary(t) {
                consider(b);
            }
        }
        if let Some(b) = self.begin {
            consider(b);
        }
        if let Some(e) = self.end {
            // `contains` treats `end` as inclusive, so the switch-off
            // happens one tick (1 µs) after it.
            consider(Ts(e.0.saturating_add(1)));
        }
        next
    }

    /// Is `t` inside both I and P?
    pub fn contains(&self, t: Ts) -> bool {
        if let Some(b) = self.begin {
            if t < b {
                return false;
            }
        }
        if let Some(e) = self.end {
            if t > e {
                return false;
            }
        }
        match &self.window {
            Some(w) => w.contains(t),
            None => true,
        }
    }
}

impl fmt::Display for BoundedPeriodic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        match (self.begin, self.end) {
            (Some(b), Some(e)) => write!(f, "[{b}, {e}]")?,
            (Some(b), None) => write!(f, "[{b}, ∞)")?,
            (None, Some(e)) => write!(f, "(-∞, {e}]")?,
            (None, None) => write!(f, "[*]")?,
        }
        if let Some(w) = &self.window {
            write!(f, ", {w}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop::Civil;

    fn at(y: i32, mo: u32, d: u32, h: u32, mi: u32) -> Ts {
        Civil::new(y, mo, d, h, mi, 0).to_ts()
    }

    #[test]
    fn daily_window_contains() {
        let w = PeriodicWindow::daily(10, 0, 17, 0);
        assert!(!w.contains(at(2000, 1, 5, 9, 59)));
        assert!(w.contains(at(2000, 1, 5, 10, 0)), "start inclusive");
        assert!(w.contains(at(2000, 1, 5, 12, 0)));
        assert!(!w.contains(at(2000, 1, 5, 17, 0)), "end exclusive");
        assert!(!w.contains(at(2000, 1, 5, 20, 0)));
        // Next morning, before opening.
        assert!(!w.contains(at(2000, 1, 6, 8, 0)));
    }

    #[test]
    fn overnight_window() {
        // Night shift 22:00 → 06:00 wraps midnight naturally with the
        // last-start-vs-last-end rule.
        let w = PeriodicWindow::daily(22, 0, 6, 0);
        assert!(w.contains(at(2000, 1, 5, 23, 0)));
        assert!(w.contains(at(2000, 1, 6, 3, 0)));
        assert!(!w.contains(at(2000, 1, 6, 7, 0)));
        assert!(!w.contains(at(2000, 1, 5, 12, 0)));
    }

    #[test]
    fn next_boundary_alternates() {
        let w = PeriodicWindow::daily(10, 0, 17, 0);
        let (t1, open1) = w.next_boundary(at(2000, 1, 5, 8, 0)).unwrap();
        assert_eq!(t1, at(2000, 1, 5, 10, 0));
        assert!(open1);
        let (t2, open2) = w.next_boundary(t1).unwrap();
        assert_eq!(t2, at(2000, 1, 5, 17, 0));
        assert!(!open2);
        let (t3, open3) = w.next_boundary(t2).unwrap();
        assert_eq!(t3, at(2000, 1, 6, 10, 0));
        assert!(open3);
    }

    #[test]
    fn next_transition_covers_window_and_interval_edges() {
        let w = BoundedPeriodic::window(PeriodicWindow::daily(10, 0, 17, 0));
        assert_eq!(
            w.next_transition_after(at(2000, 1, 5, 8, 0)),
            Some(at(2000, 1, 5, 10, 0))
        );
        assert_eq!(
            w.next_transition_after(at(2000, 1, 5, 10, 0)),
            Some(at(2000, 1, 5, 17, 0))
        );
        // An inclusive interval end switches off one tick later.
        let end = at(2000, 1, 5, 12, 0);
        let b = BoundedPeriodic::always().bounded(at(2000, 1, 1, 0, 0), end);
        assert_eq!(b.next_transition_after(end), Some(Ts(end.0 + 1)));
        // Constant expressions have no horizon.
        assert_eq!(
            BoundedPeriodic::always().next_transition_after(at(2000, 6, 1, 0, 0)),
            None
        );
    }

    #[test]
    fn bounded_periodic() {
        let p = BoundedPeriodic::window(PeriodicWindow::daily(10, 0, 17, 0))
            .bounded(at(2000, 2, 1, 0, 0), at(2000, 3, 1, 0, 0));
        assert!(!p.contains(at(2000, 1, 15, 12, 0)), "before I");
        assert!(p.contains(at(2000, 2, 15, 12, 0)));
        assert!(!p.contains(at(2000, 2, 15, 20, 0)), "outside P");
        assert!(!p.contains(at(2000, 3, 15, 12, 0)), "after I");
        assert!(BoundedPeriodic::always().contains(at(2000, 6, 1, 3, 0)));
    }
}
