//! # gtrbac — Generalized Temporal RBAC constraints
//!
//! The temporal extension layer the paper enforces in §4.3.2 (Joshi et
//! al.'s GTRBAC and Bertino et al.'s TRBAC):
//!
//! * [`periodic`] — `(I, P)` periodic-time expressions built from the
//!   paper's `hh:mm:ss/mm/dd/yyyy` calendar patterns, with window
//!   containment and boundary iteration;
//! * [`state`] — per-role temporal policies: periodic enabling windows
//!   (shifts) and maximum activation durations Δ, per role and per
//!   user-role (Rule 7);
//! * [`constraints`] — disabling-time SoD (Rule 6), post-condition
//!   control-flow dependencies (Rule 8), prerequisite activation (Rule 9);
//! * [`triggers`] — classic TRBAC role triggers
//!   (`event ∧ conditions → action after Δ`).
//!
//! Everything here is policy *data* plus pure check functions over the
//! `rbac` monitor. The OWTE engine compiles these into composite events and
//! rules; the baseline engine evaluates them inline — both enforce the same
//! semantics, which the integration suite property-tests.

#![warn(missing_docs)]

pub mod constraints;
pub mod periodic;
pub mod state;
pub mod triggers;

pub use constraints::{
    DisablingTimeSod, EnablingTimeSod, PostConditionCfd, PrerequisiteActivation,
    TemporalConstraints, TemporalViolation,
};
pub use periodic::{BoundedPeriodic, PeriodicWindow};
pub use state::{RoleTemporalPolicy, TemporalPolicies};
pub use triggers::{fire, RoleAction, RoleEvent, RoleTrigger, StatusPred};
