//! GTRBAC dependency and time-based SoD constraints (§4.3.2 of the paper;
//! Joshi et al., SACMAT '03).
//!
//! Three families the paper enforces with OWTE rules:
//!
//! * **Disabling-time SoD** (Rule 6): two roles from a set cannot be
//!   disabled at the same time inside `(I, P)` — availability ("Nurse and
//!   Doctor cannot both be off").
//! * **Post-condition control-flow dependency** (Rule 8): if role A is
//!   enabled then role B must also be enabled, else neither.
//! * **Prerequisite activation** (Rule 9 / SEQUENCE): a role may be
//!   activated only while another is active ("JuniorEmp only while Manager
//!   is active").
//!
//! The structs here are pure policy data plus check functions; the OWTE
//! generator compiles them into composite events + rules, the baseline
//! engine calls the checks directly.

use crate::periodic::BoundedPeriodic;
use rbac::{RbacError, RoleId, System};
use serde::{Deserialize, Serialize};
use snoop::Ts;
use std::collections::BTreeSet;
use std::fmt;

/// Why a temporal-constraint check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalViolation {
    /// Disabling the role would leave ≥ 2 roles of a disabling-time SoD set
    /// disabled inside its window.
    DisablingTimeSod {
        /// The role whose disabling was refused.
        role: RoleId,
        /// The already-disabled conflicting role.
        conflicting: RoleId,
    },
    /// Enabling the role would leave ≥ 2 roles of an enabling-time SoD set
    /// enabled inside its window.
    EnablingTimeSod {
        /// The role whose enabling was refused.
        role: RoleId,
        /// The already-enabled conflicting role.
        conflicting: RoleId,
    },
    /// The required post-condition role could not be enabled.
    PostConditionUnsatisfied {
        /// The trigger role.
        role: RoleId,
        /// The role that must be enabled with it.
        required: RoleId,
    },
    /// The prerequisite role is not active anywhere.
    PrerequisiteNotActive {
        /// The role being activated.
        role: RoleId,
        /// The role that must be active first.
        prerequisite: RoleId,
    },
}

impl fmt::Display for TemporalViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalViolation::DisablingTimeSod { role, conflicting } => write!(
                f,
                "cannot disable {role}: {conflicting} is already disabled in the SoD window"
            ),
            TemporalViolation::EnablingTimeSod { role, conflicting } => write!(
                f,
                "cannot enable {role}: {conflicting} is already enabled in the SoD window"
            ),
            TemporalViolation::PostConditionUnsatisfied { role, required } => {
                write!(
                    f,
                    "cannot enable {role}: required role {required} cannot be enabled"
                )
            }
            TemporalViolation::PrerequisiteNotActive { role, prerequisite } => {
                write!(
                    f,
                    "cannot activate {role}: prerequisite {prerequisite} not active"
                )
            }
        }
    }
}

/// Rule 6: no two roles of `roles` disabled simultaneously within `window`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisablingTimeSod {
    /// Constraint name.
    pub name: String,
    /// The role set RS.
    pub roles: BTreeSet<RoleId>,
    /// The `(I, P)` window in which the constraint applies.
    pub window: BoundedPeriodic,
}

impl DisablingTimeSod {
    /// May `role` be disabled at `t`? Outside the window: always. Inside:
    /// only if every *other* role of the set is still enabled.
    pub fn check_disable(
        &self,
        sys: &System,
        role: RoleId,
        t: Ts,
    ) -> Result<(), TemporalViolation> {
        if !self.roles.contains(&role) || !self.window.contains(t) {
            return Ok(());
        }
        for &other in &self.roles {
            if other == role {
                continue;
            }
            if !sys.is_enabled(other).unwrap_or(true) {
                return Err(TemporalViolation::DisablingTimeSod {
                    role,
                    conflicting: other,
                });
            }
        }
        Ok(())
    }
}

/// The dual of Rule 6: no two roles of `roles` may be *enabled*
/// simultaneously within `window` (GTRBAC's enabling-time SoD — e.g. two
/// mutually suspicious auditor roles must never be usable at once).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnablingTimeSod {
    /// Constraint name.
    pub name: String,
    /// The role set RS.
    pub roles: BTreeSet<RoleId>,
    /// The `(I, P)` window in which the constraint applies.
    pub window: BoundedPeriodic,
}

impl EnablingTimeSod {
    /// May `role` be enabled at `t`? Outside the window: always. Inside:
    /// only if every *other* role of the set is disabled.
    pub fn check_enable(&self, sys: &System, role: RoleId, t: Ts) -> Result<(), TemporalViolation> {
        if !self.roles.contains(&role) || !self.window.contains(t) {
            return Ok(());
        }
        for &other in &self.roles {
            if other == role {
                continue;
            }
            if sys.is_enabled(other).unwrap_or(false) {
                return Err(TemporalViolation::EnablingTimeSod {
                    role,
                    conflicting: other,
                });
            }
        }
        Ok(())
    }
}

/// Rule 8: enabling `role` requires `required` enabled too; failure to
/// enable `required` rolls `role` back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostConditionCfd {
    /// The trigger role (SysAdmin).
    pub role: RoleId,
    /// The role that must accompany it (SysAudit).
    pub required: RoleId,
}

/// Rule 9: `role` may be activated only while `prerequisite` is active in
/// some session; deactivating `prerequisite` deactivates `role`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrerequisiteActivation {
    /// The dependent role (JuniorEmp).
    pub role: RoleId,
    /// The role that must be active first (Manager).
    pub prerequisite: RoleId,
}

impl PrerequisiteActivation {
    /// May `role` be activated now?
    pub fn check_activate(&self, sys: &System, role: RoleId) -> Result<(), TemporalViolation> {
        if role != self.role {
            return Ok(());
        }
        let active = sys.all_sessions().any(|s| {
            sys.session_roles(s)
                .is_ok_and(|rs| rs.contains(&self.prerequisite))
        });
        if active {
            Ok(())
        } else {
            Err(TemporalViolation::PrerequisiteNotActive {
                role,
                prerequisite: self.prerequisite,
            })
        }
    }
}

/// All temporal constraints of a policy.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TemporalConstraints {
    /// Disabling-time SoD sets.
    pub disabling_sod: Vec<DisablingTimeSod>,
    /// Enabling-time SoD sets.
    pub enabling_sod: Vec<EnablingTimeSod>,
    /// Post-condition CFD pairs.
    pub post_conditions: Vec<PostConditionCfd>,
    /// Prerequisite-activation pairs.
    pub prerequisites: Vec<PrerequisiteActivation>,
}

impl TemporalConstraints {
    /// No constraints.
    pub fn new() -> TemporalConstraints {
        TemporalConstraints::default()
    }

    /// Check every disabling-time SoD before disabling `role` at `t`.
    pub fn check_disable(
        &self,
        sys: &System,
        role: RoleId,
        t: Ts,
    ) -> Result<(), TemporalViolation> {
        for c in &self.disabling_sod {
            c.check_disable(sys, role, t)?;
        }
        Ok(())
    }

    /// Check every enabling-time SoD before enabling `role` at `t`.
    pub fn check_enable(&self, sys: &System, role: RoleId, t: Ts) -> Result<(), TemporalViolation> {
        for c in &self.enabling_sod {
            c.check_enable(sys, role, t)?;
        }
        Ok(())
    }

    /// Check prerequisite constraints before activating `role`.
    pub fn check_activate(&self, sys: &System, role: RoleId) -> Result<(), TemporalViolation> {
        for c in &self.prerequisites {
            c.check_activate(sys, role)?;
        }
        Ok(())
    }

    /// Enable `role` honouring post-condition CFDs: required roles are
    /// enabled in the same step; if one cannot be enabled, everything is
    /// rolled back (the paper's "otherwise both the roles should not be
    /// enabled").
    pub fn enable_with_post_conditions(
        &self,
        sys: &mut System,
        role: RoleId,
    ) -> Result<Vec<RoleId>, RbacError> {
        let mut enabled = Vec::new();
        let mut stack = vec![role];
        while let Some(r) = stack.pop() {
            if sys.is_enabled(r).unwrap_or(false) {
                continue;
            }
            match sys.enable_role(r) {
                Ok(()) => enabled.push(r),
                Err(e) => {
                    for &u in &enabled {
                        let _ = sys.disable_role(u, false);
                    }
                    return Err(e);
                }
            }
            for pc in &self.post_conditions {
                if pc.role == r {
                    stack.push(pc.required);
                }
            }
        }
        Ok(enabled)
    }

    /// Dependent roles that must be deactivated when `prerequisite` is
    /// deactivated (Rule 9's cascade).
    pub fn dependents_of(&self, prerequisite: RoleId) -> Vec<RoleId> {
        self.prerequisites
            .iter()
            .filter(|p| p.prerequisite == prerequisite)
            .map(|p| p.role)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::periodic::PeriodicWindow;
    use snoop::Civil;

    fn hospital() -> (System, RoleId, RoleId) {
        let mut sys = System::new();
        let nurse = sys.add_role("Nurse").unwrap();
        let doctor = sys.add_role("Doctor").unwrap();
        (sys, nurse, doctor)
    }

    fn at(h: u32) -> Ts {
        Civil::new(2000, 1, 5, h, 0, 0).to_ts()
    }

    #[test]
    fn disabling_sod_inside_window() {
        let (mut sys, nurse, doctor) = hospital();
        let c = DisablingTimeSod {
            name: "nurse-doctor".into(),
            roles: [nurse, doctor].into(),
            window: BoundedPeriodic::window(PeriodicWindow::daily(10, 0, 17, 0)),
        };
        // Both enabled: disabling nurse at noon is fine.
        assert!(c.check_disable(&sys, nurse, at(12)).is_ok());
        // Doctor already disabled: nurse refused inside the window...
        sys.disable_role(doctor, false).unwrap();
        assert!(matches!(
            c.check_disable(&sys, nurse, at(12)),
            Err(TemporalViolation::DisablingTimeSod { .. })
        ));
        // ...but allowed outside it.
        assert!(c.check_disable(&sys, nurse, at(20)).is_ok());
        // Roles outside the set are never constrained.
        let other = sys.add_role("Admin").unwrap();
        assert!(c.check_disable(&sys, other, at(12)).is_ok());
    }

    #[test]
    fn enabling_sod_inside_window() {
        let (mut sys, nurse, doctor) = hospital();
        let c = EnablingTimeSod {
            name: "auditors".into(),
            roles: [nurse, doctor].into(),
            window: BoundedPeriodic::window(PeriodicWindow::daily(10, 0, 17, 0)),
        };
        // Both are enabled by default: enabling a disabled one conflicts.
        sys.disable_role(nurse, false).unwrap();
        assert!(matches!(
            c.check_enable(&sys, nurse, at(12)),
            Err(TemporalViolation::EnablingTimeSod { .. })
        ));
        // Outside the window it is fine.
        assert!(c.check_enable(&sys, nurse, at(20)).is_ok());
        // Once the doctor is disabled, the nurse may come up inside it.
        sys.disable_role(doctor, false).unwrap();
        assert!(c.check_enable(&sys, nurse, at(12)).is_ok());
    }

    #[test]
    fn post_condition_enable_cascades() {
        let mut sys = System::new();
        let sysadmin = sys.add_role("SysAdmin").unwrap();
        let sysaudit = sys.add_role("SysAudit").unwrap();
        sys.disable_role(sysadmin, false).unwrap();
        sys.disable_role(sysaudit, false).unwrap();
        let mut tc = TemporalConstraints::new();
        tc.post_conditions.push(PostConditionCfd {
            role: sysadmin,
            required: sysaudit,
        });
        let enabled = tc.enable_with_post_conditions(&mut sys, sysadmin).unwrap();
        assert_eq!(enabled.len(), 2);
        assert!(sys.is_enabled(sysadmin).unwrap());
        assert!(sys.is_enabled(sysaudit).unwrap());
    }

    #[test]
    fn post_condition_rollback_on_failure() {
        let mut sys = System::new();
        let sysadmin = sys.add_role("SysAdmin").unwrap();
        sys.disable_role(sysadmin, false).unwrap();
        let ghost = RoleId(99); // never created → enable fails
        let mut tc = TemporalConstraints::new();
        tc.post_conditions.push(PostConditionCfd {
            role: sysadmin,
            required: ghost,
        });
        assert!(tc.enable_with_post_conditions(&mut sys, sysadmin).is_err());
        assert!(
            !sys.is_enabled(sysadmin).unwrap(),
            "SysAdmin rolled back when SysAudit could not be enabled"
        );
    }

    #[test]
    fn prerequisite_activation() {
        let mut sys = System::new();
        let manager = sys.add_role("Manager").unwrap();
        let junior = sys.add_role("JuniorEmp").unwrap();
        let alice = sys.add_user("alice").unwrap();
        let bob = sys.add_user("bob").unwrap();
        sys.assign_user(alice, manager).unwrap();
        sys.assign_user(bob, junior).unwrap();
        let c = PrerequisiteActivation {
            role: junior,
            prerequisite: manager,
        };
        // No manager active: junior refused.
        assert!(matches!(
            c.check_activate(&sys, junior),
            Err(TemporalViolation::PrerequisiteNotActive { .. })
        ));
        // Manager activates → junior allowed.
        let ms = sys.create_session(alice, &[manager]).unwrap();
        assert!(c.check_activate(&sys, junior).is_ok());
        // Manager deactivates → dependents reported for cascade.
        sys.drop_active_role(alice, ms, manager).unwrap();
        let mut tc = TemporalConstraints::new();
        tc.prerequisites.push(c);
        assert_eq!(tc.dependents_of(manager), vec![junior]);
        assert!(tc.check_activate(&sys, junior).is_err());
    }

    #[test]
    fn violation_messages() {
        let v = TemporalViolation::PrerequisiteNotActive {
            role: RoleId(1),
            prerequisite: RoleId(2),
        };
        assert!(v.to_string().contains("prerequisite"));
    }
}
