//! A simulated process: one durable engine over a simulated disk, plus
//! everything the scheduler needs to fork, crash, restart and compare
//! worlds.

use crate::op::SimOp;
use owte_core::{
    DurableConfig, DurableEngine, FaultKind, FaultPlan, FaultyStorage, JournalOp, MemStorage,
    ScriptedFault,
};
use policy::{EffectReport, PolicyGraph};
use rbac::SessionId;
use snoop::{Dur, Ts};
use std::fmt;
use std::rc::Rc;

/// The storage stack every simulated process runs on: deterministic
/// fault injection over a crashable in-memory disk.
pub type SimStore = FaultyStorage<MemStorage>;

/// One scheduler decision. Schedules are position-independent: each
/// choice resolves against the current world state ("the next client
/// op", "the earliest pending timer"), so a recorded schedule replays
/// deterministically from the initial world with no absolute indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Choice {
    /// Run the next client operation to completion.
    NextOp,
    /// Run the next client operation, but kill the store at its `at`-th
    /// storage operation (1-based); if that operation is an append,
    /// exactly `keep` bytes still reach the disk (a torn write). The
    /// process then power-fails: unsynced bytes are dropped.
    CrashDuringNextOp {
        /// Which storage op of the client op dies.
        at: u64,
        /// Bytes of the in-flight append that land first.
        keep: usize,
    },
    /// Power-fail between operations (unsynced bytes are dropped).
    CrashNow,
    /// Advance virtual time to the earliest pending detector timer,
    /// firing it (and any rules it cascades into).
    FireNextTimer,
    /// Restart the crashed process: recover from surviving bytes.
    Restart,
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choice::NextOp => write!(f, "op"),
            Choice::CrashDuringNextOp { at, keep } => {
                write!(f, "crash-during-op(storage-op {at}, keep {keep}B)")
            }
            Choice::CrashNow => write!(f, "crash"),
            Choice::FireNextTimer => write!(f, "fire-timer"),
            Choice::Restart => write!(f, "restart"),
        }
    }
}

/// Why an apply call did not produce a successor state. Generic over the
/// choice alphabet so every [`crate::explore::SimWorld`] shares it; the
/// default parameter keeps the single-process `StepError` spelling.
#[derive(Debug, Clone)]
pub enum StepError<C = Choice> {
    /// The choice is not enabled in the current state (e.g. `Restart`
    /// while running) — schedules being shrunk hit this; explorers never
    /// should.
    NotEnabled(C),
    /// The step itself surfaced a violation (recovery failed outright).
    Violation(crate::invariants::Violation),
}

/// The process half of a world: either a live engine or a crashed disk
/// waiting for a restart.
#[derive(Clone)]
enum Node {
    Running(Box<DurableEngine<SimStore>>),
    Crashed(MemStorage),
}

/// One complete simulated state: process, pending client script, the
/// acknowledged-operation ledger, and the schedule that produced it.
#[derive(Clone)]
pub struct World {
    node: Node,
    ops: Rc<Vec<SimOp>>,
    cursor: usize,
    sessions: Vec<Option<SessionId>>,
    acked: Vec<JournalOp>,
    crashes: usize,
    just_restarted: bool,
    graph: Rc<PolicyGraph>,
    config: DurableConfig,
    start: Ts,
    cascade_bound: Option<usize>,
    effects: Rc<EffectReport>,
    schedule: Vec<Choice>,
}

impl World {
    /// Boot a fresh world: instantiate `graph`, write the genesis
    /// snapshot, and stage `ops` as the client script.
    pub fn new(
        graph: &PolicyGraph,
        ops: Vec<SimOp>,
        config: DurableConfig,
    ) -> Result<World, String> {
        let storage = FaultyStorage::new(MemStorage::new(), 0, FaultPlan::default());
        let mut engine = DurableEngine::create(storage, graph, Ts::ZERO, config.clone())
            .map_err(|e| format!("world genesis failed: {e}"))?;
        let report = engine.engine().analyze();
        let cascade_bound = report.max_sync_depth;
        let effects = Rc::new(report.effects);
        // Arm effect recording so every explored schedule carries the
        // observed-touch evidence the `FootprintViolated` invariant
        // certifies against. Recording is pure monitoring state, so it
        // is safe to toggle through the journal-bypassing handle.
        engine.engine_mut().record_effects(true);
        let users = graph.users.len();
        Ok(World {
            node: Node::Running(Box::new(engine)),
            ops: Rc::new(ops),
            cursor: 0,
            sessions: vec![None; users],
            acked: Vec::new(),
            crashes: 0,
            just_restarted: false,
            graph: Rc::new(graph.clone()),
            config,
            start: Ts::ZERO,
            cascade_bound,
            effects,
            schedule: Vec::new(),
        })
    }

    /// The live engine, if the process is up.
    pub fn engine(&self) -> Option<&DurableEngine<SimStore>> {
        match &self.node {
            Node::Running(d) => Some(d),
            Node::Crashed(_) => None,
        }
    }

    /// Is the process down, waiting for a restart?
    pub fn is_crashed(&self) -> bool {
        matches!(self.node, Node::Crashed(_))
    }

    /// Operations the engine acknowledged journaling, in execution order.
    pub fn acked(&self) -> &[JournalOp] {
        &self.acked
    }

    /// The policy graph this world's engines are built from.
    pub fn graph(&self) -> &PolicyGraph {
        &self.graph
    }

    /// Virtual start instant (worlds boot at `Ts::ZERO`).
    pub fn start(&self) -> Ts {
        self.start
    }

    /// Crash/restart cycles taken so far.
    pub fn crashes(&self) -> usize {
        self.crashes
    }

    /// Did the immediately preceding step recover from a crash? The
    /// invariant layer runs its durability checks exactly then.
    pub fn just_restarted(&self) -> bool {
        self.just_restarted
    }

    /// The analyzer's proved synchronous cascade bound for this policy.
    pub fn cascade_bound(&self) -> Option<usize> {
        self.cascade_bound
    }

    /// The static effect report (per-rule declared footprints) computed
    /// once at genesis; the invariant layer checks every observed touch
    /// against it.
    pub fn effects(&self) -> &EffectReport {
        &self.effects
    }

    /// The schedule (sequence of applied choices) that produced this
    /// world from its initial state.
    pub fn schedule(&self) -> &[Choice] {
        &self.schedule
    }

    /// Index of the next client operation.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The full client script.
    pub fn ops(&self) -> &[SimOp] {
        &self.ops
    }

    /// Human-readable description of what `choice` would do here.
    pub fn describe(&self, choice: &Choice) -> String {
        let next = self
            .ops
            .get(self.cursor)
            .map(|o| o.to_string())
            .unwrap_or_else(|| "<none>".into());
        match choice {
            Choice::NextOp => format!("op[{}]: {next}", self.cursor),
            Choice::CrashDuringNextOp { at, keep } => format!(
                "op[{}]: {next} — killed at storage op {at} (keep {keep}B), then power loss",
                self.cursor
            ),
            Choice::CrashNow => "power loss (unsynced bytes dropped)".to_string(),
            Choice::FireNextTimer => match self.engine().and_then(|d| d.engine().next_timer_at()) {
                Some(t) => format!("advance to {t} and fire pending timers"),
                None => "fire-timer (none pending)".to_string(),
            },
            Choice::Restart => "restart: recover from surviving bytes".to_string(),
        }
    }

    /// How many storage operations the next client op performs, measured
    /// on a throwaway clone of the engine. `0` when it resolves to a
    /// no-op (unknown name, no session) or nothing is pending.
    pub fn probe_next_op_storage_ops(&self) -> u64 {
        let (Node::Running(d), Some(op)) = (&self.node, self.ops.get(self.cursor)) else {
            return 0;
        };
        let mut clone = d.clone();
        let mut sessions = self.sessions.clone();
        let before = clone.storage().ops();
        let _ = apply_client_op(&mut clone, &mut sessions, op);
        clone.storage().ops() - before
    }

    /// Digest of what the disk would hold if the process power-failed
    /// right now (synced bytes only). `None` while crashed. Diagnostic:
    /// two worlds whose crash digests agree recover identically.
    pub fn crash_digest(&self) -> Option<u64> {
        match &self.node {
            Node::Running(d) => {
                let mut mem = d.storage().inner().clone();
                mem.crash();
                Some(mem.state_digest())
            }
            Node::Crashed(_) => None,
        }
    }

    /// Apply one scheduler choice, transforming this world into its
    /// successor.
    pub fn apply(&mut self, choice: &Choice) -> Result<(), StepError> {
        self.just_restarted = false;
        match choice {
            Choice::NextOp => {
                let Node::Running(d) = &mut self.node else {
                    return Err(StepError::NotEnabled(choice.clone()));
                };
                let Some(op) = self.ops.get(self.cursor) else {
                    return Err(StepError::NotEnabled(choice.clone()));
                };
                if let Some(j) = apply_client_op(d, &mut self.sessions, op) {
                    self.acked.push(j);
                }
                self.cursor += 1;
            }
            Choice::CrashDuringNextOp { at, keep } => {
                let Node::Running(d) = &mut self.node else {
                    return Err(StepError::NotEnabled(choice.clone()));
                };
                let Some(op) = self.ops.get(self.cursor) else {
                    return Err(StepError::NotEnabled(choice.clone()));
                };
                let base = d.storage().ops();
                d.storage_mut().plan_mut().scripted.push(ScriptedFault {
                    at: base + at,
                    kind: FaultKind::Kill { keep: *keep },
                });
                if let Some(j) = apply_client_op(d, &mut self.sessions, op) {
                    // The journal append (and its sync) beat the kill
                    // point: the op is acknowledged even though the
                    // client saw an error from a later storage op.
                    self.acked.push(j);
                }
                self.cursor += 1;
                self.power_fail();
            }
            Choice::CrashNow => {
                if !matches!(self.node, Node::Running(_)) {
                    return Err(StepError::NotEnabled(choice.clone()));
                }
                self.power_fail();
            }
            Choice::FireNextTimer => {
                let Node::Running(d) = &mut self.node else {
                    return Err(StepError::NotEnabled(choice.clone()));
                };
                let Some(deadline) = d.engine().next_timer_at() else {
                    return Err(StepError::NotEnabled(choice.clone()));
                };
                let before = d.op_count();
                let _ = d.advance_to(deadline);
                if d.op_count() > before {
                    self.acked.push(JournalOp::AdvanceTo { to: deadline });
                }
            }
            Choice::Restart => {
                let Node::Crashed(_) = &self.node else {
                    return Err(StepError::NotEnabled(choice.clone()));
                };
                let Node::Crashed(mem) =
                    std::mem::replace(&mut self.node, Node::Crashed(MemStorage::new()))
                else {
                    unreachable!("matched Crashed above");
                };
                let storage = FaultyStorage::new(mem, 0, FaultPlan::default());
                match DurableEngine::open(storage, self.config.clone()) {
                    Ok(mut d) => {
                        // Recovery replays the journal with recording at
                        // its snapshotted setting; re-arm deterministically
                        // so post-restart execution is certified too.
                        d.engine_mut().record_effects(true);
                        self.node = Node::Running(Box::new(d));
                        self.just_restarted = true;
                    }
                    Err(e) => {
                        self.schedule.push(choice.clone());
                        return Err(StepError::Violation(
                            crate::invariants::Violation::RecoveryFailed {
                                error: e.to_string(),
                            },
                        ));
                    }
                }
            }
        }
        self.schedule.push(choice.clone());
        Ok(())
    }

    /// Drop the engine mid-flight and keep only what a real power loss
    /// would: the synced bytes of the inner store.
    fn power_fail(&mut self) {
        let node = std::mem::replace(&mut self.node, Node::Crashed(MemStorage::new()));
        let mut mem = match node {
            Node::Running(d) => d.into_storage().into_inner(),
            Node::Crashed(mem) => mem,
        };
        mem.crash();
        self.node = Node::Crashed(mem);
        self.crashes += 1;
        // Session handles do not survive the process.
        for s in &mut self.sessions {
            *s = None;
        }
    }

    /// An order-independent fingerprint of everything observable about
    /// this state: process status, disk digest, engine-visible RBAC
    /// state, clock, pending timers, audit log and client-script cursor.
    /// Two worlds with equal fingerprints behave identically under every
    /// future schedule, so the exhaustive explorer prunes revisits.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.cursor as u64);
        h.u64(self.acked.len() as u64);
        for s in &self.sessions {
            match s {
                Some(sid) => h.str(&format!("S{sid}")),
                None => h.str("-"),
            }
        }
        match &self.node {
            Node::Crashed(mem) => {
                h.str("crashed");
                h.u64(mem.state_digest());
            }
            Node::Running(d) => {
                h.str("running");
                h.u64(d.storage().inner().state_digest());
                h.u64(d.op_count());
                hash_engine(&mut h, d.engine());
            }
        }
        h.finish()
    }
}

/// Fold everything observable about a live engine into `h`: clock,
/// cascade depth, pending timers, sessions with their users and active
/// roles, role enablement, assignments, context and the audit log.
/// Shared by the single-process and cluster fingerprints.
pub(crate) fn hash_engine(h: &mut Fnv, e: &owte_core::Engine) {
    h.str(&format!("{}", e.now()));
    h.u64(e.deepest_cascade() as u64);
    for t in e.pending_timer_deadlines() {
        h.str(&format!("{t}"));
    }
    let sys = e.system();
    for s in sys.all_sessions() {
        h.str(&format!("{s}"));
        if let Ok(u) = sys.session_user(s) {
            h.str(&format!("{u}"));
        }
        if let Ok(roles) = sys.session_roles(s) {
            for r in roles {
                h.str(&format!("{r}"));
            }
        }
    }
    for r in sys.all_roles() {
        h.str(if sys.is_enabled(r).unwrap_or(false) {
            "e"
        } else {
            "d"
        });
    }
    for u in sys.all_users() {
        if let Ok(assigned) = sys.assigned_roles(u) {
            for r in assigned {
                h.str(&format!("{r}"));
            }
        }
        h.str(";");
    }
    let ctx: std::collections::BTreeMap<_, _> = e.context().values().iter().collect();
    for (k, v) in ctx {
        h.str(k);
        h.str(v);
    }
    h.u64(e.log().entries().len() as u64);
    for entry in e.log().entries() {
        h.str(&format!("{entry}"));
    }
}

/// Run one client op against a live engine, returning the journal record
/// to add to the acknowledged ledger if the engine acknowledged it (the
/// op counter moved), regardless of the client-visible result. Unknown
/// names and missing sessions make the op a silent no-op, mirroring the
/// proptest drivers. Shared with the cluster world (whose leader runs
/// the identical storage stack) and the replication integration tests.
pub fn apply_client_op(
    d: &mut DurableEngine<SimStore>,
    sessions: &mut [Option<SessionId>],
    op: &SimOp,
) -> Option<JournalOp> {
    let before = d.op_count();
    let journaled: Option<JournalOp> = match op {
        SimOp::CreateSession { user } => {
            let u = d.user_id(&workload::enterprise::user_name(*user)).ok()?;
            let res = d.create_session(u, &[]);
            if let Ok(s) = res {
                sessions[*user] = Some(s);
            }
            Some(JournalOp::CreateSession {
                user: u,
                initial: vec![],
            })
        }
        SimOp::DeleteSession { user } => {
            let s = sessions[*user].take()?;
            let u = d.user_id(&workload::enterprise::user_name(*user)).ok()?;
            let _ = d.delete_session(u, s);
            Some(JournalOp::DeleteSession {
                user: u,
                session: s,
            })
        }
        SimOp::AddActiveRole { user, role } => {
            let s = sessions[*user]?;
            let u = d.user_id(&workload::enterprise::user_name(*user)).ok()?;
            let r = d.role_id(role).ok()?;
            let _ = d.add_active_role(u, s, r);
            Some(JournalOp::AddActiveRole {
                user: u,
                session: s,
                role: r,
            })
        }
        SimOp::DropActiveRole { user, role } => {
            let s = sessions[*user]?;
            let u = d.user_id(&workload::enterprise::user_name(*user)).ok()?;
            let r = d.role_id(role).ok()?;
            let _ = d.drop_active_role(u, s, r);
            Some(JournalOp::DropActiveRole {
                user: u,
                session: s,
                role: r,
            })
        }
        SimOp::CheckAccess { user, op, obj } => {
            let s = sessions[*user]?;
            let o = d.engine().system().op_by_name(op).ok()?;
            let b = d.engine().system().obj_by_name(obj).ok()?;
            let _ = d.check_access(s, o, b);
            Some(JournalOp::CheckAccess {
                session: s,
                op: o,
                obj: b,
                purpose: -1,
            })
        }
        SimOp::AssignUser { user, role } => {
            let u = d.user_id(&workload::enterprise::user_name(*user)).ok()?;
            let r = d.role_id(role).ok()?;
            let _ = d.assign_user(u, r);
            Some(JournalOp::AssignUser { user: u, role: r })
        }
        SimOp::DeassignUser { user, role } => {
            let u = d.user_id(&workload::enterprise::user_name(*user)).ok()?;
            let r = d.role_id(role).ok()?;
            let _ = d.deassign_user(u, r);
            Some(JournalOp::DeassignUser { user: u, role: r })
        }
        SimOp::Advance { secs } => {
            let to = d.engine().now() + Dur::from_secs(*secs);
            let _ = d.advance_to(to);
            Some(JournalOp::AdvanceTo { to })
        }
        SimOp::SetContext { key, value } => {
            let _ = d.set_context(key, value);
            Some(JournalOp::SetContext {
                key: key.clone(),
                value: value.clone(),
            })
        }
    };
    if d.op_count() > before {
        journaled
    } else {
        None
    }
}

/// FNV-1a, built up from strings and integers. Shared by every world's
/// fingerprint.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    pub(crate) fn str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
        self.byte(0xFF); // separator
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.byte(*b);
        }
        self.byte(0xFE); // separator distinct from str's
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}
