//! Model checking the sharded engine's cross-shard constraint protocol.
//!
//! [`ShardWorld`] wraps a [`shard::ShardGroup`] — N engines, one
//! constraint coordinator, and an explicit in-flight message queue — and
//! exposes every source of nondeterminism as a scheduler choice:
//! *which* client op runs next, *which* protocol message is delivered,
//! *when* the coordinator crashes or restarts, and *when* virtual time
//! reaches a reservation deadline (the probe/orphan-recovery path).
//! Retransmission and timeout behaviour therefore comes only from the
//! explorer's deterministic schedule and the group's virtual clock —
//! never from wall time or an unseeded RNG — so every outcome replays
//! bit-for-bit from its schedule.
//!
//! [`ShardInvariants`] asserts, after every step:
//!
//! * no interleaving drives a capped role's *global* (cross-shard)
//!   activation count past its cardinality;
//! * every shard engine individually satisfies the single-process RBAC
//!   invariants (SSD/DSD/per-user caps — user-local properties, so
//!   per-shard checks are complete for them);
//! * no acknowledged client op is ever lost: once acked, either an
//!   engine resolution exists or something in flight can still produce
//!   one (the seeded `ack_on_reserve` bug falls to exactly this);
//! * at quiescence the coordinator's committed membership view equals
//!   the ground truth in the shard engines.
//!
//! The partial-order rule: two coordinator-bound messages commute when
//! they touch disjoint membership cells (`Release`/`Commit`/
//! `ProbeReply`/`FenceAck` with distinct `(shard, role, user)`
//! footprints); later messages that commute with *everything* still
//! queued ahead of them are deferred rather than branched on. `Reserve`
//! reads global counts and is never pruned, and shard-bound deliveries
//! are never reordered against each other (engine application order is
//! observable in the audit log). Like the cluster world's rule, this is
//! sound for the state invariants checked here.

use crate::explore::{Budget, SimWorld, Stats};
use crate::invariants::{Invariants, Violation};
use crate::world::{hash_engine, Fnv, StepError};
use ::shard::{ClientOp, Dest, Msg, ShardGroup, Unshardable};
use policy::PolicyGraph;
use rbac::{RoleId, UserId};
use std::collections::BTreeMap;
use std::fmt;

/// One scheduler decision over a [`ShardGroup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardChoice {
    /// Submit the next scripted client op at its home shard.
    ClientOp,
    /// Deliver the in-flight message at `slot` to its destination.
    Deliver {
        /// Queue slot (0 = oldest).
        slot: usize,
    },
    /// The coordinator process dies. Its pending reservation table and
    /// every message to or from it die too.
    CoordCrash,
    /// A new coordinator incarnation starts from the durable seed and
    /// fences every shard into its term.
    CoordRestart,
    /// Advance virtual time to the next reservation deadline; the
    /// coordinator probes the orphaned reservation's home shard.
    Tick,
}

impl fmt::Display for ShardChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardChoice::ClientOp => write!(f, "client-op"),
            ShardChoice::Deliver { slot } => write!(f, "deliver[{slot}]"),
            ShardChoice::CoordCrash => write!(f, "coord-crash"),
            ShardChoice::CoordRestart => write!(f, "coord-restart"),
            ShardChoice::Tick => write!(f, "tick"),
        }
    }
}

/// A state cell a coordinator-bound message writes — the footprint the
/// commute rule compares.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Cell {
    /// One `(shard, role, user)` membership bit.
    Member(usize, RoleId, UserId),
    /// A whole shard's membership column (a fence ack replaces it).
    Column(usize),
}

impl Cell {
    fn shard(&self) -> usize {
        match self {
            Cell::Member(s, _, _) => *s,
            Cell::Column(s) => *s,
        }
    }

    fn conflicts(&self, other: &Cell) -> bool {
        if self.shard() != other.shard() {
            return false;
        }
        match (self, other) {
            (Cell::Member(_, r1, u1), Cell::Member(_, r2, u2)) => r1 == r2 && u1 == u2,
            // A column rewrite conflicts with anything on its shard.
            _ => true,
        }
    }
}

/// A shard group as one explorable state: the group (engines, queue,
/// coordinator, script cursor, virtual clock) plus the schedule so far.
#[derive(Clone)]
pub struct ShardWorld {
    group: ShardGroup,
    schedule: Vec<ShardChoice>,
}

impl ShardWorld {
    /// Boot a `shards`-way group over `graph`, scripted with `ops`.
    /// `timeout` is the reservation lifetime in virtual time units;
    /// `ack_on_reserve` seeds the early-ack protocol bug.
    pub fn new(
        graph: &PolicyGraph,
        shards: usize,
        ops: Vec<ClientOp>,
        timeout: u64,
        ack_on_reserve: bool,
    ) -> Result<ShardWorld, Unshardable> {
        Ok(ShardWorld {
            group: ShardGroup::new(graph, shards, ops, timeout, ack_on_reserve)?,
            schedule: Vec::new(),
        })
    }

    /// The shard group under exploration.
    pub fn group(&self) -> &ShardGroup {
        &self.group
    }

    /// The shard group, mutable (tests stage extra script through this).
    pub fn group_mut(&mut self) -> &mut ShardGroup {
        &mut self.group
    }

    /// The write footprint of a coordinator-bound message, or `None` if
    /// it reads global state (`Reserve`) and must never be reordered.
    fn cells(&self, msg: &Msg) -> Option<Vec<Cell>> {
        match msg {
            Msg::Release {
                shard, user, role, ..
            } => Some(vec![Cell::Member(*shard, *role, *user)]),
            Msg::Commit { op, .. } | Msg::ProbeReply { op, .. } => {
                let coord = self.group.coordinator()?;
                match coord.pending().get(op) {
                    Some(r) => Some(vec![Cell::Member(r.shard, r.role, r.user)]),
                    // No reservation: the delivery is a no-op and
                    // commutes with everything.
                    None => Some(Vec::new()),
                }
            }
            Msg::FenceAck { shard, .. } => Some(vec![Cell::Column(*shard)]),
            Msg::Reserve { .. }
            | Msg::Grant { .. }
            | Msg::Refuse { .. }
            | Msg::Probe { .. }
            | Msg::Fence { .. } => None,
        }
    }

    fn not_enabled(choice: &ShardChoice) -> StepError<ShardChoice> {
        StepError::NotEnabled(choice.clone())
    }
}

impl SimWorld for ShardWorld {
    type Choice = ShardChoice;

    fn enabled_choices(
        &self,
        budget: &Budget,
        reduction: bool,
        stats: &mut Stats,
    ) -> Vec<ShardChoice> {
        let g = &self.group;
        let mut out = Vec::new();
        if g.ops_remaining() > 0 {
            out.push(ShardChoice::ClientOp);
        }
        // Deliveries. Shard-bound messages always branch (engine
        // application order is observable). A coordinator-bound message
        // is deferred when it commutes with every coordinator-bound
        // message still ahead of it in the queue.
        let mut ahead: Vec<Vec<Cell>> = Vec::new();
        let mut opaque_ahead = false;
        for (slot, env) in g.queue().iter().enumerate() {
            if !g.deliverable(slot) {
                continue;
            }
            if env.to == Dest::Coord && reduction {
                let footprint = self.cells(&env.msg);
                let commutes = match &footprint {
                    Some(cells) if !ahead.is_empty() && !opaque_ahead => ahead
                        .iter()
                        .all(|prev| !prev.iter().any(|p| cells.iter().any(|c| c.conflicts(p)))),
                    _ => false,
                };
                match footprint {
                    Some(cells) => ahead.push(cells),
                    None => opaque_ahead = true,
                }
                if commutes {
                    stats.pruned_commute += 1;
                    continue;
                }
            }
            out.push(ShardChoice::Deliver { slot });
        }
        if g.coordinator().is_some() && g.crashes() < budget.max_crashes {
            out.push(ShardChoice::CoordCrash);
        }
        if g.coordinator().is_none() {
            out.push(ShardChoice::CoordRestart);
        }
        if g.next_deadline().is_some() {
            out.push(ShardChoice::Tick);
        }
        out
    }

    fn apply_choice(&mut self, choice: &ShardChoice) -> Result<(), StepError<ShardChoice>> {
        let ok = match choice {
            ShardChoice::ClientOp => {
                if self.group.ops_remaining() == 0 {
                    return Err(Self::not_enabled(choice));
                }
                self.group.submit_next();
                true
            }
            ShardChoice::Deliver { slot } => self.group.deliver(*slot),
            ShardChoice::CoordCrash => self.group.crash_coordinator(),
            ShardChoice::CoordRestart => self.group.restart_coordinator(),
            ShardChoice::Tick => self.group.tick(),
        };
        if !ok {
            return Err(Self::not_enabled(choice));
        }
        self.schedule.push(choice.clone());
        Ok(())
    }

    fn describe_choice(&self, choice: &ShardChoice) -> String {
        match choice {
            ShardChoice::ClientOp => match self.group.next_op() {
                Some(op) => format!(
                    "client op on shard{}: {op}",
                    match op {
                        ClientOp::CreateSession(u)
                        | ClientOp::DeleteSession(u)
                        | ClientOp::AddRole(u, _)
                        | ClientOp::DropRole(u, _) => self.group.shard_of(*u),
                    }
                ),
                None => "client op: <none>".to_string(),
            },
            ShardChoice::Deliver { slot } => match self.group.queue().get(*slot) {
                Some(env) => format!("deliver msg[{slot}]: {}", env.describe()),
                None => format!("deliver msg[{slot}]: <empty slot>"),
            },
            ShardChoice::CoordCrash => {
                "coordinator crashes; reservations and its in-flight messages die".to_string()
            }
            ShardChoice::CoordRestart => {
                "coordinator restarts from the durable seed and fences every shard".to_string()
            }
            ShardChoice::Tick => {
                "advance virtual time to the next reservation deadline and probe".to_string()
            }
        }
    }

    fn fingerprint(&self) -> u64 {
        let g = &self.group;
        let mut h = Fnv::new();
        h.u64(g.ops_remaining() as u64);
        h.u64(g.now());
        h.u64(g.crashes() as u64);
        let seed = g.coord_seed();
        h.u64(seed.term);
        h.u64(seed.epoch);
        h.u64(seed.next_op);
        match g.coordinator() {
            Some(c) => {
                h.str("up");
                h.u64(c.term());
                h.u64(c.epoch());
                for s in 0..c.shards() {
                    h.u64(u64::from(c.is_fenced_in(s)));
                }
                for (op, r) in c.pending() {
                    h.u64(*op);
                    h.u64(r.shard as u64);
                    h.u64(u64::from(r.user.0));
                    h.u64(u64::from(r.role.0));
                    h.u64(r.deadline);
                    h.u64(r.epoch);
                    h.u64(u64::from(r.probed));
                }
                for col in c.columns() {
                    for (role, users) in col {
                        h.u64(u64::from(role.0));
                        for u in users {
                            h.u64(u64::from(u.0));
                        }
                        h.str(";");
                    }
                    h.str("|");
                }
            }
            None => h.str("down"),
        }
        for s in 0..g.shard_count() {
            h.u64(g.shard_term(s));
            hash_engine(&mut h, g.engine(s));
            for t in g.parked(s) {
                h.u64(t);
            }
            h.str(";");
            for t in g.dead(s) {
                h.u64(t);
            }
            h.str(";");
        }
        for (op, r) in g.records() {
            h.u64(*op);
            h.str(&r.desc);
            h.u64(u64::from(r.acked));
            h.str(&format!("{:?}", r.resolution));
        }
        // The in-flight queue is hashed in order: delivery may pick any
        // slot, so order never changes *reachability*, but
        // distinguishing enqueue orders only costs merges — it cannot
        // make two genuinely different states collide.
        for env in g.queue() {
            h.str(&format!("{env:?}"));
        }
        h.finish()
    }

    fn crashes(&self) -> usize {
        self.group.crashes()
    }

    fn schedule_choices(&self) -> &[ShardChoice] {
        &self.schedule
    }
}

/// The sharding invariant suite: global cardinality, per-shard RBAC,
/// ack durability, and coordinator coherence.
#[derive(Debug, Clone)]
pub struct ShardInvariants {
    rbac: Invariants,
    /// `(role name, cap)` for every capped role in the reference graph.
    caps: Vec<(String, usize)>,
}

impl ShardInvariants {
    /// Derive the suite from the policy the group *should* enforce.
    pub fn from_reference(graph: &PolicyGraph) -> ShardInvariants {
        let caps = graph
            .roles
            .iter()
            .filter_map(|r| r.max_active_users.map(|cap| (r.name.clone(), cap)))
            .collect();
        ShardInvariants {
            rbac: Invariants::from_reference(graph),
            caps,
        }
    }
}

impl crate::explore::Checker<ShardWorld> for ShardInvariants {
    fn check(&self, world: &ShardWorld) -> Option<Violation> {
        let g = world.group();

        // --- Global role cardinality, across every shard. ---
        // Each engine only sees its own users plus a frozen external
        // count; this recomputes the true cluster-wide total.
        let mut ids: BTreeMap<&str, RoleId> = BTreeMap::new();
        for (name, cap) in &self.caps {
            let Some(role) = g.role_id(name) else {
                continue;
            };
            ids.insert(name.as_str(), role);
            let active = g.global_active(role);
            if active > *cap {
                return Some(Violation::RoleCardinality {
                    role: name.clone(),
                    cap: *cap,
                    active,
                });
            }
        }

        // --- Per-shard RBAC invariants. ---
        // SSD/DSD and per-user caps are user-local and every user lives
        // on exactly one shard, so per-shard checks are complete.
        for s in 0..g.shard_count() {
            if let Some(v) = self.rbac.check_rbac(g.engine(s)) {
                return Some(v);
            }
        }

        // --- No acknowledged op is ever lost. ---
        if let Some(op) = g.lost_acked_op() {
            let desc = g
                .records()
                .get(&op)
                .map(|r| r.desc.clone())
                .unwrap_or_default();
            return Some(Violation::ShardAckLost { op, desc });
        }

        // --- Coordinator coherence at quiescence. ---
        if let Some(detail) = g.coordinator_coherent() {
            return Some(Violation::CoordinatorDrift { detail });
        }

        None
    }
}
