//! Multi-node model checking: a replication group as one explorable
//! state, with message deliveries, losses, duplicates, per-node crashes
//! and failovers in the choice alphabet.
//!
//! [`ClusterWorld`] wraps a [`repl::Cluster`] (leader + followers over
//! the simulated lossy transport) plus the client script and leader-side
//! session handles. Every source of distributed nondeterminism becomes a
//! [`NetChoice`] the generic explorer branches on: *which* in-flight
//! message is delivered, dropped or duplicated next, *which* node
//! power-fails, *when* the retransmission timeout fires, *who* gets
//! promoted after the leader dies, and *when* a follower read happens
//! relative to shipping.
//!
//! Under reduction, two partial-order rules keep the tree tractable:
//! deliveries to distinct destinations commute (each node consumes its
//! own mail in FIFO order, and handlers touch only the destination node
//! plus the shared leader bookkeeping — which delivery order per
//! destination already determines), so only the earliest in-flight
//! message per destination is branched on; and the in-flight queue is
//! fingerprinted per destination, order-independent across destinations,
//! so interleavings that differ only in cross-destination send order
//! merge.
//!
//! [`ClusterInvariants`] asserts after every step that no interleaving
//! loses a cluster-acknowledged operation, that every up node's state is
//! the sequential replay of its journaled prefix of cluster history,
//! that SSD/DSD/cardinality hold on every node, and that no follower
//! answers a read past its snapshot's validity horizon.

use crate::explore::{Budget, Checker, SimWorld, Stats};
use crate::invariants::{state_diff, Invariants, Violation};
use crate::op::SimOp;
use crate::world::{apply_client_op, hash_engine, Fnv, StepError};
use owte_core::{checked_index, replay, Journal};
use policy::PolicyGraph;
use rbac::SessionId;
use repl::{Cluster, Payload, ReadOutcome, ReplConfig, Transport};
use snoop::Ts;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// One scheduler decision over a replication group. Slot indices address
/// the transport's in-flight queue (oldest first) at the moment the
/// choice applies; everything else is position-independent, so recorded
/// schedules replay deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetChoice {
    /// Run the next client operation on the leader (journal + ship).
    ClientOp,
    /// Deliver the in-flight message at `slot` to its destination.
    Deliver {
        /// Queue slot (0 = oldest).
        slot: usize,
    },
    /// The network loses the in-flight message at `slot`.
    DropMsg {
        /// Queue slot (0 = oldest).
        slot: usize,
    },
    /// The network duplicates the in-flight message at `slot`.
    DupMsg {
        /// Queue slot (0 = oldest).
        slot: usize,
    },
    /// Power-fail node `node` (unsynced bytes dropped, disk survives).
    CrashNode {
        /// Which node dies.
        node: usize,
    },
    /// Restart crashed node `node`: recover from its own WAL, fenced to
    /// the current term.
    RestartNode {
        /// Which node recovers.
        node: usize,
    },
    /// Fail over to node `node` (enabled only while the leader is down).
    Promote {
        /// The follower to promote.
        node: usize,
    },
    /// Advance the virtual clock to the next retransmission deadline and
    /// resend (enabled only when the network is quiet and a follower
    /// still lags — the "all my messages were lost" timeout path).
    Tick,
    /// A client reads through follower `node`'s published snapshot at
    /// the leader's current logical time.
    Read {
        /// The follower asked.
        node: usize,
    },
}

impl fmt::Display for NetChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetChoice::ClientOp => write!(f, "op"),
            NetChoice::Deliver { slot } => write!(f, "deliver[{slot}]"),
            NetChoice::DropMsg { slot } => write!(f, "drop[{slot}]"),
            NetChoice::DupMsg { slot } => write!(f, "dup[{slot}]"),
            NetChoice::CrashNode { node } => write!(f, "crash(n{node})"),
            NetChoice::RestartNode { node } => write!(f, "restart(n{node})"),
            NetChoice::Promote { node } => write!(f, "promote(n{node})"),
            NetChoice::Tick => write!(f, "tick"),
            NetChoice::Read { node } => write!(f, "read(n{node})"),
        }
    }
}

/// Duplication choices are only offered while the in-flight queue is at
/// most this long — one duplicate per protocol round is enough to prove
/// idempotence, and unbounded duplication makes the tree infinite.
const DUP_QUEUE_BOUND: usize = 2;

/// The last follower read a schedule performed, for the staleness
/// invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRecord {
    /// The follower that answered.
    pub node: usize,
    /// The query timestamp.
    pub at: Ts,
    /// What it answered.
    pub outcome: ReadOutcome,
}

/// A replication group as one explorable state: the cluster, the client
/// script, leader-side session handles, and the schedule so far.
#[derive(Clone)]
pub struct ClusterWorld {
    cluster: Cluster,
    graph: Rc<PolicyGraph>,
    ops: Rc<Vec<SimOp>>,
    cursor: usize,
    sessions: Vec<Option<SessionId>>,
    crashes: usize,
    /// The read performed by the immediately preceding step, if any —
    /// the staleness invariant runs exactly then.
    last_read: Option<ReadRecord>,
    /// Operation/object names follower reads ask about (the policy's
    /// first permission).
    read_target: Option<(String, String)>,
    schedule: Vec<NetChoice>,
}

impl ClusterWorld {
    /// Boot an `n`-node group from `graph` with `ops` staged as the
    /// client script.
    pub fn new(
        graph: &PolicyGraph,
        n: usize,
        ops: Vec<SimOp>,
        config: ReplConfig,
    ) -> Result<ClusterWorld, String> {
        let cluster =
            Cluster::new(graph, n, config).map_err(|e| format!("cluster genesis failed: {e}"))?;
        let read_target = graph
            .permissions
            .first()
            .map(|p| (p.op.clone(), p.obj.clone()));
        Ok(ClusterWorld {
            cluster,
            graph: Rc::new(graph.clone()),
            ops: Rc::new(ops),
            cursor: 0,
            sessions: vec![None; graph.users.len()],
            crashes: 0,
            last_read: None,
            read_target,
            schedule: Vec::new(),
        })
    }

    /// The replication group.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The replication group, mutable (tests install scripted faults and
    /// partitions through this).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The policy graph the group was built from.
    pub fn graph(&self) -> &PolicyGraph {
        &self.graph
    }

    /// Index of the next client operation.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The read performed by the immediately preceding step, if any.
    pub fn last_read(&self) -> Option<&ReadRecord> {
        self.last_read.as_ref()
    }

    /// The schedule (sequence of applied choices) that produced this
    /// world from its initial state.
    pub fn schedule(&self) -> &[NetChoice] {
        &self.schedule
    }

    /// First live session handle and the read target, if both exist —
    /// what a [`NetChoice::Read`] asks about.
    fn read_query(&self) -> Option<(SessionId, &str, &str)> {
        let s = self.sessions.iter().flatten().next().copied()?;
        let (op, obj) = self.read_target.as_ref()?;
        Some((s, op, obj))
    }

    fn not_enabled(choice: &NetChoice) -> StepError<NetChoice> {
        StepError::NotEnabled(choice.clone())
    }
}

impl SimWorld for ClusterWorld {
    type Choice = NetChoice;

    fn enabled_choices(
        &self,
        budget: &Budget,
        reduction: bool,
        stats: &mut Stats,
    ) -> Vec<NetChoice> {
        let c = &self.cluster;
        let leader_up = c.leader().is_some();
        let mut out = Vec::new();
        if leader_up && self.cursor < self.ops.len() {
            out.push(NetChoice::ClientOp);
        }
        // Message choices: under reduction, deliveries to distinct
        // destinations commute, so branch only on the earliest in-flight
        // message per destination.
        let pending = c.transport().pending();
        let mut slots: Vec<usize> = Vec::new();
        if reduction {
            let mut seen_dest = std::collections::BTreeSet::new();
            for (i, env) in pending.iter().enumerate() {
                if seen_dest.insert(env.to.0) {
                    slots.push(i);
                } else {
                    stats.pruned_commute += 1;
                }
            }
        } else {
            slots.extend(0..pending.len());
        }
        for s in slots {
            out.push(NetChoice::Deliver { slot: s });
            out.push(NetChoice::DropMsg { slot: s });
            if pending.len() <= DUP_QUEUE_BOUND {
                out.push(NetChoice::DupMsg { slot: s });
            }
        }
        if self.crashes < budget.max_crashes {
            for n in 0..c.len() {
                if c.is_up(n) {
                    out.push(NetChoice::CrashNode { node: n });
                }
            }
        }
        for n in 0..c.len() {
            if !c.is_up(n) {
                out.push(NetChoice::RestartNode { node: n });
            }
        }
        if !leader_up {
            for n in 0..c.len() {
                if c.is_up(n) {
                    out.push(NetChoice::Promote { node: n });
                }
            }
        }
        if leader_up && c.transport().in_flight() == 0 && c.next_retransmit_due().is_some() {
            out.push(NetChoice::Tick);
        }
        if leader_up && self.read_query().is_some() {
            for n in 0..c.len() {
                if c.is_up(n) && c.leader() != Some(n) {
                    out.push(NetChoice::Read { node: n });
                }
            }
        }
        out
    }

    fn apply_choice(&mut self, choice: &NetChoice) -> Result<(), StepError<NetChoice>> {
        self.last_read = None;
        match choice {
            NetChoice::ClientOp => {
                let Some(op) = self.ops.get(self.cursor).cloned() else {
                    return Err(Self::not_enabled(choice));
                };
                let sessions = &mut self.sessions;
                if self
                    .cluster
                    .with_leader(|d| {
                        apply_client_op(d, sessions, &op);
                    })
                    .is_err()
                {
                    return Err(Self::not_enabled(choice));
                }
                self.cursor += 1;
            }
            NetChoice::Deliver { slot } => {
                if !self.cluster.deliver_slot(*slot) {
                    return Err(Self::not_enabled(choice));
                }
            }
            NetChoice::DropMsg { slot } => {
                if !self.cluster.transport_mut().drop_slot(*slot) {
                    return Err(Self::not_enabled(choice));
                }
            }
            NetChoice::DupMsg { slot } => {
                if !self.cluster.transport_mut().dup_slot(*slot) {
                    return Err(Self::not_enabled(choice));
                }
            }
            NetChoice::CrashNode { node } => {
                if self.cluster.crash(*node).is_err() {
                    return Err(Self::not_enabled(choice));
                }
                self.crashes += 1;
                // Session handles stay valid across leader crashes:
                // session state is replicated, and a promoted leader
                // serves the same session IDs.
            }
            NetChoice::RestartNode { node } => {
                match self.cluster.restart(*node) {
                    Ok(_) => {}
                    Err(repl::ReplError::Durable(e)) => {
                        // Recovery failed outright: that *is* the
                        // violation, like the single-process world.
                        self.schedule.push(choice.clone());
                        return Err(StepError::Violation(Violation::RecoveryFailed {
                            error: e.to_string(),
                        }));
                    }
                    Err(_) => return Err(Self::not_enabled(choice)),
                }
            }
            NetChoice::Promote { node } => {
                if self.cluster.promote(*node).is_err() {
                    return Err(Self::not_enabled(choice));
                }
            }
            NetChoice::Tick => {
                let Some(due) = self.cluster.next_retransmit_due() else {
                    return Err(Self::not_enabled(choice));
                };
                let wait = due.saturating_sub(self.cluster.clock_ms()).max(1);
                self.cluster.tick(wait);
            }
            NetChoice::Read { node } => {
                let Some((session, op, obj)) = self.read_query() else {
                    return Err(Self::not_enabled(choice));
                };
                let Ok(at) = self.cluster.leader_now() else {
                    return Err(Self::not_enabled(choice));
                };
                let (op, obj) = {
                    let Some(d) = self.cluster.node_engine(*node) else {
                        return Err(Self::not_enabled(choice));
                    };
                    let sys = d.engine().system();
                    let (Ok(o), Ok(b)) = (sys.op_by_name(op), sys.obj_by_name(obj)) else {
                        return Err(Self::not_enabled(choice));
                    };
                    (o, b)
                };
                match self.cluster.read_at(*node, session, op, obj, at) {
                    Ok(outcome) => {
                        self.last_read = Some(ReadRecord {
                            node: *node,
                            at,
                            outcome,
                        });
                    }
                    Err(_) => return Err(Self::not_enabled(choice)),
                }
            }
        }
        self.schedule.push(choice.clone());
        Ok(())
    }

    fn describe_choice(&self, choice: &NetChoice) -> String {
        let msg = |slot: &usize| -> String {
            match self.cluster.transport().pending().get(*slot) {
                Some(env) => {
                    let kind = match env.payload() {
                        Ok(Payload::Append { term, records, .. }) => {
                            format!("Append(term {term}, {} recs)", records.len())
                        }
                        Ok(Payload::Ack { term, next_index }) => {
                            format!("Ack(term {term}, next {next_index})")
                        }
                        Err(_) => "<corrupt>".to_string(),
                    };
                    format!("{}→{} {kind}", env.from, env.to)
                }
                None => "<empty slot>".to_string(),
            }
        };
        match choice {
            NetChoice::ClientOp => {
                let next = self
                    .ops
                    .get(self.cursor)
                    .map(|o| o.to_string())
                    .unwrap_or_else(|| "<none>".into());
                format!("op[{}] on leader: {next}", self.cursor)
            }
            NetChoice::Deliver { slot } => format!("deliver msg[{slot}]: {}", msg(slot)),
            NetChoice::DropMsg { slot } => format!("network loses msg[{slot}]: {}", msg(slot)),
            NetChoice::DupMsg { slot } => format!("network duplicates msg[{slot}]: {}", msg(slot)),
            NetChoice::CrashNode { node } => format!("power-fail n{node}"),
            NetChoice::RestartNode { node } => {
                format!("restart n{node}: recover from its WAL, fence to current term")
            }
            NetChoice::Promote { node } => format!("fail over: promote n{node}"),
            NetChoice::Tick => "advance clock to retransmission deadline and resend".to_string(),
            NetChoice::Read { node } => {
                format!("client reads via n{node}'s snapshot at leader time")
            }
        }
    }

    fn fingerprint(&self) -> u64 {
        let c = &self.cluster;
        let mut h = Fnv::new();
        h.u64(self.cursor as u64);
        h.u64(self.crashes as u64);
        for s in &self.sessions {
            match s {
                Some(sid) => h.str(&format!("S{sid}")),
                None => h.str("-"),
            }
        }
        h.u64(c.term());
        h.u64(c.commit());
        match c.leader() {
            Some(l) => h.u64(l as u64 + 1),
            None => h.u64(0),
        }
        for op in c.history() {
            h.str(&format!("{op:?}"));
        }
        for n in 0..c.len() {
            h.u64(c.node_term(n));
            h.u64(c.node_disk_digest(n));
            match c.node_engine(n) {
                Some(d) => {
                    h.str("up");
                    h.u64(d.op_count());
                    hash_engine(&mut h, d.engine());
                }
                None => h.str("down"),
            }
            // Leader-side shipping state: indices, backoff stage, and the
            // *relative* retransmission deadline (absolute virtual time is
            // behavior-irrelevant, so time-shifted states merge).
            h.u64(c.acked_index(n));
            h.u64(c.next_index(n));
            h.u64(u64::from(c.attempts(n)));
            h.u64(c.due_in(n));
        }
        // In-flight messages: per-destination FIFO order matters, order
        // across destinations commutes — hash each destination's queue in
        // order, combine destinations order-independently.
        let mut per_dest: BTreeMap<usize, Fnv> = BTreeMap::new();
        for env in c.transport().pending() {
            let f = per_dest.entry(env.to.0).or_insert_with(Fnv::new);
            f.u64(env.from.0 as u64);
            f.bytes(&env.frame);
        }
        let mut acc: u64 = 0;
        for (dest, f) in per_dest {
            let mut g = Fnv::new();
            g.u64(dest as u64);
            g.u64(f.finish());
            acc ^= g.finish();
        }
        h.u64(acc);
        h.finish()
    }

    fn crashes(&self) -> usize {
        self.crashes
    }

    fn schedule_choices(&self) -> &[NetChoice] {
        &self.schedule
    }
}

/// The replication invariant suite: cluster-level durability plus the
/// single-process RBAC invariants on every node.
#[derive(Debug, Clone)]
pub struct ClusterInvariants {
    rbac: Invariants,
}

impl ClusterInvariants {
    /// Derive the suite from the policy that *should* be enforced on
    /// every node.
    pub fn from_reference(graph: &PolicyGraph) -> ClusterInvariants {
        ClusterInvariants {
            rbac: Invariants::from_reference(graph),
        }
    }
}

impl Checker<ClusterWorld> for ClusterInvariants {
    fn check(&self, world: &ClusterWorld) -> Option<Violation> {
        let c = world.cluster();

        // --- No acknowledged operation is ever lost. ---
        // Whoever currently leads must durably hold the entire
        // cluster-acknowledged prefix; a promoted follower with a shorter
        // log than the commit index means acks were handed out for
        // operations nobody but the dead leader had journaled.
        if let Some(li) = c.leader() {
            let len = c.node_op_count(li).unwrap_or(0);
            if len < c.commit() {
                return Some(Violation::AckedOpsLost {
                    acked: checked_index(c.commit()),
                    recovered: len,
                });
            }
        }

        // --- Every node: RBAC invariants + acked-prefix replay. ---
        for n in 0..c.len() {
            let Some(d) = c.node_engine(n) else {
                continue; // crashed nodes have nothing observable
            };
            let e = d.engine();
            if let Some(v) = self.rbac.check_rbac(e) {
                return Some(v);
            }
            let k = checked_index(d.op_count());
            if k > c.history().len() {
                return Some(Violation::FollowerDivergence {
                    node: n,
                    detail: format!(
                        "journal length {k} exceeds cluster history ({} ops)",
                        c.history().len()
                    ),
                });
            }
            let journal = Journal {
                policy: world.graph().clone(),
                start: Ts::ZERO,
                ops: c.history()[..k].to_vec(),
            };
            match replay(&journal) {
                Err(err) => {
                    return Some(Violation::FollowerDivergence {
                        node: n,
                        detail: format!("journaled prefix does not replay: {err}"),
                    })
                }
                Ok(expected) => {
                    if let Some(detail) = state_diff(e, &expected) {
                        return Some(Violation::FollowerDivergence { node: n, detail });
                    }
                }
            }
        }

        // --- Follower reads never outrun the validity horizon. ---
        // The horizon is recomputed from the node's *engine* (not the
        // published snapshot), so a snapshot the node forgot to refresh
        // cannot vouch for itself.
        if let Some(r) = world.last_read() {
            if r.outcome != ReadOutcome::Stale {
                if let Some(d) = c.node_engine(r.node) {
                    if let Some(hz) = d.engine().validity_horizon() {
                        if r.at >= hz {
                            return Some(Violation::StaleReadServed {
                                node: r.node,
                                at: format!("{}", r.at),
                                horizon: format!("{hz}"),
                            });
                        }
                    }
                }
            }
        }

        None
    }
}
