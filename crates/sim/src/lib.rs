//! Deterministic simulation and bounded model checking of the durable,
//! concurrent OWTE stack.
//!
//! Every source of nondeterminism in a real deployment — *when* detector
//! timers fire relative to client operations, *where* in a storage write
//! sequence the process dies, and *when* it restarts — is owned here by a
//! virtual-time scheduler and released one decision at a time. A
//! [`World`] wraps a [`DurableEngine`](owte_core::DurableEngine) over
//! [`FaultyStorage`](owte_core::FaultyStorage)/[`MemStorage`](owte_core::MemStorage);
//! a *crash* drops the in-memory engine at an exact storage-op boundary
//! (surviving bytes only), a *restart* replays recovery from whatever the
//! simulated disk retained.
//!
//! Two exploration strategies drive the scheduler ([`Strategy`]):
//!
//! * **Seeded-random** — samples whole schedules from a seed; cheap
//!   enough for CI on medium configurations.
//! * **Exhaustive** — depth-first enumeration of *every* interleaving of
//!   client ops, timer firings and crash/restart points up to a step
//!   budget, with state-fingerprint pruning and a crash-stutter
//!   partial-order rule (sound for the state invariants checked here).
//!
//! A pluggable invariant layer ([`Invariants`]) is evaluated after every
//! scheduler step: no SSD/DSD or cardinality violation is ever
//! observable, no acknowledged journal operation is lost across any
//! crash point, post-recovery state always equals a sequential replay of
//! the acknowledged prefix, and rule cascades stay within the static
//! analyzer's proved depth bound.
//!
//! Violations are reported as a minimal replayable schedule: a
//! [`Schedule`] shrinks to the shortest step script that still fails and
//! replays deterministically via [`run_schedule`].
//!
//! The explorer is generic over worlds ([`SimWorld`]) and invariant
//! suites ([`Checker`]): the single-process [`World`] above is one
//! instance, and [`ClusterWorld`] extends the same machinery to a whole
//! replication group — message deliveries, losses, duplicates, per-node
//! crashes and failovers join the choice alphabet, and
//! [`ClusterInvariants`] additionally asserts that no interleaving loses
//! a cluster-acknowledged operation, diverges a follower from the
//! acked-prefix replay, or serves a follower read past its staleness
//! bound.

pub mod cluster;
pub mod explore;
pub mod invariants;
pub mod op;
pub mod shard;
pub mod world;

pub use crate::shard::{ShardChoice, ShardInvariants, ShardWorld};
pub use cluster::{ClusterInvariants, ClusterWorld, NetChoice, ReadRecord};
pub use explore::{
    explore, run_schedule, Budget, CheckReport, Checker, Outcome, Schedule, SimWorld, Stats,
    Strategy,
};
pub use invariants::{Invariants, Violation};
pub use op::SimOp;
pub use world::{apply_client_op, Choice, SimStore, World};

use owte_core::DurableConfig;
use policy::{DailyWindow, PolicyGraph};
use workload::{generate_enterprise, generate_trace, EnterpriseSpec, TraceSpec};

/// Everything one checking run needs: the enterprise and workload to
/// simulate (by spec + seed, so any report is replayable), the durable
/// engine tunables, and how hard to explore.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Enterprise shape.
    pub enterprise: EnterpriseSpec,
    /// Client workload shape.
    pub trace: TraceSpec,
    /// Seed for [`generate_enterprise`].
    pub ent_seed: u64,
    /// Seed for [`generate_trace`].
    pub trace_seed: u64,
    /// Durable-engine tunables under test.
    pub durable: DurableConfig,
    /// Exploration strategy.
    pub strategy: Strategy,
    /// Exploration budget.
    pub budget: Budget,
}

/// Check an enterprise/workload pair against the full invariant suite.
///
/// This is the front-end the ISSUE/CI use: generate the policy graph and
/// client trace from seeds, build the initial [`World`], derive the
/// invariants from the same (trusted) graph, and explore. The returned
/// [`CheckReport`] carries explored/pruned state counts and, on failure,
/// the minimal failing schedule plus the seeds needed to replay it.
pub fn check(cfg: &CheckConfig) -> CheckReport {
    let graph = generate_enterprise(&cfg.enterprise, cfg.ent_seed);
    let trace = generate_trace(&cfg.trace, cfg.trace_seed);
    let ops = op::from_trace(&trace);
    let world =
        World::new(&graph, ops, cfg.durable.clone()).expect("generated policy instantiates");
    let invariants = Invariants::from_reference(&graph);
    let outcome = explore(
        &world,
        &invariants,
        cfg.strategy.clone(),
        cfg.budget.clone(),
    );
    CheckReport::new(outcome, cfg.ent_seed, cfg.trace_seed)
}

/// The smallest enterprise that still exercises every invariant class:
/// two users, three roles with an SSD pair (`billing` ⊥ `auditing`), a
/// DSD pair, a GTRBAC daily enabling window on `clerk`, a per-role
/// activation cap, and one guarded permission.
///
/// `u0` is assigned `clerk` + `billing`; `u1` is assigned `clerk` +
/// `auditing`. Any state in which one user holds both `billing` and
/// `auditing` is an SSD violation the checker must flag.
pub fn tiny_enterprise() -> PolicyGraph {
    let mut g = PolicyGraph::new("tiny");
    g.role("clerk").enabling = Some(DailyWindow {
        start_h: 9,
        start_m: 0,
        end_h: 17,
        end_m: 0,
    });
    g.role("clerk").max_active_users = Some(2);
    g.role("billing");
    g.role("auditing");
    g.user("u0");
    g.user("u1");
    g.permission("file-claim", "write", "claims");
    g.grant("file-claim", "clerk");
    g.assign("u0", "clerk");
    g.assign("u0", "billing");
    g.assign("u1", "clerk");
    g.assign("u1", "auditing");
    g.ssd_set("bill-audit", &["billing", "auditing"], 2);
    g.dsd_set("bill-audit-dyn", &["billing", "auditing"], 2);
    g
}

/// A short client script over [`tiny_enterprise`] touching sessions,
/// activation, an SSD-violating assignment attempt, access checks and
/// virtual time (so GTRBAC window timers are pending throughout).
pub fn tiny_ops() -> Vec<SimOp> {
    vec![
        SimOp::CreateSession { user: 0 },
        SimOp::CreateSession { user: 1 },
        SimOp::AddActiveRole {
            user: 0,
            role: "clerk".into(),
        },
        // u1 tries to pick up `billing` while assigned `auditing`: the
        // monitor must refuse (SSD), in every interleaving, crash or not.
        SimOp::AssignUser {
            user: 1,
            role: "billing".into(),
        },
        SimOp::CheckAccess {
            user: 0,
            op: "write".into(),
            obj: "claims".into(),
        },
        SimOp::AddActiveRole {
            user: 1,
            role: "auditing".into(),
        },
        SimOp::DeleteSession { user: 1 },
    ]
}

/// Doctor a policy graph by stripping its SoD sets — the seeded-bug
/// variant: an engine built from this graph happily accepts conflicting
/// assignments, which the invariant layer (still derived from the
/// *original* graph) must catch and report as a minimal schedule.
pub fn strip_sod(mut graph: PolicyGraph) -> PolicyGraph {
    graph.ssd.clear();
    graph.dsd.clear();
    graph
}
