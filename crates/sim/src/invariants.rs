//! The pluggable invariant layer, evaluated after every scheduler step.
//!
//! Invariants are derived from a *reference* policy graph — normally the
//! same graph the engine was built from, but deliberately *not* trusted
//! to be: the seeded-bug harness builds the engine from a doctored graph
//! (SoD sets stripped, durability relaxed) while the invariants keep
//! checking the original specification, so the checker proves it can
//! catch an engine that silently enforces less than the policy demands.

use crate::world::World;
use owte_core::{apply_op, replay, Engine, Journal, JournalOp};
use policy::PolicyGraph;
use sentinel::{Access, Region};
use snoop::Ts;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;

/// A property violation, with enough detail to read the failure without
/// re-running anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Some user's authorized roles break a static SoD set.
    Ssd {
        /// The SoD set name.
        set: String,
        /// The offending user.
        user: String,
        /// The conflicting roles the user holds.
        held: Vec<String>,
    },
    /// Some session's active roles break a dynamic SoD set.
    Dsd {
        /// The SoD set name.
        set: String,
        /// The offending session.
        session: String,
        /// The conflicting roles active together.
        active: Vec<String>,
    },
    /// More users hold a role active than its cardinality allows.
    RoleCardinality {
        /// The role.
        role: String,
        /// The cap from the policy.
        cap: usize,
        /// Users currently active in it.
        active: usize,
    },
    /// A user has more roles active than their cardinality allows.
    UserCardinality {
        /// The user.
        user: String,
        /// The cap from the policy.
        cap: usize,
        /// Roles currently active.
        active: usize,
    },
    /// A dispatch cascaded deeper than the analyzer's proved bound.
    CascadeExceeded {
        /// The proved bound.
        bound: usize,
        /// The depth actually observed.
        observed: usize,
    },
    /// Recovery after a crash failed outright.
    RecoveryFailed {
        /// The recovery error.
        error: String,
    },
    /// Recovery came back with a different number of operations than
    /// were acknowledged before the crash.
    AckedOpsLost {
        /// Operations the engine acknowledged journaling.
        acked: usize,
        /// Operations recovery restored.
        recovered: u64,
    },
    /// The recovered state is not the sequential replay of the
    /// acknowledged prefix — reads after recovery would grant or deny
    /// outside any linearization of what was acknowledged.
    StateDivergence {
        /// First difference found.
        detail: String,
    },
    /// A rule execution touched a state region outside the footprint the
    /// static effect analysis declared for it — the soundness claim
    /// `observed ⊆ declared` does not hold on this schedule.
    FootprintViolated {
        /// The rule whose execution escaped its declared footprint.
        rule: String,
        /// Whether the escape was a read or a write.
        access: Access,
        /// The region touched but not declared.
        region: Region,
    },
    /// Replaying the acknowledged prefix through the compiled dispatch
    /// plan and through the rule interpreter produced different
    /// decisions, state, or audit records — compilation changed
    /// semantics on this schedule.
    CompiledDivergence {
        /// First difference found.
        detail: String,
    },
    /// A replica's live state is not the sequential replay of the prefix
    /// of cluster history it has durably journaled — reads at that node
    /// would answer outside any linearization of the shipped log.
    FollowerDivergence {
        /// The diverged node.
        node: usize,
        /// First difference found.
        detail: String,
    },
    /// A follower answered a read from its published snapshot at a
    /// timestamp on or past the validity horizon recomputed from its own
    /// engine — the read should have degraded to the leader.
    StaleReadServed {
        /// The node that served the read.
        node: usize,
        /// The query timestamp.
        at: String,
        /// The engine-recomputed horizon it violated.
        horizon: String,
    },
    /// A sharded client operation was acknowledged to the client but can
    /// no longer resolve: its home shard holds no parked copy, no
    /// in-flight message carries it, and the coordinator has no pending
    /// reservation for it — the ack was handed out for work the group
    /// then lost.
    ShardAckLost {
        /// The lost op's token.
        op: u64,
        /// What the op was.
        desc: String,
    },
    /// At quiescence the coordinator's committed membership view differs
    /// from the ground truth in the shard engines — future cap and SoD
    /// decisions would be made against counts that are simply wrong.
    CoordinatorDrift {
        /// First difference found.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Ssd { set, user, held } => write!(
                f,
                "SSD violation: user {user} holds {{{}}} from set `{set}`",
                held.join(", ")
            ),
            Violation::Dsd {
                set,
                session,
                active,
            } => write!(
                f,
                "DSD violation: session {session} has {{{}}} active from set `{set}`",
                active.join(", ")
            ),
            Violation::RoleCardinality { role, cap, active } => write!(
                f,
                "cardinality violation: {active} users active in role {role} (cap {cap})"
            ),
            Violation::UserCardinality { user, cap, active } => write!(
                f,
                "cardinality violation: user {user} has {active} roles active (cap {cap})"
            ),
            Violation::CascadeExceeded { bound, observed } => write!(
                f,
                "cascade depth {observed} exceeds the analyzer's proved bound {bound}"
            ),
            Violation::RecoveryFailed { error } => write!(f, "recovery failed: {error}"),
            Violation::AckedOpsLost { acked, recovered } => write!(
                f,
                "durability violation: {acked} ops acknowledged, {recovered} recovered"
            ),
            Violation::StateDivergence { detail } => {
                write!(f, "recovered state diverges from prefix replay: {detail}")
            }
            Violation::ShardAckLost { op, desc } => write!(
                f,
                "shard durability violation: op #{op} ({desc}) was acknowledged but can never resolve"
            ),
            Violation::CoordinatorDrift { detail } => {
                write!(f, "coordinator membership drifted from shard ground truth: {detail}")
            }
            Violation::FootprintViolated {
                rule,
                access,
                region,
            } => write!(
                f,
                "footprint violation: rule `{rule}` performed an undeclared {access} of {region}"
            ),
            Violation::CompiledDivergence { detail } => {
                write!(
                    f,
                    "compiled dispatch diverges from the interpreter: {detail}"
                )
            }
            Violation::FollowerDivergence { node, detail } => {
                write!(
                    f,
                    "replication violation: node n{node} diverges from its journaled \
                     prefix of cluster history: {detail}"
                )
            }
            Violation::StaleReadServed { node, at, horizon } => {
                write!(
                    f,
                    "staleness violation: node n{node} answered a read at {at}, on or \
                     past its validity horizon {horizon}"
                )
            }
        }
    }
}

/// One SoD constraint as the invariant layer checks it.
#[derive(Debug, Clone)]
struct SodCheck {
    name: String,
    roles: Vec<String>,
    cardinality: usize,
}

/// The invariant suite for one reference policy.
#[derive(Debug, Clone)]
pub struct Invariants {
    ssd: Vec<SodCheck>,
    dsd: Vec<SodCheck>,
    role_caps: Vec<(String, usize)>,
    user_caps: Vec<(String, usize)>,
    stripped_footprints: BTreeSet<String>,
    /// Acked-ledger hashes whose compiled-vs-interpreted replay already
    /// passed — the schedule explorer revisits identical prefixes
    /// constantly, and each dual replay is the expensive part of the
    /// suite.
    compiled_checked: RefCell<BTreeSet<u64>>,
}

impl Invariants {
    /// Derive the suite from the policy that *should* be enforced.
    pub fn from_reference(graph: &PolicyGraph) -> Invariants {
        let sod = |sets: &[policy::SodSpec]| {
            sets.iter()
                .map(|s| SodCheck {
                    name: s.name.clone(),
                    roles: s.roles.iter().cloned().collect(),
                    cardinality: s.cardinality,
                })
                .collect::<Vec<_>>()
        };
        Invariants {
            ssd: sod(&graph.ssd),
            dsd: sod(&graph.dsd),
            role_caps: graph
                .roles
                .iter()
                .filter_map(|r| r.max_active_users.map(|n| (r.name.clone(), n)))
                .collect(),
            user_caps: graph
                .users
                .iter()
                .filter_map(|u| u.max_active_roles.map(|n| (u.name.clone(), n)))
                .collect(),
            stripped_footprints: BTreeSet::new(),
            compiled_checked: RefCell::new(BTreeSet::new()),
        }
    }

    /// Doctor the suite: treat `rule`'s declared footprint as *empty*, so
    /// its first recorded touch raises [`Violation::FootprintViolated`].
    /// This is the seeded-bug hook for the effect analysis — it proves
    /// the checker would catch an analyzer that under-declares, the same
    /// way the stripped-SoD harness proves it catches an engine that
    /// under-enforces.
    pub fn with_stripped_footprint(mut self, rule: &str) -> Invariants {
        self.stripped_footprints.insert(rule.to_string());
        self
    }

    /// Evaluate every invariant against `world`, returning the first
    /// violation found. Crashed worlds have nothing observable; the
    /// durability invariants run on the step that restarts them.
    pub fn check(&self, world: &World) -> Option<Violation> {
        let d = world.engine()?;
        let e = d.engine();

        // --- SSD/DSD and cardinality, on the live engine. ---
        if let Some(v) = self.check_rbac(e) {
            return Some(v);
        }

        // --- Cascades stay within the analyzer's proved depth. ---
        if let Some(bound) = world.cascade_bound() {
            if e.deepest_cascade() > bound {
                return Some(Violation::CascadeExceeded {
                    bound,
                    observed: e.deepest_cascade(),
                });
            }
        }

        // --- Observed effects stay within declared footprints. ---
        // Touches are recorded under the rule that actually executed
        // (cascaded rules record under their own name), so each one is
        // checked against that rule's *direct* footprint — tighter than
        // the sync-closed effective footprint used for interference.
        for t in e.observed_touches() {
            let declared_covers = !self.stripped_footprints.contains(&t.rule)
                && world
                    .effects()
                    .effect_of(&t.rule)
                    .is_some_and(|fp| fp.direct.covers(t.access, &t.region));
            if !declared_covers {
                return Some(Violation::FootprintViolated {
                    rule: t.rule.clone(),
                    access: t.access,
                    region: t.region.clone(),
                });
            }
        }

        // --- Durability, on the step that recovered from a crash. ---
        if world.just_restarted() {
            let acked = world.acked();
            if d.op_count() != acked.len() as u64 {
                return Some(Violation::AckedOpsLost {
                    acked: acked.len(),
                    recovered: d.op_count(),
                });
            }
            let journal = Journal {
                policy: world.graph().clone(),
                start: world.start(),
                ops: acked.to_vec(),
            };
            match replay(&journal) {
                Err(err) => {
                    return Some(Violation::StateDivergence {
                        detail: format!("acknowledged prefix does not replay: {err}"),
                    })
                }
                Ok(expected) => {
                    if let Some(detail) = state_diff(e, &expected) {
                        return Some(Violation::StateDivergence { detail });
                    }
                }
            }
        }

        // --- Compiled dispatch ≡ interpreter on the acked prefix. ---
        // Every distinct acknowledged ledger is replayed through a
        // compiled engine and an interpreter-pinned engine and the two
        // must agree on decisions, state, clock, and the byte-for-byte
        // audit trail. Together with the durability check above — which
        // compares the post-restart engine (whose plan was *recompiled*
        // on recovery) against a compiled replay — this also pins the
        // crash-restart recompilation to interpreter semantics. Dual
        // replay is expensive, so each ledger is checked once.
        let acked = world.acked();
        let mut fnv: u64 = 0xcbf2_9ce4_8422_2325;
        for op in acked {
            for b in format!("{op:?}").bytes() {
                fnv ^= u64::from(b);
                fnv = fnv.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        if self.compiled_checked.borrow_mut().insert(fnv) {
            if let Some(detail) = compiled_divergence(world.graph(), world.start(), acked) {
                return Some(Violation::CompiledDivergence { detail });
            }
        }

        None
    }

    /// The RBAC state invariants alone — SSD over authorized roles, DSD
    /// over active roles, and activation cardinality — against one live
    /// engine. The single-process suite runs this on *the* engine; the
    /// cluster suite runs it on every up node, because replication must
    /// not make a constraint violation observable anywhere.
    pub fn check_rbac(&self, e: &Engine) -> Option<Violation> {
        let sys = e.system();

        // --- Static SoD over every user's authorized roles. ---
        for u in sys.all_users().collect::<Vec<_>>() {
            let Ok(authorized) = sys.authorized_roles(u) else {
                continue;
            };
            let names: BTreeSet<String> = authorized
                .iter()
                .filter_map(|r| sys.role_name(*r).ok().map(str::to_string))
                .collect();
            for set in &self.ssd {
                let held: Vec<String> = set
                    .roles
                    .iter()
                    .filter(|r| names.contains(*r))
                    .cloned()
                    .collect();
                if held.len() >= set.cardinality {
                    return Some(Violation::Ssd {
                        set: set.name.clone(),
                        user: sys.user_name(u).unwrap_or("?").to_string(),
                        held,
                    });
                }
            }
        }

        // --- Dynamic SoD over every session's active roles. ---
        for s in sys.all_sessions().collect::<Vec<_>>() {
            let Ok(roles) = sys.session_roles(s) else {
                continue;
            };
            let names: BTreeSet<String> = roles
                .iter()
                .filter_map(|r| sys.role_name(*r).ok().map(str::to_string))
                .collect();
            for set in &self.dsd {
                let active: Vec<String> = set
                    .roles
                    .iter()
                    .filter(|r| names.contains(*r))
                    .cloned()
                    .collect();
                if active.len() >= set.cardinality {
                    return Some(Violation::Dsd {
                        set: set.name.clone(),
                        session: format!("{s}"),
                        active,
                    });
                }
            }
        }

        // --- Activation cardinality (paper Rule 4 and scenario 1). ---
        for (role, cap) in &self.role_caps {
            let Ok(r) = sys.role_by_name(role) else {
                continue;
            };
            let active = sys.active_users_of_role(r).unwrap_or(0);
            if active > *cap {
                return Some(Violation::RoleCardinality {
                    role: role.clone(),
                    cap: *cap,
                    active,
                });
            }
        }
        for (user, cap) in &self.user_caps {
            let Ok(u) = sys.user_by_name(user) else {
                continue;
            };
            let active = sys.active_roles_of_user(u).map(|s| s.len()).unwrap_or(0);
            if active > *cap {
                return Some(Violation::UserCardinality {
                    user: user.clone(),
                    cap: *cap,
                    active,
                });
            }
        }

        None
    }
}

/// Replay `ops` through a compiled engine and an interpreter-pinned engine
/// built from the same policy; return the first observable difference
/// (including the audit trail), if any. Policies that fail to build are
/// someone else's violation — this check only speaks to compilation.
fn compiled_divergence(graph: &PolicyGraph, start: Ts, ops: &[JournalOp]) -> Option<String> {
    let (Ok(mut compiled), Ok(mut interp)) = (
        Engine::from_policy(graph, start),
        Engine::from_policy(graph, start),
    ) else {
        return None;
    };
    interp.set_compiled(false);
    for (i, op) in ops.iter().enumerate() {
        let a = apply_op(&mut compiled, op);
        let b = apply_op(&mut interp, op);
        if a.is_ok() != b.is_ok() {
            return Some(format!(
                "op {i} ({op:?}): compiled {a:?} vs interpreted {b:?}"
            ));
        }
    }
    state_diff(&compiled, &interp)
}

/// First observable difference between two engines, if any — the same
/// equality the durability/replication suites assert, as a value.
pub fn state_diff(a: &Engine, b: &Engine) -> Option<String> {
    let (sa, sb) = (a.system(), b.system());
    let (la, lb): (Vec<_>, Vec<_>) = (sa.all_sessions().collect(), sb.all_sessions().collect());
    if la != lb {
        return Some(format!("session sets differ: {la:?} vs {lb:?}"));
    }
    for s in la {
        let (ra, rb) = (sa.session_roles(s), sb.session_roles(s));
        match (&ra, &rb) {
            (Ok(x), Ok(y)) if x == y => {}
            _ => return Some(format!("active roles differ for {s}: {ra:?} vs {rb:?}")),
        }
    }
    for r in sa.all_roles().collect::<Vec<_>>() {
        if sa.is_enabled(r).ok() != sb.is_enabled(r).ok() {
            return Some(format!("enablement differs for {r}"));
        }
    }
    if a.log().entries() != b.log().entries() {
        return Some(format!(
            "audit logs differ ({} vs {} entries)",
            a.log().entries().len(),
            b.log().entries().len()
        ));
    }
    if a.now() != b.now() {
        return Some(format!("clocks differ: {} vs {}", a.now(), b.now()));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Choice;
    use crate::{tiny_enterprise, tiny_ops};
    use owte_core::DurableConfig;

    /// The compiled-divergence invariant is clean on the honest stack,
    /// non-vacuous (the reference replay really arms a plan), and
    /// memoized per distinct acked ledger.
    #[test]
    fn compiled_divergence_clean_and_nonvacuous_on_tiny_enterprise() {
        let graph = tiny_enterprise();
        let mut world =
            World::new(&graph, tiny_ops(), DurableConfig::default()).expect("tiny instantiates");
        let inv = Invariants::from_reference(&graph);
        for _ in 0..tiny_ops().len() {
            world.apply(&Choice::NextOp).expect("script step applies");
            assert!(inv.check(&world).is_none(), "honest stack must be clean");
        }
        assert!(!world.acked().is_empty());
        let probe = Engine::from_policy(&graph, world.start()).expect("reference builds");
        assert!(
            probe.compiled_active(),
            "tiny enterprise must compile, or the divergence check is vacuous"
        );
        assert_eq!(
            compiled_divergence(&graph, world.start(), world.acked()),
            None
        );
        // Each distinct acked ledger is dual-replayed exactly once.
        let distinct = inv.compiled_checked.borrow().len();
        assert!(distinct >= 1, "at least one ledger must have been checked");
        assert!(inv.check(&world).is_none());
        assert_eq!(
            inv.compiled_checked.borrow().len(),
            distinct,
            "re-checking an unchanged ledger must hit the memo"
        );
    }

    #[test]
    fn compiled_divergence_display_names_the_first_difference() {
        let v = Violation::CompiledDivergence {
            detail: "clocks differ: 1s vs 2s".into(),
        };
        assert_eq!(
            v.to_string(),
            "compiled dispatch diverges from the interpreter: clocks differ: 1s vs 2s"
        );
    }
}
