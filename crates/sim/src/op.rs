//! Client operations a simulated process issues against the engine.
//!
//! Roles, operations and objects are referred to by *name* and users by
//! *index* (`workload::enterprise::user_name`), so an operation script is
//! stable across crash/restart cycles — ids are rebound against whatever
//! engine instance is currently alive.

use std::fmt;
use workload::Step;

/// One client operation of a simulated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOp {
    /// Open a session (no initial roles) for user `i`.
    CreateSession {
        /// User index.
        user: usize,
    },
    /// Close user `i`'s tracked session, if any.
    DeleteSession {
        /// User index.
        user: usize,
    },
    /// Activate a role in user `i`'s tracked session.
    AddActiveRole {
        /// User index.
        user: usize,
        /// Role name.
        role: String,
    },
    /// Deactivate a role in user `i`'s tracked session.
    DropActiveRole {
        /// User index.
        user: usize,
        /// Role name.
        role: String,
    },
    /// Access check through user `i`'s tracked session.
    CheckAccess {
        /// User index.
        user: usize,
        /// Operation name.
        op: String,
        /// Object name.
        obj: String,
    },
    /// Administrative `AssignUser(user, role)`.
    AssignUser {
        /// User index.
        user: usize,
        /// Role name.
        role: String,
    },
    /// Administrative `DeassignUser(user, role)`.
    DeassignUser {
        /// User index.
        user: usize,
        /// Role name.
        role: String,
    },
    /// Advance virtual time by `secs`.
    Advance {
        /// Seconds forward.
        secs: u64,
    },
    /// Set a context key (zone, network, …).
    SetContext {
        /// Context key.
        key: String,
        /// Context value.
        value: String,
    },
}

impl fmt::Display for SimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimOp::CreateSession { user } => write!(f, "create-session(u{user})"),
            SimOp::DeleteSession { user } => write!(f, "delete-session(u{user})"),
            SimOp::AddActiveRole { user, role } => write!(f, "add-active-role(u{user}, {role})"),
            SimOp::DropActiveRole { user, role } => write!(f, "drop-active-role(u{user}, {role})"),
            SimOp::CheckAccess { user, op, obj } => {
                write!(f, "check-access(u{user}, {op}, {obj})")
            }
            SimOp::AssignUser { user, role } => write!(f, "assign-user(u{user}, {role})"),
            SimOp::DeassignUser { user, role } => write!(f, "deassign-user(u{user}, {role})"),
            SimOp::Advance { secs } => write!(f, "advance(+{secs}s)"),
            SimOp::SetContext { key, value } => write!(f, "set-context({key}={value})"),
        }
    }
}

/// Lower a generated workload trace to simulator operations, using the
/// workload crate's canonical `role{i}` / `op{i}` / `obj{i}` naming.
pub fn from_trace(trace: &[Step]) -> Vec<SimOp> {
    trace
        .iter()
        .map(|s| match s {
            Step::CreateSession { user } => SimOp::CreateSession { user: *user },
            Step::DeleteSession { user } => SimOp::DeleteSession { user: *user },
            Step::AddActiveRole { user, role } => SimOp::AddActiveRole {
                user: *user,
                role: workload::enterprise::role_name(*role),
            },
            Step::DropActiveRole { user, role } => SimOp::DropActiveRole {
                user: *user,
                role: workload::enterprise::role_name(*role),
            },
            Step::CheckAccess { user, op, obj } => SimOp::CheckAccess {
                user: *user,
                op: format!("op{op}"),
                obj: format!("obj{obj}"),
            },
            Step::Advance { secs } => SimOp::Advance { secs: *secs },
            Step::SetContext { zone } => SimOp::SetContext {
                key: "zone".to_string(),
                value: workload::enterprise::ZONES[*zone].to_string(),
            },
        })
        .collect()
}
