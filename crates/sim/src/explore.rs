//! Schedule exploration: exhaustive bounded DFS with state pruning, and
//! a seeded-random walker for larger configurations, plus schedule
//! replay and greedy shrinking to a minimal counterexample.
//!
//! The explorer is generic over the state space it walks: anything
//! implementing [`SimWorld`] (a clonable state with an enumerable choice
//! alphabet) can be explored against any [`Checker`]. The single-process
//! [`World`] walks client ops, timer firings and crash points; the
//! multi-node [`crate::ClusterWorld`] adds message deliveries, losses,
//! duplicates, per-node crashes and failovers to the same machinery.

use crate::invariants::{Invariants, Violation};
use crate::world::{Choice, StepError, World};
use std::collections::HashMap;
use std::fmt;

/// A state the explorer can walk: clonable (the DFS forks worlds at every
/// branch), with a self-describing choice alphabet and a pruning
/// fingerprint.
pub trait SimWorld: Clone {
    /// One scheduler decision in this state space. Position-independent:
    /// a recorded choice sequence replays deterministically from the
    /// initial world.
    type Choice: Clone + PartialEq + fmt::Debug + fmt::Display;

    /// Every choice enabled here under `budget`, in a stable order.
    /// `reduction` enables the world's partial-order rules; prunes are
    /// counted into `stats`.
    fn enabled_choices(
        &self,
        budget: &Budget,
        reduction: bool,
        stats: &mut Stats,
    ) -> Vec<Self::Choice>;

    /// Apply one choice, transforming this world into its successor.
    fn apply_choice(&mut self, choice: &Self::Choice) -> Result<(), StepError<Self::Choice>>;

    /// Human-readable description of what `choice` would do here.
    fn describe_choice(&self, choice: &Self::Choice) -> String;

    /// An order-independent digest of everything observable about this
    /// state. Two worlds with equal fingerprints behave identically under
    /// every future schedule, so the exhaustive explorer prunes revisits.
    fn fingerprint(&self) -> u64;

    /// Crash/restart cycles taken so far (bounded by the budget).
    fn crashes(&self) -> usize;

    /// The sequence of applied choices that produced this world from its
    /// initial state.
    fn schedule_choices(&self) -> &[Self::Choice];
}

/// An invariant suite evaluated against worlds of type `W` after every
/// scheduler step.
pub trait Checker<W: SimWorld> {
    /// The first violation observable in `world`, if any.
    fn check(&self, world: &W) -> Option<Violation>;
}

/// Exploration limits.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Longest schedule (steps) considered.
    pub max_steps: usize,
    /// Crash/restart cycles allowed per schedule.
    pub max_crashes: usize,
    /// Random mode: schedules sampled.
    pub max_schedules: usize,
    /// Exhaustive mode: states expanded before giving up (the report
    /// then says the sweep was incomplete).
    pub max_states: usize,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_steps: 12,
            max_crashes: 2,
            max_schedules: 256,
            max_states: 250_000,
        }
    }
}

/// How to drive the scheduler.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Sample whole schedules from a seed (CI-friendly on medium
    /// configurations).
    Random {
        /// Base seed; schedule `i` uses `seed + i`.
        seed: u64,
    },
    /// Depth-first enumeration of every interleaving within the budget.
    Exhaustive {
        /// Enable state-fingerprint pruning and the world's partial-order
        /// rules (crash-stutter, delivery commutation). Turning it off
        /// walks the raw schedule tree — same verdict, far more states
        /// (used to validate the reductions themselves).
        reduction: bool,
    },
}

/// Exploration counters, for reports and the experiment log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// States expanded.
    pub explored: usize,
    /// Successors discarded because an equal-fingerprint state was
    /// already explored at no higher crash budget.
    pub pruned_fingerprint: usize,
    /// Crash choices discarded by the stutter rule (crashing again
    /// immediately after a restart, which provably re-recovers the same
    /// state).
    pub pruned_stutter: usize,
    /// Message choices discarded by the delivery-commutation rule
    /// (deliveries to distinct destinations commute, so only the earliest
    /// in-flight message per destination is branched on).
    pub pruned_commute: usize,
    /// Random mode: schedules completed.
    pub schedules: usize,
    /// Whether the sweep covered everything the budget asked for.
    pub complete: bool,
}

/// A replayable schedule: the exact choice sequence from the initial
/// world to the violating state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule<C = Choice>(pub Vec<C>);

impl<C: fmt::Display> fmt::Display for Schedule<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.0.iter().enumerate() {
            writeln!(f, "  {:>3}. {c}", i + 1)?;
        }
        Ok(())
    }
}

impl<C> Schedule<C> {
    /// Annotated step script: replays the schedule against `initial`
    /// (without invariant checking) and describes each step in terms of
    /// what it actually resolved to.
    pub fn script<W: SimWorld<Choice = C>>(&self, initial: &W) -> String {
        let mut w = initial.clone();
        let mut out = String::new();
        for (i, c) in self.0.iter().enumerate() {
            out.push_str(&format!("  {:>3}. {}\n", i + 1, w.describe_choice(c)));
            if w.apply_choice(c).is_err() {
                out.push_str("       (schedule diverged here)\n");
                break;
            }
        }
        out
    }
}

/// The result of one exploration run.
#[derive(Debug, Clone)]
pub enum Outcome<C = Choice> {
    /// No reachable state violated any invariant.
    Clean(Stats),
    /// A violation was found; `schedule` is the shrunk, minimal
    /// counterexample.
    Violation {
        /// What failed.
        violation: Violation,
        /// Minimal replayable schedule reaching it.
        schedule: Schedule<C>,
        /// Counters up to the find.
        stats: Stats,
    },
}

/// What [`crate::check`] returns: the outcome plus the seeds needed to
/// rebuild the exact same initial world.
#[derive(Debug, Clone)]
pub struct CheckReport<C = Choice> {
    /// Exploration outcome.
    pub outcome: Outcome<C>,
    /// Enterprise seed the world was generated from.
    pub ent_seed: u64,
    /// Trace seed the client script was generated from.
    pub trace_seed: u64,
}

impl<C> CheckReport<C> {
    pub(crate) fn new(outcome: Outcome<C>, ent_seed: u64, trace_seed: u64) -> CheckReport<C> {
        CheckReport {
            outcome,
            ent_seed,
            trace_seed,
        }
    }

    /// Did every explored schedule satisfy every invariant?
    pub fn is_clean(&self) -> bool {
        matches!(self.outcome, Outcome::Clean(_))
    }

    /// The exploration counters.
    pub fn stats(&self) -> &Stats {
        match &self.outcome {
            Outcome::Clean(s) => s,
            Outcome::Violation { stats, .. } => stats,
        }
    }
}

impl<C: fmt::Display> fmt::Display for CheckReport<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            Outcome::Clean(s) => write!(
                f,
                "CLEAN — {} states explored ({} fingerprint-pruned, {} stutter-pruned, \
                 {} commute-pruned, {} schedules), ent_seed={} trace_seed={}",
                s.explored,
                s.pruned_fingerprint,
                s.pruned_stutter,
                s.pruned_commute,
                s.schedules,
                self.ent_seed,
                self.trace_seed
            ),
            Outcome::Violation {
                violation,
                schedule,
                stats,
            } => write!(
                f,
                "VIOLATION after {} states (ent_seed={} trace_seed={}): {violation}\n\
                 minimal schedule ({} steps):\n{schedule}",
                stats.explored,
                self.ent_seed,
                self.trace_seed,
                schedule.0.len()
            ),
        }
    }
}

/// Explore from `initial` under `strategy` and `budget`, checking
/// `invariants` after every step. Violations are shrunk to a minimal
/// schedule before being reported.
pub fn explore<W: SimWorld, K: Checker<W>>(
    initial: &W,
    invariants: &K,
    strategy: Strategy,
    budget: Budget,
) -> Outcome<W::Choice> {
    match strategy {
        Strategy::Exhaustive { reduction } => dfs(initial, invariants, &budget, reduction),
        Strategy::Random { seed } => random(initial, invariants, &budget, seed),
    }
}

fn violation_outcome<W: SimWorld, K: Checker<W>>(
    initial: &W,
    invariants: &K,
    violation: Violation,
    schedule: Vec<W::Choice>,
    stats: Stats,
) -> Outcome<W::Choice> {
    let schedule = shrink(initial, invariants, &schedule, &violation);
    // Report the violation the *minimal* schedule produces: shrinking
    // preserves the violation kind but may change its details (e.g. fewer
    // acknowledged ops are lost once redundant ops are dropped).
    let violation = match run_schedule(initial, invariants, &schedule.0) {
        Ok(Some((v, _))) => v,
        _ => violation,
    };
    Outcome::Violation {
        violation,
        schedule,
        stats,
    }
}

fn dfs<W: SimWorld, K: Checker<W>>(
    initial: &W,
    invariants: &K,
    budget: &Budget,
    reduction: bool,
) -> Outcome<W::Choice> {
    let mut stats = Stats {
        complete: true,
        ..Stats::default()
    };
    // Fingerprint → fewest crashes with which the state was expanded. A
    // revisit with crash budget to spare must be re-expanded, or crash
    // successors could be missed.
    let mut seen: HashMap<u64, usize> = HashMap::new();
    if let Some(v) = invariants.check(initial) {
        return violation_outcome(initial, invariants, v, Vec::new(), stats);
    }
    let mut stack: Vec<W> = vec![initial.clone()];
    if reduction {
        seen.insert(initial.fingerprint(), initial.crashes());
    }
    while let Some(world) = stack.pop() {
        stats.explored += 1;
        if stats.explored > budget.max_states {
            stats.complete = false;
            break;
        }
        for choice in world.enabled_choices(budget, reduction, &mut stats) {
            let mut child = world.clone();
            match child.apply_choice(&choice) {
                Ok(()) => {}
                Err(StepError::Violation(v)) => {
                    return violation_outcome(
                        initial,
                        invariants,
                        v,
                        child.schedule_choices().to_vec(),
                        stats,
                    );
                }
                Err(StepError::NotEnabled(c)) => {
                    unreachable!("enumerator offered a disabled choice: {c}")
                }
            }
            if let Some(v) = invariants.check(&child) {
                return violation_outcome(
                    initial,
                    invariants,
                    v,
                    child.schedule_choices().to_vec(),
                    stats,
                );
            }
            if child.schedule_choices().len() >= budget.max_steps {
                continue;
            }
            if reduction {
                let fp = child.fingerprint();
                let crashes = child.crashes();
                match seen.get(&fp) {
                    Some(&prev) if prev <= crashes => {
                        stats.pruned_fingerprint += 1;
                        continue;
                    }
                    _ => {
                        seen.insert(fp, crashes);
                    }
                }
            }
            stack.push(child);
        }
    }
    Outcome::Clean(stats)
}

fn random<W: SimWorld, K: Checker<W>>(
    initial: &W,
    invariants: &K,
    budget: &Budget,
    seed: u64,
) -> Outcome<W::Choice> {
    let mut stats = Stats {
        complete: true,
        ..Stats::default()
    };
    if let Some(v) = invariants.check(initial) {
        return violation_outcome(initial, invariants, v, Vec::new(), stats);
    }
    for i in 0..budget.max_schedules {
        let mut rng = SplitMix64(seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9) ^ seed);
        let mut world = initial.clone();
        for _ in 0..budget.max_steps {
            let choices = world.enabled_choices(budget, true, &mut stats);
            if choices.is_empty() {
                break;
            }
            let pick = choices[(rng.next() % choices.len() as u64) as usize].clone();
            stats.explored += 1;
            let failed = match world.apply_choice(&pick) {
                Ok(()) => invariants.check(&world),
                Err(StepError::Violation(v)) => Some(v),
                Err(StepError::NotEnabled(c)) => {
                    unreachable!("enumerator offered a disabled choice: {c}")
                }
            };
            if let Some(v) = failed {
                return violation_outcome(
                    initial,
                    invariants,
                    v,
                    world.schedule_choices().to_vec(),
                    stats,
                );
            }
        }
        stats.schedules += 1;
    }
    Outcome::Clean(stats)
}

/// Replay `schedule` from `initial`, checking invariants after every
/// step. Returns the violation and the 0-based index of the violating
/// step, `None` if the schedule runs clean, or `Err` if a choice is not
/// enabled when its turn comes (an over-shrunk candidate).
pub fn run_schedule<W: SimWorld, K: Checker<W>>(
    initial: &W,
    invariants: &K,
    schedule: &[W::Choice],
) -> Result<Option<(Violation, usize)>, usize> {
    let mut world = initial.clone();
    if let Some(v) = invariants.check(&world) {
        return Ok(Some((v, 0)));
    }
    for (i, choice) in schedule.iter().enumerate() {
        let failed = match world.apply_choice(choice) {
            Ok(()) => invariants.check(&world),
            Err(StepError::Violation(v)) => Some(v),
            Err(StepError::NotEnabled(_)) => return Err(i),
        };
        if let Some(v) = failed {
            return Ok(Some((v, i)));
        }
    }
    Ok(None)
}

/// Greedy delta-debugging shrink: truncate at the violating step, then
/// repeatedly try dropping single steps — and adjacent pairs, so a
/// redundant `crash`+`restart` couple can go together (neither replays
/// alone: dropping just the crash leaves a restart that is not enabled,
/// dropping just the restart leaves a dead world) — while the *same
/// kind* of violation still reproduces.
fn shrink<W: SimWorld, K: Checker<W>>(
    initial: &W,
    invariants: &K,
    schedule: &[W::Choice],
    target: &Violation,
) -> Schedule<W::Choice> {
    let same_kind = |v: &Violation| std::mem::discriminant(v) == std::mem::discriminant(target);
    let mut best: Vec<W::Choice> = match run_schedule(initial, invariants, schedule) {
        Ok(Some((v, at))) if same_kind(&v) => schedule[..=at].to_vec(),
        // The recorded schedule already includes exactly the violating
        // steps (explorers stop at the first violation), so this arm is
        // only reached if replay disagrees — keep the original.
        _ => schedule.to_vec(),
    };
    let mut improved = true;
    while improved {
        improved = false;
        'removals: for width in [1usize, 2] {
            for i in 0..best.len().saturating_sub(width - 1) {
                let mut candidate = best.clone();
                candidate.drain(i..i + width);
                if let Ok(Some((v, at))) = run_schedule(initial, invariants, &candidate) {
                    if same_kind(&v) {
                        candidate.truncate(at + 1);
                        best = candidate;
                        improved = true;
                        break 'removals;
                    }
                }
            }
        }
    }
    Schedule(best)
}

/// SplitMix64 — the crate-local seeded generator for the random walker.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The single-process [`World`]'s choice enumeration, including the
/// crash-point probe and the crash-stutter partial-order rule.
impl SimWorld for World {
    type Choice = Choice;

    fn enabled_choices(&self, budget: &Budget, reduction: bool, stats: &mut Stats) -> Vec<Choice> {
        if self.is_crashed() {
            return vec![Choice::Restart];
        }
        let mut out = Vec::new();
        let ops_left = self.cursor() < self.ops().len();
        if ops_left {
            out.push(Choice::NextOp);
        }
        if self
            .engine()
            .and_then(|d| d.engine().next_timer_at())
            .is_some()
        {
            out.push(Choice::FireNextTimer);
        }
        if self.crashes() < budget.max_crashes {
            if ops_left {
                // One crash point before each storage op of the next
                // client op, each in a clean and a torn-write variant.
                let writes = self.probe_next_op_storage_ops();
                for at in 1..=writes {
                    out.push(Choice::CrashDuringNextOp { at, keep: 0 });
                    out.push(Choice::CrashDuringNextOp { at, keep: 1 });
                }
            }
            // Crashing again immediately after a restart is a stutter:
            // recovery is deterministic and every byte it recovered from
            // is still synced, so re-crash + restart reproduces the
            // identical engine state and acknowledged ledger — it only
            // spends crash budget (and accretes an empty WAL segment the
            // invariants never see). Any violation reachable beyond the
            // re-crash is therefore reachable without it, with crash
            // budget to spare.
            let stutter = reduction && self.schedule().last() == Some(&Choice::Restart);
            if stutter {
                stats.pruned_stutter += 1;
            } else {
                out.push(Choice::CrashNow);
            }
        }
        out
    }

    fn apply_choice(&mut self, choice: &Choice) -> Result<(), StepError<Choice>> {
        self.apply(choice)
    }

    fn describe_choice(&self, choice: &Choice) -> String {
        self.describe(choice)
    }

    fn fingerprint(&self) -> u64 {
        World::fingerprint(self)
    }

    fn crashes(&self) -> usize {
        World::crashes(self)
    }

    fn schedule_choices(&self) -> &[Choice] {
        self.schedule()
    }
}

/// The single-process invariant suite plugs into the generic explorer.
impl Checker<World> for Invariants {
    fn check(&self, world: &World) -> Option<Violation> {
        Invariants::check(self, world)
    }
}
