//! Schedule exploration: exhaustive bounded DFS with state pruning, and
//! a seeded-random walker for larger configurations, plus schedule
//! replay and greedy shrinking to a minimal counterexample.

use crate::invariants::{Invariants, Violation};
use crate::world::{Choice, StepError, World};
use std::collections::HashMap;
use std::fmt;

/// Exploration limits.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Longest schedule (steps) considered.
    pub max_steps: usize,
    /// Crash/restart cycles allowed per schedule.
    pub max_crashes: usize,
    /// Random mode: schedules sampled.
    pub max_schedules: usize,
    /// Exhaustive mode: states expanded before giving up (the report
    /// then says the sweep was incomplete).
    pub max_states: usize,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_steps: 12,
            max_crashes: 2,
            max_schedules: 256,
            max_states: 250_000,
        }
    }
}

/// How to drive the scheduler.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Sample whole schedules from a seed (CI-friendly on medium
    /// configurations).
    Random {
        /// Base seed; schedule `i` uses `seed + i`.
        seed: u64,
    },
    /// Depth-first enumeration of every interleaving within the budget.
    Exhaustive {
        /// Enable state-fingerprint pruning and the crash-stutter
        /// partial-order rule. Turning it off walks the raw schedule
        /// tree — same verdict, far more states (used to validate the
        /// reduction itself).
        reduction: bool,
    },
}

/// Exploration counters, for reports and the experiment log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// States expanded.
    pub explored: usize,
    /// Successors discarded because an equal-fingerprint state was
    /// already explored at no higher crash budget.
    pub pruned_fingerprint: usize,
    /// Crash choices discarded by the stutter rule (crashing again
    /// immediately after a restart, which provably re-recovers the same
    /// state).
    pub pruned_stutter: usize,
    /// Random mode: schedules completed.
    pub schedules: usize,
    /// Whether the sweep covered everything the budget asked for.
    pub complete: bool,
}

/// A replayable schedule: the exact choice sequence from the initial
/// world to the violating state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule(pub Vec<Choice>);

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.0.iter().enumerate() {
            writeln!(f, "  {:>3}. {c}", i + 1)?;
        }
        Ok(())
    }
}

impl Schedule {
    /// Annotated step script: replays the schedule against `initial`
    /// (without invariant checking) and describes each step in terms of
    /// the client ops and timers it actually resolved to.
    pub fn script(&self, initial: &World) -> String {
        let mut w = initial.clone();
        let mut out = String::new();
        for (i, c) in self.0.iter().enumerate() {
            out.push_str(&format!("  {:>3}. {}\n", i + 1, w.describe(c)));
            if w.apply(c).is_err() {
                out.push_str("       (schedule diverged here)\n");
                break;
            }
        }
        out
    }
}

/// The result of one exploration run.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// No reachable state violated any invariant.
    Clean(Stats),
    /// A violation was found; `schedule` is the shrunk, minimal
    /// counterexample.
    Violation {
        /// What failed.
        violation: Violation,
        /// Minimal replayable schedule reaching it.
        schedule: Schedule,
        /// Counters up to the find.
        stats: Stats,
    },
}

/// What [`crate::check`] returns: the outcome plus the seeds needed to
/// rebuild the exact same initial world.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Exploration outcome.
    pub outcome: Outcome,
    /// Enterprise seed the world was generated from.
    pub ent_seed: u64,
    /// Trace seed the client script was generated from.
    pub trace_seed: u64,
}

impl CheckReport {
    pub(crate) fn new(outcome: Outcome, ent_seed: u64, trace_seed: u64) -> CheckReport {
        CheckReport {
            outcome,
            ent_seed,
            trace_seed,
        }
    }

    /// Did every explored schedule satisfy every invariant?
    pub fn is_clean(&self) -> bool {
        matches!(self.outcome, Outcome::Clean(_))
    }

    /// The exploration counters.
    pub fn stats(&self) -> &Stats {
        match &self.outcome {
            Outcome::Clean(s) => s,
            Outcome::Violation { stats, .. } => stats,
        }
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            Outcome::Clean(s) => write!(
                f,
                "CLEAN — {} states explored ({} fingerprint-pruned, {} stutter-pruned, \
                 {} schedules), ent_seed={} trace_seed={}",
                s.explored,
                s.pruned_fingerprint,
                s.pruned_stutter,
                s.schedules,
                self.ent_seed,
                self.trace_seed
            ),
            Outcome::Violation {
                violation,
                schedule,
                stats,
            } => write!(
                f,
                "VIOLATION after {} states (ent_seed={} trace_seed={}): {violation}\n\
                 minimal schedule ({} steps):\n{schedule}",
                stats.explored,
                self.ent_seed,
                self.trace_seed,
                schedule.0.len()
            ),
        }
    }
}

/// Every choice enabled in `world` under `budget`, in a stable order.
/// The `reduction` flag controls the crash-stutter partial-order rule.
fn enabled_choices(
    world: &World,
    budget: &Budget,
    reduction: bool,
    stats: &mut Stats,
) -> Vec<Choice> {
    if world.is_crashed() {
        return vec![Choice::Restart];
    }
    let mut out = Vec::new();
    let ops_left = world.cursor() < world.ops().len();
    if ops_left {
        out.push(Choice::NextOp);
    }
    if world
        .engine()
        .and_then(|d| d.engine().next_timer_at())
        .is_some()
    {
        out.push(Choice::FireNextTimer);
    }
    if world.crashes() < budget.max_crashes {
        if ops_left {
            // One crash point before each storage op of the next client
            // op, each in a clean and a torn-write variant.
            let writes = world.probe_next_op_storage_ops();
            for at in 1..=writes {
                out.push(Choice::CrashDuringNextOp { at, keep: 0 });
                out.push(Choice::CrashDuringNextOp { at, keep: 1 });
            }
        }
        // Crashing again immediately after a restart is a stutter:
        // recovery is deterministic and every byte it recovered from is
        // still synced, so re-crash + restart reproduces the identical
        // engine state and acknowledged ledger — it only spends crash
        // budget (and accretes an empty WAL segment the invariants never
        // see). Any violation reachable beyond the re-crash is therefore
        // reachable without it, with crash budget to spare.
        let stutter = reduction && world.schedule().last() == Some(&Choice::Restart);
        if stutter {
            stats.pruned_stutter += 1;
        } else {
            out.push(Choice::CrashNow);
        }
    }
    out
}

/// Explore from `initial` under `strategy` and `budget`, checking
/// `invariants` after every step. Violations are shrunk to a minimal
/// schedule before being reported.
pub fn explore(
    initial: &World,
    invariants: &Invariants,
    strategy: Strategy,
    budget: Budget,
) -> Outcome {
    match strategy {
        Strategy::Exhaustive { reduction } => dfs(initial, invariants, &budget, reduction),
        Strategy::Random { seed } => random(initial, invariants, &budget, seed),
    }
}

fn violation_outcome(
    initial: &World,
    invariants: &Invariants,
    violation: Violation,
    schedule: Vec<Choice>,
    stats: Stats,
) -> Outcome {
    let schedule = shrink(initial, invariants, &schedule, &violation);
    // Report the violation the *minimal* schedule produces: shrinking
    // preserves the violation kind but may change its details (e.g. fewer
    // acknowledged ops are lost once redundant ops are dropped).
    let violation = match run_schedule(initial, invariants, &schedule.0) {
        Ok(Some((v, _))) => v,
        _ => violation,
    };
    Outcome::Violation {
        violation,
        schedule,
        stats,
    }
}

fn dfs(initial: &World, invariants: &Invariants, budget: &Budget, reduction: bool) -> Outcome {
    let mut stats = Stats {
        complete: true,
        ..Stats::default()
    };
    // Fingerprint → fewest crashes with which the state was expanded. A
    // revisit with crash budget to spare must be re-expanded, or crash
    // successors could be missed.
    let mut seen: HashMap<u64, usize> = HashMap::new();
    if let Some(v) = invariants.check(initial) {
        return violation_outcome(initial, invariants, v, Vec::new(), stats);
    }
    let mut stack: Vec<World> = vec![initial.clone()];
    if reduction {
        seen.insert(initial.fingerprint(), initial.crashes());
    }
    while let Some(world) = stack.pop() {
        stats.explored += 1;
        if stats.explored > budget.max_states {
            stats.complete = false;
            break;
        }
        for choice in enabled_choices(&world, budget, reduction, &mut stats) {
            let mut child = world.clone();
            match child.apply(&choice) {
                Ok(()) => {}
                Err(StepError::Violation(v)) => {
                    return violation_outcome(
                        initial,
                        invariants,
                        v,
                        child.schedule().to_vec(),
                        stats,
                    );
                }
                Err(StepError::NotEnabled(c)) => {
                    unreachable!("enumerator offered a disabled choice: {c}")
                }
            }
            if let Some(v) = invariants.check(&child) {
                return violation_outcome(initial, invariants, v, child.schedule().to_vec(), stats);
            }
            if child.schedule().len() >= budget.max_steps {
                continue;
            }
            if reduction {
                let fp = child.fingerprint();
                let crashes = child.crashes();
                match seen.get(&fp) {
                    Some(&prev) if prev <= crashes => {
                        stats.pruned_fingerprint += 1;
                        continue;
                    }
                    _ => {
                        seen.insert(fp, crashes);
                    }
                }
            }
            stack.push(child);
        }
    }
    Outcome::Clean(stats)
}

fn random(initial: &World, invariants: &Invariants, budget: &Budget, seed: u64) -> Outcome {
    let mut stats = Stats {
        complete: true,
        ..Stats::default()
    };
    if let Some(v) = invariants.check(initial) {
        return violation_outcome(initial, invariants, v, Vec::new(), stats);
    }
    for i in 0..budget.max_schedules {
        let mut rng = SplitMix64(seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9) ^ seed);
        let mut world = initial.clone();
        for _ in 0..budget.max_steps {
            let choices = enabled_choices(&world, budget, true, &mut stats);
            if choices.is_empty() {
                break;
            }
            let pick = choices[(rng.next() % choices.len() as u64) as usize].clone();
            stats.explored += 1;
            let failed = match world.apply(&pick) {
                Ok(()) => invariants.check(&world),
                Err(StepError::Violation(v)) => Some(v),
                Err(StepError::NotEnabled(c)) => {
                    unreachable!("enumerator offered a disabled choice: {c}")
                }
            };
            if let Some(v) = failed {
                return violation_outcome(initial, invariants, v, world.schedule().to_vec(), stats);
            }
        }
        stats.schedules += 1;
    }
    Outcome::Clean(stats)
}

/// Replay `schedule` from `initial`, checking invariants after every
/// step. Returns the violation and the 0-based index of the violating
/// step, `None` if the schedule runs clean, or `Err` if a choice is not
/// enabled when its turn comes (an over-shrunk candidate).
pub fn run_schedule(
    initial: &World,
    invariants: &Invariants,
    schedule: &[Choice],
) -> Result<Option<(Violation, usize)>, usize> {
    let mut world = initial.clone();
    if let Some(v) = invariants.check(&world) {
        return Ok(Some((v, 0)));
    }
    for (i, choice) in schedule.iter().enumerate() {
        let failed = match world.apply(choice) {
            Ok(()) => invariants.check(&world),
            Err(StepError::Violation(v)) => Some(v),
            Err(StepError::NotEnabled(_)) => return Err(i),
        };
        if let Some(v) = failed {
            return Ok(Some((v, i)));
        }
    }
    Ok(None)
}

/// Greedy delta-debugging shrink: truncate at the violating step, then
/// repeatedly try dropping single steps — and adjacent pairs, so a
/// redundant `crash`+`restart` couple can go together (neither replays
/// alone: dropping just the crash leaves a restart that is not enabled,
/// dropping just the restart leaves a dead world) — while the *same
/// kind* of violation still reproduces.
fn shrink(
    initial: &World,
    invariants: &Invariants,
    schedule: &[Choice],
    target: &Violation,
) -> Schedule {
    let same_kind = |v: &Violation| std::mem::discriminant(v) == std::mem::discriminant(target);
    let mut best: Vec<Choice> = match run_schedule(initial, invariants, schedule) {
        Ok(Some((v, at))) if same_kind(&v) => schedule[..=at].to_vec(),
        // The recorded schedule already includes exactly the violating
        // steps (explorers stop at the first violation), so this arm is
        // only reached if replay disagrees — keep the original.
        _ => schedule.to_vec(),
    };
    let mut improved = true;
    while improved {
        improved = false;
        'removals: for width in [1usize, 2] {
            for i in 0..best.len().saturating_sub(width - 1) {
                let mut candidate = best.clone();
                candidate.drain(i..i + width);
                if let Ok(Some((v, at))) = run_schedule(initial, invariants, &candidate) {
                    if same_kind(&v) {
                        candidate.truncate(at + 1);
                        best = candidate;
                        improved = true;
                        break 'removals;
                    }
                }
            }
        }
    }
    Schedule(best)
}

/// SplitMix64 — the crate-local seeded generator for the random walker.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
