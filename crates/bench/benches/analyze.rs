//! E9 — static rule-pool analysis cost.
//!
//! The analyzer runs inside the generation/regeneration gate, so its wall
//! time must stay a small fraction of instantiation itself (E1/E3) or the
//! gate would dominate policy changes. Benched: the full `analyze` pass
//! (termination proof + condition analysis + coverage/conflict checks) on
//! the Figure-1 pool and on generated enterprises from 10 to 1000 roles,
//! plus the DOT export. The printed table is the series EXPERIMENTS.md
//! records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use policy::{analyze, instantiate, rule_dependency_dot, PolicyGraph};
use snoop::Ts;
use std::hint::black_box;
use workload::{generate_enterprise, EnterpriseSpec};

fn bench_xyz(c: &mut Criterion) {
    let inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
    c.bench_function("analyze/xyz_figure1", |b| {
        b.iter(|| analyze(black_box(&inst)))
    });
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze/roles");
    group.sample_size(10);
    println!("\nE9 series: roles -> analyzer verdict (constraint-bearing enterprise)");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>10}",
        "roles", "rules", "verdict", "errors", "warnings"
    );
    for &roles in &[10usize, 50, 100, 200, 500, 1000] {
        let g = generate_enterprise(&EnterpriseSpec::sized(roles), 42);
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        let report = analyze(&inst);
        println!(
            "{roles:>8} {:>10} {:>12} {:>10} {:>10}",
            report.rules,
            if report.proved_terminating() {
                "proved"
            } else {
                "loop?"
            },
            report.error_count(),
            report.warning_count()
        );
        group.throughput(Throughput::Elements(report.rules as u64));
        group.bench_with_input(BenchmarkId::from_parameter(roles), &inst, |b, inst| {
            b.iter(|| analyze(black_box(inst)))
        });
    }
    group.finish();
}

fn bench_dot_export(c: &mut Criterion) {
    let inst = instantiate(
        &generate_enterprise(&EnterpriseSpec::sized(100), 42),
        Ts::ZERO,
    )
    .unwrap();
    c.bench_function("analyze/dot_rules_100_roles", |b| {
        b.iter(|| rule_dependency_dot(black_box(&inst.detector), black_box(&inst.pool)))
    });
}

criterion_group!(benches, bench_xyz, bench_scaling, bench_dot_export);
criterion_main!(benches);
