//! E8 — durability (WAL): journal append throughput and recovery latency,
//! with and without snapshots.
//!
//! Expected shape: an in-memory append is dominated by the serde encode of
//! the operation (~µs); `FileStorage` with per-append fsync is dominated by
//! the sync. Recovery without snapshots is `O(history)` — it replays every
//! operation ever journaled — while snapshot recovery is `O(tail)`:
//! restoring a 10k-op store that snapshots every 1k ops deserializes one
//! engine and replays at most 1k records, which is the measurable gap the
//! acceptance criterion asks for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owte_core::{DurableConfig, DurableEngine, MemStorage, Storage};
use policy::PolicyGraph;
use rbac::{ObjId, OpId, SessionId};
use snoop::Ts;
use std::hint::black_box;

fn bench_policy() -> PolicyGraph {
    let mut g = PolicyGraph::new("journal-bench");
    g.role("clerk");
    g.user("ann");
    g.assign("ann", "clerk");
    g.permission("p", "read", "ledger");
    g.grant("p", "clerk");
    g
}

fn checking_fixture<S: Storage>(
    storage: S,
    config: DurableConfig,
) -> (DurableEngine<S>, SessionId, OpId, ObjId) {
    let g = bench_policy();
    let mut d = DurableEngine::create(storage, &g, Ts::ZERO, config).unwrap();
    let ann = d.user_id("ann").unwrap();
    let clerk = d.role_id("clerk").unwrap();
    let s = d.create_session(ann, &[clerk]).unwrap();
    let op = d.engine().system().op_by_name("read").unwrap();
    let obj = d.engine().system().obj_by_name("ledger").unwrap();
    (d, s, op, obj)
}

/// Populate a store with `ops` journaled access checks.
fn populated_storage(ops: u64, snapshot_every: Option<u64>) -> MemStorage {
    let config = DurableConfig {
        snapshot_every,
        ..DurableConfig::default()
    };
    let (mut d, s, op, obj) = checking_fixture(MemStorage::new(), config);
    while d.op_count() < ops {
        d.check_access(s, op, obj).unwrap();
    }
    d.into_storage()
}

fn bench_append_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal/append");

    // In-memory backend: measures the journaling overhead itself
    // (encode + frame + checksum), no real I/O.
    let (mut d, s, op, obj) = checking_fixture(
        MemStorage::new(),
        DurableConfig {
            snapshot_every: None,
            ..DurableConfig::default()
        },
    );
    group.bench_function("mem_check_access", |b| {
        b.iter(|| black_box(d.check_access(s, op, obj).unwrap()))
    });

    // Plain engine for reference: the same operation without journaling.
    let g = bench_policy();
    let mut e = owte_core::Engine::from_policy(&g, Ts::ZERO).unwrap();
    let ann = e.user_id("ann").unwrap();
    let clerk = e.role_id("clerk").unwrap();
    let s2 = e.create_session(ann, &[clerk]).unwrap();
    group.bench_function("baseline_check_access", |b| {
        b.iter(|| black_box(e.check_access(s2, op, obj).unwrap()))
    });

    // File backend with per-append fsync: the durable acknowledgement
    // cost an engine would pay in production.
    let dir = std::env::temp_dir().join(format!("owte-journal-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let storage = owte_core::FileStorage::open(&dir).unwrap();
    let (mut d, s, op, obj) = checking_fixture(
        storage,
        DurableConfig {
            snapshot_every: None,
            ..DurableConfig::default()
        },
    );
    group.bench_function("file_fsync_check_access", |b| {
        b.iter(|| black_box(d.check_access(s, op, obj).unwrap()))
    });
    drop(d);
    std::fs::remove_dir_all(&dir).ok();

    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal/recovery");
    group.sample_size(10);

    // Recovery latency vs journal length, full replay (genesis snapshot
    // plus the entire history as tail).
    for ops in [1_000u64, 5_000, 10_000] {
        let storage = populated_storage(ops, None);
        group.bench_with_input(
            BenchmarkId::new("full_replay", ops),
            &storage,
            |b, storage| {
                b.iter(|| {
                    let d = DurableEngine::open(storage.clone(), DurableConfig::default()).unwrap();
                    black_box(d.op_count())
                })
            },
        );
    }

    // The same 10k-op history with periodic snapshots: recovery loads the
    // newest snapshot and replays only the short tail.
    for every in [1_000u64, 4_096] {
        let storage = populated_storage(10_000, Some(every));
        group.bench_with_input(
            BenchmarkId::new("snapshot_tail", every),
            &storage,
            |b, storage| {
                b.iter(|| {
                    let d = DurableEngine::open(storage.clone(), DurableConfig::default()).unwrap();
                    black_box(d.op_count())
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_append_throughput, bench_recovery);
criterion_main!(benches);
