//! E7 — active security (§4.3.3): cost of the denial → `accessDenied` →
//! threshold-rule pipeline, and detection latency of a denial storm.
//!
//! Expected shape: per-denial overhead is a small constant (one extra event
//! dispatch plus a sliding-window count); storm detection fires on exactly
//! the threshold-th denial in both engines.

use criterion::{criterion_group, criterion_main, Criterion};
use owte_core::{DirectEngine, Engine};
use policy::{PolicyGraph, SecurityAction, SecuritySpec};
use rbac::{RoleId, SessionId, UserId};
use snoop::{Dur, Ts};
use std::hint::black_box;

fn probe_policy(with_security: bool) -> PolicyGraph {
    let mut g = PolicyGraph::new("probe");
    g.user("mallory");
    g.role("vault");
    if with_security {
        g.security.push(SecuritySpec {
            name: "probe".into(),
            threshold: 1_000_000, // never trips: measures pure overhead
            window: Dur::from_secs(60),
            actions: vec![SecurityAction::Alert],
        });
    }
    g
}

fn owte_fixture(with_security: bool) -> (Engine, UserId, SessionId, RoleId) {
    let g = probe_policy(with_security);
    let mut e = Engine::from_policy(&g, Ts::ZERO).unwrap();
    let u = e.user_id("mallory").unwrap();
    let s = e.create_session(u, &[]).unwrap();
    let r = e.role_id("vault").unwrap();
    (e, u, s, r)
}

fn bench_denial_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("active_security/denial_overhead");
    // OWTE without any security rule: denial still raises accessDenied.
    let (mut e, u, s, r) = owte_fixture(false);
    group.bench_function("owte_no_security_rule", |b| {
        b.iter(|| black_box(e.add_active_role(u, s, r).is_err()))
    });
    // OWTE with an armed (never-tripping) threshold rule.
    let (mut e, u, s, r) = owte_fixture(true);
    group.bench_function("owte_with_threshold_rule", |b| {
        b.iter(|| black_box(e.add_active_role(u, s, r).is_err()))
    });
    // Direct engine with the same policy.
    let g = probe_policy(true);
    let mut d = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
    let u = d.user_id("mallory").unwrap();
    let s = d.create_session(u, &[]).unwrap();
    let r = d.role_id("vault").unwrap();
    group.bench_function("direct_with_threshold", |b| {
        b.iter(|| black_box(d.add_active_role(u, s, r).is_err()))
    });
    group.finish();
}

fn bench_storm_detection(c: &mut Criterion) {
    // Time to process a 100-denial storm that trips at 50.
    let mut g = probe_policy(false);
    g.security.push(SecuritySpec {
        name: "storm".into(),
        threshold: 50,
        window: Dur::from_secs(3600),
        actions: vec![SecurityAction::Alert],
    });
    let mut group = c.benchmark_group("active_security/storm_100_denials");
    group.sample_size(20);
    group.bench_function("owte", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::from_policy(&g, Ts::ZERO).unwrap();
                let u = e.user_id("mallory").unwrap();
                let s = e.create_session(u, &[]).unwrap();
                let r = e.role_id("vault").unwrap();
                (e, u, s, r)
            },
            |(mut e, u, s, r)| {
                for _ in 0..100 {
                    let _ = e.add_active_role(u, s, r);
                }
                assert_eq!(e.alerts().len(), 1);
                black_box(e.log().denial_count())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("direct", |b| {
        b.iter_batched(
            || {
                let mut e = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
                let u = e.user_id("mallory").unwrap();
                let s = e.create_session(u, &[]).unwrap();
                let r = e.role_id("vault").unwrap();
                (e, u, s, r)
            },
            |(mut e, u, s, r)| {
                for _ in 0..100 {
                    let _ = e.add_active_role(u, s, r);
                }
                assert_eq!(e.alerts.len(), 1);
                black_box(e.alerts.len())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_audit_log_report(c: &mut Criterion) {
    // Administrator report generation over a busy log.
    let (mut e, u, s, r) = owte_fixture(false);
    for _ in 0..1_000 {
        let _ = e.add_active_role(u, s, r);
    }
    c.bench_function("active_security/report_1000_entries", |b| {
        b.iter(|| black_box(e.log().report().len()))
    });
}

criterion_group!(
    benches,
    bench_denial_overhead,
    bench_storm_detection,
    bench_audit_log_report
);
criterion_main!(benches);
