//! E1/E2 — rule generation from high-level policy.
//!
//! E1 (Figure 1): generating the enterprise-XYZ policy.
//! E2 (§1/§7 claim): "hundreds of roles … thousands of rules" — generation
//! time and pool size as the enterprise grows from 10 to 1000 roles. The
//! expected shape is linear in roles with a constant factor of several
//! rules per role; the printed table is the series EXPERIMENTS.md records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use policy::{instantiate, PolicyGraph};
use snoop::Ts;
use std::hint::black_box;
use workload::{generate_enterprise, EnterpriseSpec};

fn bench_xyz(c: &mut Criterion) {
    let g = PolicyGraph::enterprise_xyz();
    c.bench_function("generation/xyz_figure1", |b| {
        b.iter(|| instantiate(black_box(&g), Ts::ZERO).unwrap())
    });
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation/roles");
    group.sample_size(10);
    println!("\nE2 series: roles -> rules (constraint-bearing enterprise)");
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "roles", "rules", "checks", "events"
    );
    for &roles in &[10usize, 50, 100, 200, 500, 1000] {
        let g = generate_enterprise(&EnterpriseSpec::sized(roles), 42);
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        let stats = inst.pool.stats();
        println!(
            "{roles:>8} {:>10} {:>12} {:>12}",
            stats.total, stats.checks, inst.stats.event_nodes
        );
        group.throughput(Throughput::Elements(roles as u64));
        group.bench_with_input(BenchmarkId::from_parameter(roles), &g, |b, g| {
            b.iter(|| instantiate(black_box(g), Ts::ZERO).unwrap())
        });
    }
    group.finish();
}

fn bench_flat_vs_constrained(c: &mut Criterion) {
    // Ablation: how much of generation cost is the constraint surface?
    let mut group = c.benchmark_group("generation/ablation_100_roles");
    group.sample_size(10);
    let flat = generate_enterprise(&EnterpriseSpec::flat(100), 42);
    let full = generate_enterprise(&EnterpriseSpec::sized(100), 42);
    group.bench_function("flat_core_rbac", |b| {
        b.iter(|| instantiate(black_box(&flat), Ts::ZERO).unwrap())
    });
    group.bench_function("with_constraints", |b| {
        b.iter(|| instantiate(black_box(&full), Ts::ZERO).unwrap())
    });
    group.finish();
}

fn bench_dsl_parse(c: &mut Criterion) {
    // Policy text → graph (the administrator-facing path).
    let src = r#"
        policy "XYZ" {
          roles PM, PC, AM, AC, Clerk;
          hierarchy PM -> PC -> Clerk;
          hierarchy AM -> AC -> Clerk;
          ssd "purchase-approval" { PC, AC } cardinality 2;
          permission place_order = create on purchase_order;
          grant place_order -> PC;
        }
    "#;
    c.bench_function("generation/dsl_parse_xyz", |b| {
        b.iter(|| policy::parse(black_box(src)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_xyz,
    bench_scaling,
    bench_flat_vs_constrained,
    bench_dsl_parse
);
criterion_main!(benches);
