//! E6 — temporal enforcement (§4.3.2): Δ-expiry churn (Rule 7), a full
//! simulated day of shift boundaries, and the disabling-time SoD check
//! (Rule 6), OWTE vs direct.
//!
//! Expected shape: both engines scale linearly in boundary count; the OWTE
//! engine pays rule dispatch + audit logging per boundary (a constant
//! factor of a few × over the direct engine's raw `enable_role` calls),
//! buying the regenerable rule pool rather than raw speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owte_core::{DirectEngine, Engine};
use policy::{DailyWindow, PolicyGraph};
use snoop::{Civil, Dur, Ts};
use std::hint::black_box;

fn shift_policy(temporal_roles: usize) -> PolicyGraph {
    let mut g = PolicyGraph::new("shifts");
    g.user("u");
    for i in 0..temporal_roles {
        let name = format!("shift{i}");
        g.role(&name).enabling = Some(DailyWindow {
            start_h: (5 + (i % 8)) as u32,
            start_m: 0,
            end_h: (14 + (i % 6)) as u32,
            end_m: 0,
        });
    }
    g
}

fn bench_day_of_shifts(c: &mut Criterion) {
    let mut group = c.benchmark_group("temporal/simulated_day");
    group.sample_size(10);
    for &roles in &[10usize, 50, 200] {
        let g = shift_policy(roles);
        group.bench_with_input(BenchmarkId::new("owte", roles), &g, |b, g| {
            b.iter_batched(
                || Engine::from_policy(g, Ts::ZERO).unwrap(),
                |mut e| {
                    e.advance_to(Civil::new(2000, 1, 2, 0, 0, 0).to_ts())
                        .unwrap();
                    black_box(e.now())
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("direct", roles), &g, |b, g| {
            b.iter_batched(
                || DirectEngine::from_policy(g, Ts::ZERO).unwrap(),
                |mut e| {
                    e.advance_to(Civil::new(2000, 1, 2, 0, 0, 0).to_ts())
                        .unwrap();
                    black_box(e.now())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_delta_churn(c: &mut Criterion) {
    // N activations with Δ = 1h, then advance 2h: N expiries processed.
    let mut g = PolicyGraph::new("delta");
    g.role("r").max_activation = Some(Dur::from_hours(1));
    for i in 0..64 {
        let u = format!("u{i}");
        g.user(&u);
        g.assign(&u, "r");
    }
    let mut group = c.benchmark_group("temporal/delta_churn_64");
    group.sample_size(10);
    group.bench_function("owte", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::from_policy(&g, Ts::ZERO).unwrap();
                let r = e.role_id("r").unwrap();
                for i in 0..64 {
                    let u = e.user_id(&format!("u{i}")).unwrap();
                    e.create_session(u, &[r]).unwrap();
                }
                e
            },
            |mut e| {
                e.advance(Dur::from_hours(2)).unwrap();
                black_box(e.now())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("direct", |b| {
        b.iter_batched(
            || {
                let mut e = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
                let r = e.role_id("r").unwrap();
                for i in 0..64 {
                    let u = e.user_id(&format!("u{i}")).unwrap();
                    e.create_session(u, &[r]).unwrap();
                }
                e
            },
            |mut e| {
                e.advance(Dur::from_hours(2)).unwrap();
                black_box(e.now())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_disabling_sod_check(c: &mut Criterion) {
    // Rule 6 guard evaluation on the disable path.
    let mut g = PolicyGraph::new("dsod");
    g.role("Nurse");
    g.role("Doctor");
    g.disabling_sod.push(policy::DisablingSodSpec {
        name: "avail".into(),
        roles: ["Nurse".to_string(), "Doctor".to_string()].into(),
        window: DailyWindow {
            start_h: 0,
            start_m: 0,
            end_h: 23,
            end_m: 59,
        },
    });
    let noon = Civil::new(2000, 1, 5, 12, 0, 0).to_ts();
    let mut owte = Engine::from_policy(&g, noon).unwrap();
    let mut direct = DirectEngine::from_policy(&g, noon).unwrap();
    let nurse_o = owte.role_id("Nurse").unwrap();
    let nurse_d = direct.role_id("Nurse").unwrap();
    let mut group = c.benchmark_group("temporal/disable_with_sod_guard");
    group.bench_function("owte", |b| {
        b.iter(|| {
            owte.disable_role(nurse_o).unwrap();
            owte.enable_role(nurse_o).unwrap();
        })
    });
    group.bench_function("direct", |b| {
        b.iter(|| {
            direct.disable_role(nurse_d).unwrap();
            direct.enable_role(nurse_d).unwrap();
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_day_of_shifts,
    bench_delta_churn,
    bench_disabling_sod_check
);
criterion_main!(benches);
