//! E5 — rule-driven enforcement vs the direct baseline (§4.3.1's AAR₁…AAR₄
//! and Rule 5's check-access).
//!
//! Expected shape: the direct engine wins on raw latency by a small
//! constant factor (the OWTE engine pays event raising + rule lookup +
//! condition interpretation per request); the factor should be roughly flat
//! across role-set size since both sit on the same monitor. The paper's
//! pitch is flexibility at acceptable overhead — this series quantifies
//! "acceptable".
//!
//! Each series runs three ways: `owte` (compiled dispatch plan, the
//! default), `owte_interp` (the same engine with the plan disarmed via
//! `set_compiled(false)`), and `direct`. The owte/owte_interp spread is
//! the compilation speedup; the owte/direct spread is the remaining
//! flexibility overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owte_core::{DirectEngine, Engine};
use policy::PolicyGraph;
use rbac::{RoleId, SessionId, UserId};
use snoop::Ts;
use std::hint::black_box;
use workload::{generate_enterprise, EnterpriseSpec};

struct Fixture {
    owte: Engine,
    interp: Engine,
    direct: DirectEngine,
    user: UserId,
    session_owte: SessionId,
    session_interp: SessionId,
    session_direct: SessionId,
    role: RoleId,
}

/// A fixture whose `role` matches the requested AAR variant.
fn fixture(variant: &str) -> Fixture {
    let mut g = PolicyGraph::new("bench");
    g.user("u");
    match variant {
        "aar1_core" => {
            g.role("target");
        }
        "aar2_hierarchy" => {
            g.role("senior");
            g.role("target");
            g.inherits("senior", "target");
        }
        "aar3_dsd" => {
            g.role("target");
            g.role("other");
            g.dsd_set("x", &["target", "other"], 2);
        }
        "aar4_dsd_hierarchy" => {
            g.role("senior");
            g.role("target");
            g.role("other");
            g.inherits("senior", "target");
            g.dsd_set("x", &["target", "other"], 2);
        }
        "cardinality" => {
            g.role("target").max_active_users = Some(1000);
        }
        _ => unreachable!("unknown variant"),
    }
    let assignee = if variant.contains("hierarchy") {
        "senior"
    } else {
        "target"
    };
    g.assign("u", assignee);
    let owte = Engine::from_policy(&g, Ts::ZERO).unwrap();
    let mut interp = Engine::from_policy(&g, Ts::ZERO).unwrap();
    interp.set_compiled(false);
    let direct = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
    let mut fx = Fixture {
        user: owte.user_id("u").unwrap(),
        role: owte.role_id("target").unwrap(),
        session_owte: SessionId(0),
        session_interp: SessionId(0),
        session_direct: SessionId(0),
        owte,
        interp,
        direct,
    };
    fx.session_owte = fx.owte.create_session(fx.user, &[]).unwrap();
    fx.session_interp = fx.interp.create_session(fx.user, &[]).unwrap();
    fx.session_direct = fx.direct.create_session(fx.user, &[]).unwrap();
    fx
}

fn bench_activation_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("enforcement/activation");
    for variant in [
        "aar1_core",
        "aar2_hierarchy",
        "aar3_dsd",
        "aar4_dsd_hierarchy",
        "cardinality",
    ] {
        let mut fx = fixture(variant);
        group.bench_function(BenchmarkId::new("owte", variant), |b| {
            b.iter(|| {
                fx.owte
                    .add_active_role(fx.user, fx.session_owte, fx.role)
                    .unwrap();
                fx.owte
                    .drop_active_role(fx.user, fx.session_owte, fx.role)
                    .unwrap();
            })
        });
        group.bench_function(BenchmarkId::new("owte_interp", variant), |b| {
            b.iter(|| {
                fx.interp
                    .add_active_role(fx.user, fx.session_interp, fx.role)
                    .unwrap();
                fx.interp
                    .drop_active_role(fx.user, fx.session_interp, fx.role)
                    .unwrap();
            })
        });
        group.bench_function(BenchmarkId::new("direct", variant), |b| {
            b.iter(|| {
                fx.direct
                    .add_active_role(fx.user, fx.session_direct, fx.role)
                    .unwrap();
                fx.direct
                    .drop_active_role(fx.user, fx.session_direct, fx.role)
                    .unwrap();
            })
        });
    }
    group.finish();
}

fn bench_check_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("enforcement/check_access");
    for &roles in &[10usize, 100, 500] {
        let g = generate_enterprise(&EnterpriseSpec::flat(roles), 42);
        let mut owte = Engine::from_policy(&g, Ts::ZERO).unwrap();
        let mut interp = Engine::from_policy(&g, Ts::ZERO).unwrap();
        interp.set_compiled(false);
        let mut direct = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
        let user = owte.user_id("user0").unwrap();
        // Activate everything user0 is assigned to, in all engines.
        let assigned: Vec<RoleId> = owte
            .system()
            .assigned_roles(user)
            .unwrap()
            .into_iter()
            .collect();
        let so = owte.create_session(user, &assigned).unwrap();
        let si = interp.create_session(user, &assigned).unwrap();
        let sd = direct.create_session(user, &assigned).unwrap();
        let op = owte.system().op_by_name("op0").unwrap();
        let obj = owte.system().obj_by_name("obj0").unwrap();

        group.bench_with_input(BenchmarkId::new("owte", roles), &roles, |b, _| {
            b.iter(|| black_box(owte.check_access(so, op, obj).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("owte_interp", roles), &roles, |b, _| {
            b.iter(|| black_box(interp.check_access(si, op, obj).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("direct", roles), &roles, |b, _| {
            b.iter(|| black_box(direct.check_access(sd, op, obj).unwrap()))
        });
    }
    group.finish();
}

fn bench_hierarchy_depth(c: &mut Criterion) {
    // Authorization through a deep chain: user assigned at the top,
    // activates the bottom role.
    let mut group = c.benchmark_group("enforcement/hierarchy_depth");
    for &depth in &[1usize, 8, 32] {
        let mut g = PolicyGraph::new("chain");
        g.user("u");
        for i in 0..=depth {
            g.role(&format!("r{i}"));
            if i > 0 {
                g.inherits(&format!("r{}", i - 1), &format!("r{i}"));
            }
        }
        g.assign("u", "r0");
        let mut owte = Engine::from_policy(&g, Ts::ZERO).unwrap();
        let mut interp = Engine::from_policy(&g, Ts::ZERO).unwrap();
        interp.set_compiled(false);
        let mut direct = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
        let u = owte.user_id("u").unwrap();
        let bottom = owte.role_id(&format!("r{depth}")).unwrap();
        let so = owte.create_session(u, &[]).unwrap();
        let si = interp.create_session(u, &[]).unwrap();
        let sd = direct.create_session(u, &[]).unwrap();

        group.bench_with_input(BenchmarkId::new("owte", depth), &depth, |b, _| {
            b.iter(|| {
                owte.add_active_role(u, so, bottom).unwrap();
                owte.drop_active_role(u, so, bottom).unwrap();
            })
        });
        group.bench_with_input(BenchmarkId::new("owte_interp", depth), &depth, |b, _| {
            b.iter(|| {
                interp.add_active_role(u, si, bottom).unwrap();
                interp.drop_active_role(u, si, bottom).unwrap();
            })
        });
        group.bench_with_input(BenchmarkId::new("direct", depth), &depth, |b, _| {
            b.iter(|| {
                direct.add_active_role(u, sd, bottom).unwrap();
                direct.drop_active_role(u, sd, bottom).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_denial_path(c: &mut Criterion) {
    // Denials are the expensive OWTE path (Else actions + accessDenied
    // cascade); measure a guaranteed-denied activation.
    let mut g = PolicyGraph::new("deny");
    g.user("u");
    g.role("target");
    // u is NOT assigned to target.
    let mut owte = Engine::from_policy(&g, Ts::ZERO).unwrap();
    let mut interp = Engine::from_policy(&g, Ts::ZERO).unwrap();
    interp.set_compiled(false);
    let mut direct = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
    let u = owte.user_id("u").unwrap();
    let r = owte.role_id("target").unwrap();
    let so = owte.create_session(u, &[]).unwrap();
    let si = interp.create_session(u, &[]).unwrap();
    let sd = direct.create_session(u, &[]).unwrap();
    let mut group = c.benchmark_group("enforcement/denied_activation");
    group.bench_function("owte", |b| {
        b.iter(|| black_box(owte.add_active_role(u, so, r).is_err()))
    });
    group.bench_function("owte_interp", |b| {
        b.iter(|| black_box(interp.add_active_role(u, si, r).is_err()))
    });
    group.bench_function("direct", |b| {
        b.iter(|| black_box(direct.add_active_role(u, sd, r).is_err()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_activation_variants,
    bench_check_access,
    bench_hierarchy_depth,
    bench_denial_path
);
criterion_main!(benches);
