//! E5 complement — end-to-end mixed-workload throughput: realistic traces
//! (sessions, activations, accesses, clock advances) replayed against both
//! engines over identically-seeded enterprises.
//!
//! Expected shape: the OWTE/direct gap measured per-operation in
//! `enforcement.rs` (tens of ×) shrinks here because trace overhead
//! (session bookkeeping, monitor work) is shared; the paper's "acceptable
//! overhead" claim is about this end-to-end number. The `owte_interp`
//! series pins the interpreter (`set_compiled(false)`) so the compiled
//! plan's end-to-end contribution is visible separately (E13).

use bench::{replay_direct, replay_owte, replay_owte_interpreted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use workload::{generate_enterprise, generate_trace, EnterpriseSpec, TraceSpec};

fn bench_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_workload");
    group.sample_size(10);
    for &roles in &[20usize, 100] {
        let spec = EnterpriseSpec::sized(roles);
        let graph = generate_enterprise(&spec, 42);
        let trace = generate_trace(
            &TraceSpec {
                steps: 2_000,
                users: spec.users,
                roles: spec.roles,
                objects: spec.permissions,
                ..TraceSpec::default()
            },
            42,
        );
        // Sanity: identical outcomes before measuring anything.
        assert_eq!(
            replay_owte(&graph, &trace, spec.users),
            replay_direct(&graph, &trace, spec.users)
        );
        assert_eq!(
            replay_owte(&graph, &trace, spec.users),
            replay_owte_interpreted(&graph, &trace, spec.users)
        );
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::new("owte", roles), &roles, |b, _| {
            b.iter(|| black_box(replay_owte(&graph, &trace, spec.users)))
        });
        group.bench_with_input(BenchmarkId::new("owte_interp", roles), &roles, |b, _| {
            b.iter(|| black_box(replay_owte_interpreted(&graph, &trace, spec.users)))
        });
        group.bench_with_input(BenchmarkId::new("direct", roles), &roles, |b, _| {
            b.iter(|| black_box(replay_direct(&graph, &trace, spec.users)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
