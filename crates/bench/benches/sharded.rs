//! E15 — sharded mutation throughput: one thread per shard, users
//! partitioned by the hash ring, every step a journaled mutation.
//!
//! Expected shape: a single shard serializes every write through one
//! engine (and one WAL); N shards run N independent engines whose only
//! shared state is the coordinator's per-role counters, touched only by
//! constrained ops. Aggregate throughput therefore scales with shard
//! count — the acceptance bar is ≥3× the single-shard baseline at 8
//! shards.

use bench::sharded::{drive_partitions, e15_fixture, partition};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shard::ShardedEngine;
use snoop::Ts;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn bench_sharded(c: &mut Criterion) {
    let fx = e15_fixture(4_000, 42);
    let mut group = c.benchmark_group("sharded_mutations");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("mutations", shards),
            &shards,
            |b, &shards| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        // Fresh engines per run: session churn must not
                        // accumulate across timed intervals.
                        let front =
                            ShardedEngine::new(&fx.graph, shards, Ts::ZERO).expect("shardable");
                        let parts = partition(&front, &fx.trace, fx.users);
                        let t0 = Instant::now();
                        black_box(drive_partitions(&front, &parts, fx.users, fx.roles));
                        total += t0.elapsed();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
