//! E3 — rule regeneration on policy change (§5's day-doctor shift change).
//!
//! Expected shape: incremental regeneration cost is proportional to the
//! *change* (one role), full rebuild to the *policy* (all roles), so the
//! gap widens linearly with enterprise size — that gap is the paper's
//! "without burdening the administrator" claim in numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use policy::{instantiate, regenerate, DailyWindow};
use snoop::Ts;
use std::hint::black_box;
use workload::{generate_enterprise, EnterpriseSpec};

fn shift_change(g: &policy::PolicyGraph) -> policy::PolicyGraph {
    let mut new = g.clone();
    new.role("role0").enabling = Some(DailyWindow {
        start_h: 9,
        start_m: 0,
        end_h: 17,
        end_m: 0,
    });
    new
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("regeneration");
    group.sample_size(10);
    for &roles in &[50usize, 200, 500] {
        let base = generate_enterprise(&EnterpriseSpec::sized(roles), 42);
        let changed = shift_change(&base);

        group.bench_with_input(
            BenchmarkId::new("incremental", roles),
            &(&base, &changed),
            |b, (base, changed)| {
                b.iter_batched(
                    || instantiate(base, Ts::ZERO).unwrap(),
                    |mut inst| {
                        let report = regenerate(&mut inst, changed).unwrap();
                        assert!(!report.full_rebuild);
                        black_box(report)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_rebuild", roles),
            &changed,
            |b, changed| b.iter(|| instantiate(black_box(changed), Ts::ZERO).unwrap()),
        );
    }
    group.finish();
}

fn bench_noop_change_detection(c: &mut Criterion) {
    // Applying an identical policy should be near-free (diff finds nothing).
    let base = generate_enterprise(&EnterpriseSpec::sized(200), 42);
    c.bench_function("regeneration/noop_diff_200_roles", |b| {
        b.iter_batched(
            || instantiate(&base, Ts::ZERO).unwrap(),
            |mut inst| {
                let report = regenerate(&mut inst, &base).unwrap();
                assert_eq!(report.rules_rewritten, 0);
                black_box(report)
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_incremental_vs_full,
    bench_noop_change_detection
);
criterion_main!(benches);
