//! E4 — composite-event detection throughput per operator and consumption
//! context (§3's operator set).
//!
//! Expected shape: OR ≈ primitive cost; SEQ/AND add buffer management;
//! windowed operators (NOT/APERIODIC) add per-window scanning; contexts
//! that consume (Chronicle/Continuous) stay O(1)-ish per event while
//! Unrestricted grows with retained occurrences until the buffer cap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use snoop::{Context, Detector, Dur, EventExpr, Params, Ts};
use std::hint::black_box;

const EVENTS_PER_ITER: usize = 1_000;

/// Drive `detector` with alternating a/b occurrences, advancing 1s between
/// raises (SnoopIB sequencing is strict).
fn drive(detector: &mut Detector, n: usize) -> usize {
    let a = detector.lookup("a").expect("defined");
    let b = detector.lookup("b").expect("defined");
    let mut detections = 0;
    for i in 0..n {
        let ev = if i % 2 == 0 { a } else { b };
        detections += detector.raise(ev, Params::new()).unwrap().len();
        detector.advance(Dur::from_secs(1)).unwrap();
    }
    detections
}

fn setup(expr: &EventExpr) -> Detector {
    let mut d = Detector::new(Ts::ZERO);
    d.primitive("a");
    d.primitive("b");
    let root = d.define(expr).unwrap();
    d.watch(root);
    d
}

fn bench_operators(c: &mut Criterion) {
    let a = || EventExpr::named("a");
    let b = || EventExpr::named("b");
    let cases: Vec<(&str, EventExpr)> = vec![
        ("primitive", a()),
        ("or", EventExpr::or(a(), b())),
        ("and", EventExpr::and(a(), b())),
        ("seq", EventExpr::seq(a(), b())),
        ("not", EventExpr::not(b(), a(), a())),
        ("aperiodic", EventExpr::aperiodic(a(), b(), a())),
        ("aperiodic_star", EventExpr::aperiodic_star(a(), b(), a())),
        ("plus", EventExpr::plus(a(), Dur::from_secs(5))),
    ];
    let mut group = c.benchmark_group("event_ops/operator");
    group.throughput(Throughput::Elements(EVENTS_PER_ITER as u64));
    for (name, expr) in cases {
        group.bench_function(name, |bch| {
            bch.iter_batched(
                || setup(&expr),
                |mut d| black_box(drive(&mut d, EVENTS_PER_ITER)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_contexts(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_ops/seq_context");
    group.throughput(Throughput::Elements(EVENTS_PER_ITER as u64));
    for ctx in Context::ALL {
        let expr = EventExpr::seq(EventExpr::named("a"), EventExpr::named("b")).context(ctx);
        group.bench_with_input(BenchmarkId::from_parameter(ctx), &expr, |bch, expr| {
            bch.iter_batched(
                || setup(expr),
                |mut d| black_box(drive(&mut d, EVENTS_PER_ITER)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_fanout(c: &mut Criterion) {
    // One primitive feeding many composites (shared-event-graph shape of a
    // large generated rule pool).
    let mut group = c.benchmark_group("event_ops/fanout");
    group.throughput(Throughput::Elements(EVENTS_PER_ITER as u64));
    for &parents in &[1usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(parents),
            &parents,
            |bch, &parents| {
                bch.iter_batched(
                    || {
                        let mut d = Detector::new(Ts::ZERO);
                        d.primitive("a");
                        d.primitive("b");
                        for i in 0..parents {
                            let root = d
                                .define(&EventExpr::seq(
                                    EventExpr::named("a"),
                                    EventExpr::prim(format!("sink{i}")),
                                ))
                                .unwrap();
                            d.watch(root);
                        }
                        d
                    },
                    |mut d| black_box(drive(&mut d, EVENTS_PER_ITER)),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_timer_throughput(c: &mut Criterion) {
    // PLUS timers en masse: schedule 1000, advance past all of them.
    c.bench_function("event_ops/plus_timer_flush_1000", |bch| {
        bch.iter_batched(
            || {
                let mut d = Detector::new(Ts::ZERO);
                d.primitive("a");
                let root = d
                    .define(&EventExpr::plus(EventExpr::named("a"), Dur::from_secs(10)))
                    .unwrap();
                d.watch(root);
                let a = d.lookup("a").unwrap();
                for _ in 0..1000 {
                    d.raise(a, Params::new()).unwrap();
                    d.advance(Dur::from_micros(1)).unwrap();
                }
                d
            },
            |mut d| black_box(d.advance(Dur::from_secs(60)).unwrap().len()),
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_operators,
    bench_contexts,
    bench_fanout,
    bench_timer_throughput
);
criterion_main!(benches);
