//! E10 — multithreaded `checkAccess` scaling: the published-snapshot read
//! path vs a mutex-only baseline.
//!
//! Expected shape: the mutex baseline is flat-to-degrading with thread
//! count (every decision serializes through the engine lock; adding
//! threads adds contention, not throughput). The snapshot path answers
//! grants from an immutable `AuthSnapshot` shared by `Arc`, so aggregate
//! throughput scales with cores — the acceptance bar is ≥4× the
//! single-mutex baseline at 8 threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owte_core::{Engine, SharedEngine};
use policy::PolicyGraph;
use rbac::{ObjId, OpId, SessionId};
use snoop::Ts;
use std::hint::black_box;
use std::time::Instant;

fn fixture() -> (SharedEngine, SessionId, OpId, ObjId) {
    let mut g = PolicyGraph::enterprise_xyz();
    g.user("alice");
    g.assign("alice", "PM");
    let mut e = Engine::from_policy(&g, Ts::ZERO).unwrap();
    // The mutex baseline appends an Allowed audit entry per locked grant;
    // cap retention so the bench measures locking, not allocation.
    e.set_log_cap(Some(4096));
    let engine = SharedEngine::new(e);
    let alice = engine.user_id("alice").unwrap();
    let pm = engine.role_id("PM").unwrap();
    let s = engine.create_session(alice, &[pm]).unwrap();
    let (op, obj) = engine.with(|e| {
        (
            e.system().op_by_name("create").unwrap(),
            e.system().obj_by_name("purchase_order").unwrap(),
        )
    });
    (engine, s, op, obj)
}

/// Run `iters` granted checks spread over `threads` threads, timed as one
/// wall-clock interval (aggregate throughput, criterion `iter_custom`).
fn run_threads(
    threads: u64,
    iters: u64,
    check: impl Fn(&SharedEngine, SessionId, OpId, ObjId) -> bool + Copy + Send,
    fx: &(SharedEngine, SessionId, OpId, ObjId),
) -> std::time::Duration {
    let (engine, s, op, obj) = fx;
    let per_thread = iters.div_ceil(threads);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let engine = engine.clone();
            scope.spawn(move || {
                for _ in 0..per_thread {
                    black_box(check(&engine, *s, *op, *obj));
                }
            });
        }
    });
    start.elapsed()
}

fn bench_scaling(c: &mut Criterion) {
    let fx = fixture();
    let mut group = c.benchmark_group("check_access_mt");
    for &threads in &[1u64, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("snapshot", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    run_threads(
                        threads,
                        iters,
                        |e, s, op, obj| e.check_access(s, op, obj).unwrap(),
                        &fx,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutex", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    run_threads(
                        threads,
                        iters,
                        |e, s, op, obj| e.with(|eng| eng.check_access(s, op, obj).unwrap()),
                        &fx,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
