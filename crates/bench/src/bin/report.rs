//! Prints the evaluation tables recorded in EXPERIMENTS.md — rule-pool
//! composition per enterprise size (E2), regeneration scope (E3), the
//! XYZ / Figure-1 pool breakdown (E1), the bounded model-check sweep
//! (E11), the independence-certificate fast path (E12), and the
//! compiled-dispatch gap per-op (E5), end-to-end (E13), replication
//! failover/shipping cost (E14), and sharded mutation scaling (E15) —
//! and emits each as a machine-readable
//! `BENCH_<id>.json` so CI can track the perf trajectory across PRs.
//!
//! Run with: `cargo run -p bench --bin report --release`
//! (`BENCH_JSON_DIR=path` overrides the default `target/bench-report`.)

use bench::{replay_direct, replay_owte, replay_owte_interpreted};
use owte_core::{DirectEngine, DurableConfig, Engine};
use policy::{instantiate, regenerate, DailyWindow, PolicyGraph, VerifyGate};
use rbac::RoleId;
use sim::{
    explore, strip_sod, tiny_enterprise, tiny_ops, Budget, Invariants, Outcome, Strategy, World,
};
use snoop::Ts;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use workload::{generate_enterprise, generate_trace, EnterpriseSpec, TraceSpec};

/// Where the `BENCH_*.json` files land.
fn json_dir() -> PathBuf {
    std::env::var_os("BENCH_JSON_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/bench-report"))
}

/// Write one experiment's JSON body (already a valid JSON value).
fn emit_json(id: &str, body: &str) {
    let dir = json_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("BENCH_{id}.json"));
    match std::fs::write(&path, body) {
        Ok(()) => println!("  -> {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn main() {
    println!("== E1: enterprise XYZ (Figure 1) ==");
    let xyz = PolicyGraph::enterprise_xyz();
    let inst = instantiate(&xyz, Ts::ZERO).unwrap();
    let s = inst.pool.stats();
    println!(
        "roles: {}   rules: {}   events: {}",
        xyz.roles.len(),
        s.total,
        inst.stats.event_nodes
    );
    println!(
        "classes: administrative={} activity-control={} active-security={}",
        s.administrative, s.activity_control, s.active_security
    );
    println!(
        "granularity: specialized={} localized={} globalized={}",
        s.specialized, s.localized, s.globalized
    );
    println!("activation-rule variants per role flags:");
    for role in ["PM", "PC", "AM", "AC", "Clerk"] {
        let rule = (1..=4)
            .find_map(|v| inst.pool.get_by_name(&format!("AAR{v}_{role}")))
            .expect("one variant per role");
        println!("  {role:<6} -> {}", rule.name.split('_').next().unwrap());
    }
    emit_json(
        "E1",
        &format!(
            "{{\"roles\":{},\"rules\":{},\"events\":{},\"administrative\":{},\
             \"activity_control\":{},\"active_security\":{}}}\n",
            xyz.roles.len(),
            s.total,
            inst.stats.event_nodes,
            s.administrative,
            s.activity_control,
            s.active_security
        ),
    );

    println!("\n== E2: roles -> rules (\"hundreds of roles, thousands of rules\") ==");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "roles", "rules", "checks", "events", "gen time", "rules/role"
    );
    let mut e2_rows = Vec::new();
    for &roles in &[10usize, 50, 100, 200, 500, 1000] {
        let g = generate_enterprise(&EnterpriseSpec::sized(roles), 42);
        let t0 = Instant::now();
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        let dt = t0.elapsed();
        let s = inst.pool.stats();
        println!(
            "{roles:>8} {:>10} {:>10} {:>10} {:>12?} {:>14.2}",
            s.total,
            s.checks,
            inst.stats.event_nodes,
            dt,
            s.total as f64 / roles as f64
        );
        e2_rows.push(format!(
            "{{\"roles\":{roles},\"rules\":{},\"checks\":{},\"events\":{},\"gen_ms\":{:.3}}}",
            s.total,
            s.checks,
            inst.stats.event_nodes,
            dt.as_secs_f64() * 1e3
        ));
    }
    emit_json("E2", &format!("[{}]\n", e2_rows.join(",")));

    println!("\n== E3: regeneration scope on a shift change (one role) ==");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "roles", "total rules", "rewritten", "incr time", "rebuild time"
    );
    let mut e3_rows = Vec::new();
    for &roles in &[50usize, 200, 500, 1000] {
        let base = generate_enterprise(&EnterpriseSpec::sized(roles), 42);
        let mut changed = base.clone();
        changed.role("role0").enabling = Some(DailyWindow {
            start_h: 9,
            start_m: 0,
            end_h: 17,
            end_m: 0,
        });
        let mut inst = instantiate(&base, Ts::ZERO).unwrap();
        let t0 = Instant::now();
        let report = regenerate(&mut inst, &changed).unwrap();
        let incr = t0.elapsed();
        let t0 = Instant::now();
        let fresh = instantiate(&changed, Ts::ZERO).unwrap();
        let full = t0.elapsed();
        println!(
            "{roles:>8} {:>12} {:>12} {:>14?} {:>14?}",
            fresh.pool.len(),
            report.rules_rewritten,
            incr,
            full
        );
        e3_rows.push(format!(
            "{{\"roles\":{roles},\"total_rules\":{},\"rewritten\":{},\
             \"incr_ms\":{:.3},\"rebuild_ms\":{:.3}}}",
            fresh.pool.len(),
            report.rules_rewritten,
            incr.as_secs_f64() * 1e3,
            full.as_secs_f64() * 1e3
        ));
    }
    emit_json("E3", &format!("[{}]\n", e3_rows.join(",")));

    println!("\n== E11: bounded model check (tiny enterprise, exhaustive) ==");
    let graph = tiny_enterprise();
    let invariants = Invariants::from_reference(&graph);
    let config = DurableConfig {
        snapshot_every: Some(4),
        ..DurableConfig::default()
    };
    let budget = Budget {
        max_steps: 10,
        max_crashes: 1,
        max_states: 2_000_000,
        ..Budget::default()
    };
    let mut e11 = String::from("{");
    for (label, reduction) in [("reduced", true), ("raw", false)] {
        // The raw walk validates the reduction on a smaller space: two
        // client ops and five steps are already thousands of schedules.
        let (ops, steps) = if reduction {
            (tiny_ops(), budget.max_steps)
        } else {
            (tiny_ops()[..2].to_vec(), 5)
        };
        let world = World::new(&graph, ops, config.clone()).expect("tiny policy instantiates");
        let t0 = Instant::now();
        let outcome = explore(
            &world,
            &invariants,
            Strategy::Exhaustive { reduction },
            Budget {
                max_steps: steps,
                ..budget.clone()
            },
        );
        let dt = t0.elapsed();
        let Outcome::Clean(stats) = outcome else {
            panic!("honest tiny enterprise must sweep clean");
        };
        println!(
            "{label:>8}: {} states explored, {} fingerprint-pruned, {} stutter-pruned, \
             complete={} ({dt:?}, {} steps, {} ops)",
            stats.explored,
            stats.pruned_fingerprint,
            stats.pruned_stutter,
            stats.complete,
            steps,
            if reduction { 7 } else { 2 },
        );
        let _ = write!(
            e11,
            "\"{label}\":{{\"explored\":{},\"pruned_fingerprint\":{},\
             \"pruned_stutter\":{},\"complete\":{},\"ms\":{:.3}}},",
            stats.explored,
            stats.pruned_fingerprint,
            stats.pruned_stutter,
            stats.complete,
            dt.as_secs_f64() * 1e3
        );
    }
    // Seeded-bug detection: both doctored stacks must fail, minimally.
    for (label, doctored_graph, dconfig, crashes) in [
        (
            "seeded_ssd",
            strip_sod(tiny_enterprise()),
            DurableConfig::default(),
            0usize,
        ),
        (
            "seeded_durability",
            tiny_enterprise(),
            DurableConfig {
                sync_on_append: false,
                snapshot_every: None,
                ..DurableConfig::default()
            },
            1,
        ),
    ] {
        let world =
            World::new(&doctored_graph, tiny_ops(), dconfig).expect("doctored policy instantiates");
        let outcome = explore(
            &world,
            &invariants,
            Strategy::Exhaustive { reduction: true },
            Budget {
                max_crashes: crashes,
                ..budget.clone()
            },
        );
        let Outcome::Violation {
            violation,
            schedule,
            stats,
        } = outcome
        else {
            panic!("{label}: seeded bug went unnoticed");
        };
        println!(
            "{label:>18}: caught after {} states, minimal schedule {} steps — {violation}",
            stats.explored,
            schedule.0.len()
        );
        let _ = write!(
            e11,
            "\"{label}\":{{\"explored\":{},\"minimal_steps\":{}}},",
            stats.explored,
            schedule.0.len()
        );
    }
    e11.pop(); // trailing comma
    e11.push_str("}\n");
    emit_json("E11", &e11);

    println!("\n== E12: independence certificates — assume_independent dispatch fast path ==");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>10}",
        "roles", "indep events", "certified", "uncertified", "speedup"
    );
    let mut e12_rows = Vec::new();
    for &roles in &[50usize, 200] {
        let g = generate_enterprise(&EnterpriseSpec::sized(roles), 7);
        // Same pool, same workload; the only difference is whether the
        // verification gate armed the per-event independence certificates
        // (and the acyclicity proof they ride with). The compiled plan is
        // disarmed on the certified side so this series keeps measuring
        // the certificate effect alone — compilation has its own series
        // (E5/E13) below.
        let mut certified = Engine::from_policy(&g, Ts::ZERO).unwrap();
        certified.set_compiled(false);
        let mut uncertified = Engine::from_policy_gated(&g, Ts::ZERO, VerifyGate::Off).unwrap();
        let independent = certified.independent_event_count();
        let bench = |e: &mut Engine| {
            let mut sessions = Vec::new();
            for u in 0..10 {
                let uid = e.user_id(&workload::enterprise::user_name(u)).unwrap();
                let Ok(s) = e.create_session(uid, &[]) else {
                    continue;
                };
                for r in 0..roles.min(8) {
                    let rid = e.role_id(&workload::enterprise::role_name(r)).unwrap();
                    let _ = e.add_active_role(uid, s, rid);
                }
                sessions.push(s);
            }
            let op = e.system().op_by_name("op0").unwrap();
            let obj = e.system().obj_by_name("obj0").unwrap();
            let iters = 20_000usize;
            let t0 = Instant::now();
            for i in 0..iters {
                let _ = e.check_access(sessions[i % sessions.len()], op, obj);
            }
            t0.elapsed()
        };
        let on = bench(&mut certified);
        let off = bench(&mut uncertified);
        assert_eq!(
            (certified.log().len(), certified.log().denial_count()),
            (uncertified.log().len(), uncertified.log().denial_count()),
            "the fast path must not change decisions"
        );
        let speedup = off.as_secs_f64() / on.as_secs_f64();
        println!("{roles:>8} {independent:>14} {on:>14?} {off:>14?} {speedup:>9.2}x");
        e12_rows.push(format!(
            "{{\"roles\":{roles},\"independent_events\":{independent},\
             \"certified_ms\":{:.3},\"uncertified_ms\":{:.3},\"speedup\":{speedup:.3}}}",
            on.as_secs_f64() * 1e3,
            off.as_secs_f64() * 1e3
        ));
    }
    emit_json("E12", &format!("[{}]\n", e12_rows.join(",")));

    println!("\n== E5: per-op interpreter gap — interpreted vs compiled vs direct ==");
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "roles", "op", "direct", "interp", "compiled", "interp/d", "compiled/d"
    );
    let mut e5_rows = Vec::new();
    for &roles in &[10usize, 100] {
        let g = generate_enterprise(&EnterpriseSpec::flat(roles), 42);
        let mut compiled = Engine::from_policy(&g, Ts::ZERO).unwrap();
        assert!(
            compiled.compiled_active(),
            "E5 needs the compiled plan armed"
        );
        let mut interp = Engine::from_policy(&g, Ts::ZERO).unwrap();
        interp.set_compiled(false);
        let mut direct = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
        let user = compiled
            .system()
            .all_users()
            .collect::<Vec<_>>()
            .into_iter()
            .find(|&u| {
                compiled
                    .system()
                    .assigned_roles(u)
                    .is_ok_and(|r| !r.is_empty())
            })
            .expect("some user holds a role");
        let assigned: Vec<RoleId> = compiled
            .system()
            .assigned_roles(user)
            .unwrap()
            .into_iter()
            .collect();
        let role = *assigned.first().expect("assignment set is non-empty");
        let sc = compiled.create_session(user, &assigned).unwrap();
        let si = interp.create_session(user, &assigned).unwrap();
        let sd = direct.create_session(user, &assigned).unwrap();
        let op = compiled.system().op_by_name("op0").unwrap();
        let obj = compiled.system().obj_by_name("obj0").unwrap();

        // check_access: the paper's Rule-5 hot path.
        let iters = 20_000usize;
        let check = |t: &mut dyn FnMut() -> bool| {
            let t0 = Instant::now();
            let mut hits = 0usize;
            for _ in 0..iters {
                hits += usize::from(t());
            }
            assert!(hits == 0 || hits == iters, "decision flapped mid-loop");
            t0.elapsed() / iters as u32
        };
        let d = check(&mut || direct.check_access(sd, op, obj).unwrap());
        let i = check(&mut || interp.check_access(si, op, obj).unwrap());
        let c = check(&mut || compiled.check_access(sc, op, obj).unwrap());

        // add/drop activation round trip (AAR + deactivation rules).
        let toggle = |t: &mut dyn FnMut()| {
            let t0 = Instant::now();
            for _ in 0..iters {
                t();
            }
            t0.elapsed() / (2 * iters as u32)
        };
        let dt = toggle(&mut || {
            direct.drop_active_role(user, sd, role).unwrap();
            direct.add_active_role(user, sd, role).unwrap();
        });
        let it = toggle(&mut || {
            interp.drop_active_role(user, si, role).unwrap();
            interp.add_active_role(user, si, role).unwrap();
        });
        let ct = toggle(&mut || {
            compiled.drop_active_role(user, sc, role).unwrap();
            compiled.add_active_role(user, sc, role).unwrap();
        });

        for (op_name, d, i, c) in [("check_access", d, i, c), ("activation", dt, it, ct)] {
            let fi = i.as_secs_f64() / d.as_secs_f64();
            let fc = c.as_secs_f64() / d.as_secs_f64();
            println!("{roles:>8} {op_name:>14} {d:>12?} {i:>12?} {c:>12?} {fi:>9.2}x {fc:>9.2}x");
            e5_rows.push(format!(
                "{{\"roles\":{roles},\"op\":\"{op_name}\",\"direct_ns\":{},\
                 \"interpreted_ns\":{},\"compiled_ns\":{},\
                 \"interpreted_factor\":{fi:.3},\"compiled_factor\":{fc:.3}}}",
                d.as_nanos(),
                i.as_nanos(),
                c.as_nanos()
            ));
        }
    }
    emit_json("E5", &format!("[{}]\n", e5_rows.join(",")));

    println!("\n== E13: mixed-workload throughput — compiled plan end to end ==");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "roles", "steps", "direct", "interp", "compiled", "interp/d", "compiled/d"
    );
    let mut e13_rows = Vec::new();
    for &roles in &[20usize, 100] {
        let spec = EnterpriseSpec::sized(roles);
        let graph = generate_enterprise(&spec, 42);
        let steps = 2_000usize;
        let trace = generate_trace(
            &TraceSpec {
                steps,
                users: spec.users,
                roles: spec.roles,
                objects: spec.permissions,
                ..TraceSpec::default()
            },
            42,
        );
        // Identical outcomes before timing anything.
        let stats = replay_owte(&graph, &trace, spec.users);
        assert_eq!(stats, replay_owte_interpreted(&graph, &trace, spec.users));
        assert_eq!(stats, replay_direct(&graph, &trace, spec.users));
        // Best of three full replays per engine (engine build included,
        // matching the criterion series in `mixed_workload.rs`).
        let best = |f: &dyn Fn() -> bench::ReplayStats| {
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    let s = f();
                    assert_eq!(s, stats);
                    t0.elapsed()
                })
                .min()
                .unwrap()
        };
        let d = best(&|| replay_direct(&graph, &trace, spec.users));
        let i = best(&|| replay_owte_interpreted(&graph, &trace, spec.users));
        let c = best(&|| replay_owte(&graph, &trace, spec.users));
        let fi = i.as_secs_f64() / d.as_secs_f64();
        let fc = c.as_secs_f64() / d.as_secs_f64();
        println!("{roles:>8} {steps:>8} {d:>12?} {i:>12?} {c:>12?} {fi:>9.2}x {fc:>9.2}x");
        e13_rows.push(format!(
            "{{\"roles\":{roles},\"steps\":{steps},\"direct_ms\":{:.3},\
             \"interpreted_ms\":{:.3},\"compiled_ms\":{:.3},\
             \"interpreted_factor\":{fi:.3},\"compiled_factor\":{fc:.3}}}",
            d.as_secs_f64() * 1e3,
            i.as_secs_f64() * 1e3,
            c.as_secs_f64() * 1e3
        ));
    }
    emit_json("E13", &format!("[{}]\n", e13_rows.join(",")));

    println!("\n== E14: replication — shipped bytes and failover recovery vs trace length ==");
    println!(
        "{:>8} {:>8} {:>12} {:>8} {:>14} {:>14}",
        "steps", "ops", "bytes", "sends", "bytes/op", "failover"
    );
    let mut e14_rows = Vec::new();
    for &steps in &[50usize, 200, 800] {
        let spec = EnterpriseSpec::sized(20);
        let graph = generate_enterprise(&spec, 42);
        let trace = generate_trace(
            &TraceSpec {
                steps,
                users: spec.users,
                roles: spec.roles,
                objects: spec.permissions,
                ..TraceSpec::default()
            },
            42,
        );
        let ops = sim::op::from_trace(&trace);
        let config = repl::ReplConfig {
            jitter: false,
            ..repl::ReplConfig::default()
        };
        let mut c = repl::Cluster::new(&graph, 3, config).expect("cluster boots");
        let mut sessions: Vec<Option<rbac::SessionId>> = vec![None; spec.users];
        for op in &ops {
            c.with_leader(|d| {
                sim::apply_client_op(d, &mut sessions, op);
            })
            .expect("leader up");
        }
        c.settle();
        let shipped = c.transport().stats();
        let committed = c.commit();
        // Failover: kill the leader, promote a follower, re-ship until
        // the survivors converge. Best of three via cloned clusters —
        // the cluster is a value, so the scenario replays exactly.
        let failover = (0..3)
            .map(|_| {
                let mut f = c.clone();
                let t0 = Instant::now();
                f.crash(0).expect("leader dies");
                f.promote(1).expect("follower promotes");
                f.settle();
                let dt = t0.elapsed();
                assert_eq!(
                    f.node_engine(1).map(|d| d.op_count()),
                    f.node_engine(2).map(|d| d.op_count()),
                    "survivors converge after failover"
                );
                dt
            })
            .min()
            .unwrap();
        let per_op = shipped.bytes_sent as f64 / committed.max(1) as f64;
        println!(
            "{steps:>8} {committed:>8} {:>12} {:>8} {per_op:>13.1}B {failover:>14?}",
            shipped.bytes_sent, shipped.sends
        );
        e14_rows.push(format!(
            "{{\"steps\":{steps},\"ops_committed\":{committed},\
             \"shipped_bytes\":{},\"sends\":{},\"bytes_per_op\":{per_op:.1},\
             \"failover_recovery_ms\":{:.3}}}",
            shipped.bytes_sent,
            shipped.sends,
            failover.as_secs_f64() * 1e3
        ));
    }
    emit_json("E14", &format!("[{}]\n", e14_rows.join(",")));

    println!("\n== E15: sharding — mutation throughput vs shard count ==");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>10}",
        "shards", "ops", "wall", "kops/s", "speedup"
    );
    let fx = bench::sharded::e15_fixture(20_000, 42);
    let mut e15_rows = Vec::new();
    let mut base_tput = None;
    let mut baseline_ops = None;
    for &shards in &[1usize, 2, 4, 8] {
        // Best of three, fresh engines per run (session churn must not
        // accumulate across runs).
        let (ops, wall) = (0..3)
            .map(|_| {
                let front = shard::ShardedEngine::new(&fx.graph, shards, Ts::ZERO)
                    .expect("generated policy shards");
                let parts = bench::sharded::partition(&front, &fx.trace, fx.users);
                let t0 = Instant::now();
                let ops = bench::sharded::drive_partitions(&front, &parts, fx.users, fx.roles);
                (ops, t0.elapsed())
            })
            .min_by_key(|&(_, d)| d)
            .unwrap();
        // The skip rule depends only on each user's own step sequence,
        // so every shard count must drive the identical workload.
        let baseline = *baseline_ops.get_or_insert(ops);
        assert_eq!(ops, baseline, "shard counts drove different workloads");
        let tput = ops as f64 / wall.as_secs_f64();
        let base = *base_tput.get_or_insert(tput);
        let speedup = tput / base;
        println!(
            "{shards:>8} {ops:>8} {wall:>12?} {:>12.1} {speedup:>9.2}x",
            tput / 1e3
        );
        e15_rows.push(format!(
            "{{\"shards\":{shards},\"ops\":{ops},\"wall_ms\":{:.3},\
             \"ops_per_sec\":{tput:.0},\"speedup\":{speedup:.3}}}",
            wall.as_secs_f64() * 1e3
        ));
    }
    emit_json("E15", &format!("[{}]\n", e15_rows.join(",")));
}
