//! Prints the evaluation tables recorded in EXPERIMENTS.md: rule-pool
//! composition per enterprise size (E2), regeneration scope (E3), and the
//! XYZ / Figure-1 pool breakdown (E1).
//!
//! Run with: `cargo run -p bench --bin report --release`

use policy::{instantiate, regenerate, DailyWindow, PolicyGraph};
use snoop::Ts;
use std::time::Instant;
use workload::{generate_enterprise, EnterpriseSpec};

fn main() {
    println!("== E1: enterprise XYZ (Figure 1) ==");
    let xyz = PolicyGraph::enterprise_xyz();
    let inst = instantiate(&xyz, Ts::ZERO).unwrap();
    let s = inst.pool.stats();
    println!(
        "roles: {}   rules: {}   events: {}",
        xyz.roles.len(),
        s.total,
        inst.stats.event_nodes
    );
    println!(
        "classes: administrative={} activity-control={} active-security={}",
        s.administrative, s.activity_control, s.active_security
    );
    println!(
        "granularity: specialized={} localized={} globalized={}",
        s.specialized, s.localized, s.globalized
    );
    println!("activation-rule variants per role flags:");
    for role in ["PM", "PC", "AM", "AC", "Clerk"] {
        let rule = (1..=4)
            .find_map(|v| inst.pool.get_by_name(&format!("AAR{v}_{role}")))
            .expect("one variant per role");
        println!("  {role:<6} -> {}", rule.name.split('_').next().unwrap());
    }

    println!("\n== E2: roles -> rules (\"hundreds of roles, thousands of rules\") ==");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "roles", "rules", "checks", "events", "gen time", "rules/role"
    );
    for &roles in &[10usize, 50, 100, 200, 500, 1000] {
        let g = generate_enterprise(&EnterpriseSpec::sized(roles), 42);
        let t0 = Instant::now();
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        let dt = t0.elapsed();
        let s = inst.pool.stats();
        println!(
            "{roles:>8} {:>10} {:>10} {:>10} {:>12?} {:>14.2}",
            s.total,
            s.checks,
            inst.stats.event_nodes,
            dt,
            s.total as f64 / roles as f64
        );
    }

    println!("\n== E3: regeneration scope on a shift change (one role) ==");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "roles", "total rules", "rewritten", "incr time", "rebuild time"
    );
    for &roles in &[50usize, 200, 500, 1000] {
        let base = generate_enterprise(&EnterpriseSpec::sized(roles), 42);
        let mut changed = base.clone();
        changed.role("role0").enabling = Some(DailyWindow {
            start_h: 9,
            start_m: 0,
            end_h: 17,
            end_m: 0,
        });
        let mut inst = instantiate(&base, Ts::ZERO).unwrap();
        let t0 = Instant::now();
        let report = regenerate(&mut inst, &changed).unwrap();
        let incr = t0.elapsed();
        let t0 = Instant::now();
        let fresh = instantiate(&changed, Ts::ZERO).unwrap();
        let full = t0.elapsed();
        println!(
            "{roles:>8} {:>12} {:>12} {:>14?} {:>14?}",
            fresh.pool.len(),
            report.rules_rewritten,
            incr,
            full
        );
    }
}
