//! E15 harness — mutation throughput against the sharded engine front.
//!
//! The workload is a standard generated trace with the *global* steps
//! (time advances, context flips) weighted out, so every step belongs to
//! exactly one user and therefore to exactly one shard. [`partition`]
//! splits the trace by home shard, preserving each user's op order, and
//! [`drive_partitions`] replays the partitions on one thread per shard —
//! the deployment shape the shard layer exists for. The caller times the
//! drive; ops-driven is deterministic for a given trace, so identical
//! work is compared across shard counts.

use policy::PolicyGraph;
use shard::{ShardSession, ShardedEngine};
use workload::{enterprise, generate_enterprise, generate_trace, EnterpriseSpec, Step, TraceSpec};

/// The generated workload the sharding experiment replays: one
/// enterprise and one mutation-only trace over its users.
pub struct ShardFixture {
    /// The enterprise policy (shardable by construction: generated
    /// policies carry no opaque or cross-user-write rules).
    pub graph: PolicyGraph,
    /// User count (trace user indices are `0..users`).
    pub users: usize,
    /// Role count (trace role indices are `0..roles`).
    pub roles: usize,
    /// The trace; contains no `Advance` or `SetContext` steps.
    pub trace: Vec<Step>,
}

/// Build the E15 fixture: a mid-size enterprise with enough users to
/// spread over eight shards, a few capped roles so the coordinated
/// reserve/commit path stays hot, and a session-churn trace with access
/// checks and global steps weighted to zero — every step is a mutation.
pub fn e15_fixture(steps: usize, seed: u64) -> ShardFixture {
    let spec = EnterpriseSpec {
        roles: 32,
        users: 256,
        permissions: 64,
        capped_fraction: 0.125,
        ..EnterpriseSpec::sized(32)
    };
    let graph = generate_enterprise(&spec, seed);
    let trace = generate_trace(
        &TraceSpec {
            steps,
            users: spec.users,
            roles: spec.roles,
            objects: spec.permissions,
            w_session: 25,
            w_activate: 40,
            w_drop: 20,
            w_access: 0,
            w_advance: 0,
            w_context: 0,
            ..TraceSpec::default()
        },
        seed,
    );
    ShardFixture {
        graph,
        users: spec.users,
        roles: spec.roles,
        trace,
    }
}

/// Split `trace` into one sub-trace per shard by each step's user's home
/// shard, preserving per-user order. Panics on global steps (`Advance`,
/// `SetContext`) — the E15 spec generates none, and they have no single
/// home shard.
pub fn partition(front: &ShardedEngine, trace: &[Step], users: usize) -> Vec<Vec<Step>> {
    let home: Vec<usize> = (0..users)
        .map(|u| {
            let id = front
                .user_id(&enterprise::user_name(u))
                .expect("trace user exists in the enterprise");
            front.shard_of(id)
        })
        .collect();
    let mut parts: Vec<Vec<Step>> = vec![Vec::new(); front.shard_count()];
    for step in trace {
        let user = match step {
            Step::CreateSession { user }
            | Step::DeleteSession { user }
            | Step::AddActiveRole { user, .. }
            | Step::DropActiveRole { user, .. }
            | Step::CheckAccess { user, .. } => *user,
            Step::Advance { .. } | Step::SetContext { .. } => {
                panic!("global step in a shard-partitioned trace: {step:?}")
            }
        };
        parts[home[user]].push(step.clone());
    }
    parts
}

/// Replay `parts` against `front`, one thread per shard, and return the
/// number of steps actually driven (a step with no live session is
/// skipped, exactly as in the single-engine replay loops — the count
/// depends only on the trace, never on the shard count). The caller
/// wraps this in its own timer.
pub fn drive_partitions(
    front: &ShardedEngine,
    parts: &[Vec<Step>],
    users: usize,
    roles: usize,
) -> u64 {
    let user_ids: Vec<rbac::UserId> = (0..users)
        .map(|u| front.user_id(&enterprise::user_name(u)).expect("bound"))
        .collect();
    let role_ids: Vec<rbac::RoleId> = (0..roles)
        .map(|r| front.role_id(&enterprise::role_name(r)).expect("bound"))
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .map(|part| {
                let (user_ids, role_ids) = (&user_ids, &role_ids);
                scope.spawn(move || {
                    let mut sessions: Vec<Option<ShardSession>> = vec![None; users];
                    let mut driven = 0u64;
                    for step in part {
                        match step {
                            Step::CreateSession { user } => {
                                if let Ok(s) = front.create_session(user_ids[*user], &[]) {
                                    sessions[*user] = Some(s);
                                }
                                driven += 1;
                            }
                            Step::DeleteSession { user } => {
                                if let Some(s) = sessions[*user].take() {
                                    let _ = front.delete_session(user_ids[*user], s);
                                    driven += 1;
                                }
                            }
                            Step::AddActiveRole { user, role } => {
                                if let Some(s) = sessions[*user] {
                                    let _ =
                                        front.add_active_role(user_ids[*user], s, role_ids[*role]);
                                    driven += 1;
                                }
                            }
                            Step::DropActiveRole { user, role } => {
                                if let Some(s) = sessions[*user] {
                                    let _ =
                                        front.drop_active_role(user_ids[*user], s, role_ids[*role]);
                                    driven += 1;
                                }
                            }
                            Step::CheckAccess { user, op, obj } => {
                                if let Some(s) = sessions[*user] {
                                    if let Some((op, obj)) =
                                        front.perm_ids(&format!("op{op}"), &format!("obj{obj}"))
                                    {
                                        let _ = front.check_access(s, op, obj);
                                        driven += 1;
                                    }
                                }
                            }
                            Step::Advance { .. } | Step::SetContext { .. } => {
                                unreachable!("partition() rejects global steps")
                            }
                        }
                    }
                    driven
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread"))
            .sum()
    })
}
