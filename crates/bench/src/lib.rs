//! Shared harness code for the benchmark suite: trace replay against both
//! engines, so throughput comparisons drive identical workloads.

#![warn(missing_docs)]

pub mod sharded;

use owte_core::{DirectEngine, Engine};
use policy::PolicyGraph;
use rbac::SessionId;
use snoop::{Dur, Ts};
use workload::{enterprise, Step};

/// Replay outcome counters (sanity-checked by benches so the optimizer
/// cannot elide work and so both engines demonstrably did the same thing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Operations that were granted.
    pub granted: u64,
    /// Operations that were denied.
    pub denied: u64,
    /// Access checks answered true.
    pub allowed: u64,
    /// Steps skipped because the user had no session.
    pub skipped: u64,
}

/// Replay a trace against the rule-driven engine with its default
/// configuration (compiled dispatch plan armed when the pool is licensed).
pub fn replay_owte(graph: &PolicyGraph, trace: &[Step], users: usize) -> ReplayStats {
    let mut e = Engine::from_policy(graph, Ts::ZERO).expect("bench policy instantiates");
    replay_owte_engine(&mut e, trace, users)
}

/// Replay a trace against the rule-driven engine with the compiled plan
/// disarmed — the interpreter baseline the compilation speedup (E5/E13)
/// is measured against.
pub fn replay_owte_interpreted(graph: &PolicyGraph, trace: &[Step], users: usize) -> ReplayStats {
    let mut e = Engine::from_policy(graph, Ts::ZERO).expect("bench policy instantiates");
    e.set_compiled(false);
    replay_owte_engine(&mut e, trace, users)
}

/// Replay a trace against an already-configured rule-driven engine (the
/// shared loop behind [`replay_owte`] and [`replay_owte_interpreted`]).
pub fn replay_owte_engine(e: &mut Engine, trace: &[Step], users: usize) -> ReplayStats {
    let mut sessions: Vec<Option<SessionId>> = vec![None; users];
    let mut stats = ReplayStats::default();
    for step in trace {
        match step {
            Step::CreateSession { user } => {
                let u = e.user_id(&enterprise::user_name(*user)).expect("bound");
                match e.create_session(u, &[]) {
                    Ok(s) => {
                        sessions[*user] = Some(s);
                        stats.granted += 1;
                    }
                    Err(_) => stats.denied += 1,
                }
            }
            Step::DeleteSession { user } => match sessions[*user].take() {
                Some(s) => {
                    let u = e.user_id(&enterprise::user_name(*user)).expect("bound");
                    match e.delete_session(u, s) {
                        Ok(()) => stats.granted += 1,
                        Err(_) => stats.denied += 1,
                    }
                }
                None => stats.skipped += 1,
            },
            Step::AddActiveRole { user, role } => match sessions[*user] {
                Some(s) => {
                    let u = e.user_id(&enterprise::user_name(*user)).expect("bound");
                    let r = e.role_id(&enterprise::role_name(*role)).expect("bound");
                    match e.add_active_role(u, s, r) {
                        Ok(()) => stats.granted += 1,
                        Err(_) => stats.denied += 1,
                    }
                }
                None => stats.skipped += 1,
            },
            Step::DropActiveRole { user, role } => match sessions[*user] {
                Some(s) => {
                    let u = e.user_id(&enterprise::user_name(*user)).expect("bound");
                    let r = e.role_id(&enterprise::role_name(*role)).expect("bound");
                    match e.drop_active_role(u, s, r) {
                        Ok(()) => stats.granted += 1,
                        Err(_) => stats.denied += 1,
                    }
                }
                None => stats.skipped += 1,
            },
            Step::CheckAccess { user, op, obj } => match sessions[*user] {
                Some(s) => {
                    let (Ok(op), Ok(obj)) = (
                        e.system().op_by_name(&format!("op{op}")),
                        e.system().obj_by_name(&format!("obj{obj}")),
                    ) else {
                        stats.skipped += 1;
                        continue;
                    };
                    if e.check_access(s, op, obj).expect("check runs") {
                        stats.allowed += 1;
                    } else {
                        stats.denied += 1;
                    }
                }
                None => stats.skipped += 1,
            },
            Step::Advance { secs } => {
                e.advance(Dur::from_secs(*secs)).expect("monotonic");
            }
            Step::SetContext { zone } => {
                e.set_context("zone", enterprise::ZONES[*zone])
                    .expect("dispatches");
            }
        }
    }
    stats
}

/// Replay the same trace against the direct baseline.
pub fn replay_direct(graph: &PolicyGraph, trace: &[Step], users: usize) -> ReplayStats {
    let mut e = DirectEngine::from_policy(graph, Ts::ZERO).expect("bench policy instantiates");
    let mut sessions: Vec<Option<SessionId>> = vec![None; users];
    let mut stats = ReplayStats::default();
    for step in trace {
        match step {
            Step::CreateSession { user } => {
                let u = e.user_id(&enterprise::user_name(*user)).expect("bound");
                match e.create_session(u, &[]) {
                    Ok(s) => {
                        sessions[*user] = Some(s);
                        stats.granted += 1;
                    }
                    Err(_) => stats.denied += 1,
                }
            }
            Step::DeleteSession { user } => match sessions[*user].take() {
                Some(s) => {
                    let u = e.user_id(&enterprise::user_name(*user)).expect("bound");
                    match e.delete_session(u, s) {
                        Ok(()) => stats.granted += 1,
                        Err(_) => stats.denied += 1,
                    }
                }
                None => stats.skipped += 1,
            },
            Step::AddActiveRole { user, role } => match sessions[*user] {
                Some(s) => {
                    let u = e.user_id(&enterprise::user_name(*user)).expect("bound");
                    let r = e.role_id(&enterprise::role_name(*role)).expect("bound");
                    match e.add_active_role(u, s, r) {
                        Ok(()) => stats.granted += 1,
                        Err(_) => stats.denied += 1,
                    }
                }
                None => stats.skipped += 1,
            },
            Step::DropActiveRole { user, role } => match sessions[*user] {
                Some(s) => {
                    let u = e.user_id(&enterprise::user_name(*user)).expect("bound");
                    let r = e.role_id(&enterprise::role_name(*role)).expect("bound");
                    match e.drop_active_role(u, s, r) {
                        Ok(()) => stats.granted += 1,
                        Err(_) => stats.denied += 1,
                    }
                }
                None => stats.skipped += 1,
            },
            Step::CheckAccess { user, op, obj } => match sessions[*user] {
                Some(s) => {
                    let (Ok(op), Ok(obj)) = (
                        e.sys.op_by_name(&format!("op{op}")),
                        e.sys.obj_by_name(&format!("obj{obj}")),
                    ) else {
                        stats.skipped += 1;
                        continue;
                    };
                    if e.check_access(s, op, obj).expect("check runs") {
                        stats.allowed += 1;
                    } else {
                        stats.denied += 1;
                    }
                }
                None => stats.skipped += 1,
            },
            Step::Advance { secs } => {
                e.advance(Dur::from_secs(*secs)).expect("monotonic");
            }
            Step::SetContext { zone } => {
                e.set_context("zone", enterprise::ZONES[*zone]);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{generate_enterprise, generate_trace, EnterpriseSpec, TraceSpec};

    #[test]
    fn replays_agree_on_every_counter() {
        let spec = EnterpriseSpec::sized(20);
        let graph = generate_enterprise(&spec, 9);
        let trace = generate_trace(
            &TraceSpec {
                steps: 500,
                users: spec.users,
                roles: spec.roles,
                objects: spec.permissions,
                ..TraceSpec::default()
            },
            9,
        );
        let a = replay_owte(&graph, &trace, spec.users);
        let b = replay_direct(&graph, &trace, spec.users);
        let c = replay_owte_interpreted(&graph, &trace, spec.users);
        assert_eq!(a, b, "both engines must count identically");
        assert_eq!(a, c, "compiled and interpreted replays must agree");
        assert!(a.granted + a.denied + a.allowed > 0, "trace did real work");
    }
}
