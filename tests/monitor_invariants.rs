//! Property tests on the RBAC reference monitor's safety invariants: no
//! sequence of operations may ever produce a state that violates SSD, DSD,
//! hierarchy acyclicity, or session/authorization consistency.

use proptest::prelude::*;
use rbac::{RoleId, SessionId, System, UserId};

/// A random operation against the monitor.
#[derive(Debug, Clone)]
enum Op {
    AddUser(u8),
    AddRole(u8),
    Assign(u8, u8),
    Deassign(u8, u8),
    AddInheritance(u8, u8),
    DeleteInheritance(u8, u8),
    CreateSsd(u8, u8),
    CreateDsd(u8, u8),
    CreateSession(u8),
    AddActive(u8, u8, u8),
    DropActive(u8, u8, u8),
    DeleteUser(u8),
    DeleteRole(u8),
    DisableRole(u8),
    EnableRole(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::AddUser),
        any::<u8>().prop_map(Op::AddRole),
        (any::<u8>(), any::<u8>()).prop_map(|(u, r)| Op::Assign(u, r)),
        (any::<u8>(), any::<u8>()).prop_map(|(u, r)| Op::Deassign(u, r)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::AddInheritance(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::DeleteInheritance(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::CreateSsd(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::CreateDsd(a, b)),
        any::<u8>().prop_map(Op::CreateSession),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(u, s, r)| Op::AddActive(u, s, r)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(u, s, r)| Op::DropActive(u, s, r)),
        any::<u8>().prop_map(Op::DeleteUser),
        any::<u8>().prop_map(Op::DeleteRole),
        any::<u8>().prop_map(Op::DisableRole),
        any::<u8>().prop_map(Op::EnableRole),
    ]
}

/// Interpret ids modulo small pools so operations frequently collide on the
/// same entities (that's where bugs live).
struct Driver {
    sys: System,
    users: Vec<UserId>,
    roles: Vec<RoleId>,
    sessions: Vec<SessionId>,
    ssd_count: usize,
    dsd_count: usize,
}

impl Driver {
    fn new() -> Driver {
        Driver {
            sys: System::new(),
            users: Vec::new(),
            roles: Vec::new(),
            sessions: Vec::new(),
            ssd_count: 0,
            dsd_count: 0,
        }
    }

    fn user(&self, i: u8) -> Option<UserId> {
        if self.users.is_empty() {
            None
        } else {
            Some(self.users[i as usize % self.users.len()])
        }
    }

    fn role(&self, i: u8) -> Option<RoleId> {
        if self.roles.is_empty() {
            None
        } else {
            Some(self.roles[i as usize % self.roles.len()])
        }
    }

    fn session(&self, i: u8) -> Option<SessionId> {
        if self.sessions.is_empty() {
            None
        } else {
            Some(self.sessions[i as usize % self.sessions.len()])
        }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::AddUser(i) => {
                if let Ok(u) = self.sys.add_user(&format!("u{i}_{}", self.users.len())) {
                    self.users.push(u);
                }
            }
            Op::AddRole(i) => {
                if let Ok(r) = self.sys.add_role(&format!("r{i}_{}", self.roles.len())) {
                    self.roles.push(r);
                }
            }
            Op::Assign(u, r) => {
                if let (Some(u), Some(r)) = (self.user(u), self.role(r)) {
                    let _ = self.sys.assign_user(u, r);
                }
            }
            Op::Deassign(u, r) => {
                if let (Some(u), Some(r)) = (self.user(u), self.role(r)) {
                    let _ = self.sys.deassign_user(u, r);
                }
            }
            Op::AddInheritance(a, b) => {
                if let (Some(a), Some(b)) = (self.role(a), self.role(b)) {
                    let _ = self.sys.add_inheritance(a, b);
                }
            }
            Op::DeleteInheritance(a, b) => {
                if let (Some(a), Some(b)) = (self.role(a), self.role(b)) {
                    let _ = self.sys.delete_inheritance(a, b);
                }
            }
            Op::CreateSsd(a, b) => {
                if let (Some(a), Some(b)) = (self.role(a), self.role(b)) {
                    if a != b {
                        let name = format!("ssd{}", self.ssd_count);
                        if self.sys.create_ssd_set(&name, &[a, b], 2).is_ok() {
                            self.ssd_count += 1;
                        }
                    }
                }
            }
            Op::CreateDsd(a, b) => {
                if let (Some(a), Some(b)) = (self.role(a), self.role(b)) {
                    if a != b {
                        let name = format!("dsd{}", self.dsd_count);
                        if self.sys.create_dsd_set(&name, &[a, b], 2).is_ok() {
                            self.dsd_count += 1;
                        }
                    }
                }
            }
            Op::CreateSession(u) => {
                if let Some(u) = self.user(u) {
                    if let Ok(s) = self.sys.create_session(u, &[]) {
                        self.sessions.push(s);
                    }
                }
            }
            Op::AddActive(u, s, r) => {
                if let (Some(u), Some(s), Some(r)) = (self.user(u), self.session(s), self.role(r)) {
                    let _ = self.sys.add_active_role(u, s, r);
                }
            }
            Op::DropActive(u, s, r) => {
                if let (Some(u), Some(s), Some(r)) = (self.user(u), self.session(s), self.role(r)) {
                    let _ = self.sys.drop_active_role(u, s, r);
                }
            }
            Op::DeleteUser(u) => {
                if let Some(u) = self.user(u) {
                    let _ = self.sys.delete_user(u);
                    self.users.retain(|&x| x != u);
                }
            }
            Op::DeleteRole(r) => {
                if let Some(r) = self.role(r) {
                    let _ = self.sys.delete_role(r);
                    self.roles.retain(|&x| x != r);
                }
            }
            Op::DisableRole(r) => {
                if let Some(r) = self.role(r) {
                    let _ = self.sys.disable_role(r, true);
                }
            }
            Op::EnableRole(r) => {
                if let Some(r) = self.role(r) {
                    let _ = self.sys.enable_role(r);
                }
            }
        }
    }

    /// The safety invariants that must hold after every operation.
    fn check_invariants(&self) {
        let sys = &self.sys;
        // 1. SSD: no user is authorized for ≥ n roles of any SSD set.
        for id in sys.all_ssd_sets() {
            let (name, roles, n) = sys.ssd_set_info(id).unwrap();
            for u in sys.all_users() {
                let auth = sys.authorized_roles(u).unwrap();
                let hit = auth.intersection(&roles).count();
                assert!(
                    hit < n,
                    "SSD `{name}` violated: user {u} holds {hit} of {roles:?}"
                );
            }
        }
        // 2. DSD: no session has ≥ n roles of any DSD set active.
        for id in sys.all_dsd_sets() {
            let (name, roles, n) = sys.dsd_set_info(id).unwrap();
            for s in sys.all_sessions() {
                let active = sys.session_roles(s).unwrap();
                let hit = active.intersection(&roles).count();
                assert!(hit < n, "DSD `{name}` violated in session {s}");
            }
        }
        // 3. Hierarchy is acyclic: no role dominates itself via others.
        for r in sys.all_roles() {
            assert!(
                !sys.juniors_closure(r).unwrap().contains(&r),
                "cycle through {r}"
            );
        }
        // 4. Session consistency: every active role is authorized for the
        //    session's owner, and owner bookkeeping is symmetric.
        for s in sys.all_sessions() {
            let owner = sys.session_user(s).unwrap();
            assert!(sys.user_sessions(owner).unwrap().contains(&s));
            for &r in &sys.session_roles(s).unwrap() {
                assert!(
                    sys.is_authorized(owner, r).unwrap(),
                    "session {s} has unauthorized active role {r}"
                );
            }
        }
        // 5. UA symmetry: assigned_users ↔ assigned_roles agree.
        for u in sys.all_users() {
            for &r in &sys.assigned_roles(u).unwrap() {
                assert!(sys.assigned_users(r).unwrap().contains(&u));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn monitor_invariants_hold_under_any_op_sequence(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let mut d = Driver::new();
        // Seed a few entities so early ops have targets.
        d.apply(&Op::AddUser(0));
        d.apply(&Op::AddRole(0));
        d.apply(&Op::AddRole(1));
        for op in &ops {
            d.apply(op);
            d.check_invariants();
        }
    }
}
