//! Property test: the rule-driven OWTE engine and the hard-coded direct
//! baseline make **identical decisions** on random enterprises and random
//! workload traces — the paper's flexibility does not change semantics.
//!
//! Both engines are driven step by step; after every step the decision
//! (allow/deny) must match, and after the whole trace the observable state
//! (per-session active role sets, per-role enabled flags) must be equal.

use owte_core::{DirectEngine, Engine, EngineError};
use proptest::prelude::*;
use rbac::{RoleId, SessionId, UserId};
use snoop::{Dur, Ts};
use workload::{generate_enterprise, generate_trace, EnterpriseSpec, Step, TraceSpec};

/// Decision outcome, comparable across engines.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Granted,
    Denied,
    NoSession,
    Access(bool),
}

fn owte_outcome(r: Result<(), EngineError>) -> Outcome {
    match r {
        Ok(()) => Outcome::Granted,
        Err(_) => Outcome::Denied,
    }
}

struct Harness {
    owte: Engine,
    direct: DirectEngine,
    /// Most recent open session per user (same in both engines, checked).
    sessions: Vec<Option<SessionId>>,
}

impl Harness {
    fn new(spec: &EnterpriseSpec, seed: u64) -> Harness {
        let graph = generate_enterprise(spec, seed);
        let owte = Engine::from_policy(&graph, Ts::ZERO).unwrap();
        let direct = DirectEngine::from_policy(&graph, Ts::ZERO).unwrap();
        Harness {
            owte,
            direct,
            sessions: vec![None; spec.users],
        }
    }

    fn user(&self, idx: usize) -> UserId {
        self.owte
            .user_id(&workload::enterprise::user_name(idx))
            .unwrap()
    }

    fn role(&self, idx: usize) -> RoleId {
        self.owte
            .role_id(&workload::enterprise::role_name(idx))
            .unwrap()
    }

    /// Run one step on both engines; return both outcomes.
    fn step(&mut self, step: &Step) -> (Outcome, Outcome) {
        match step {
            Step::CreateSession { user } => {
                let u = self.user(*user);
                let a = self.owte.create_session(u, &[]);
                let b = self.direct.create_session(u, &[]);
                match (&a, &b) {
                    (Ok(sa), Ok(sb)) => {
                        assert_eq!(sa, sb, "session id allocation must match");
                        self.sessions[*user] = Some(*sa);
                    }
                    (Err(_), Err(_)) => {}
                    _ => {}
                }
                (Outcome::Access(a.is_ok()), Outcome::Access(b.is_ok()))
            }
            Step::DeleteSession { user } => {
                let u = self.user(*user);
                match self.sessions[*user].take() {
                    Some(s) => (
                        owte_outcome(self.owte.delete_session(u, s)),
                        owte_outcome(self.direct.delete_session(u, s).map(|_| ())),
                    ),
                    None => (Outcome::NoSession, Outcome::NoSession),
                }
            }
            Step::AddActiveRole { user, role } => {
                let (u, r) = (self.user(*user), self.role(*role));
                match self.sessions[*user] {
                    Some(s) => (
                        owte_outcome(self.owte.add_active_role(u, s, r)),
                        owte_outcome(self.direct.add_active_role(u, s, r)),
                    ),
                    None => (Outcome::NoSession, Outcome::NoSession),
                }
            }
            Step::DropActiveRole { user, role } => {
                let (u, r) = (self.user(*user), self.role(*role));
                match self.sessions[*user] {
                    Some(s) => (
                        owte_outcome(self.owte.drop_active_role(u, s, r)),
                        owte_outcome(self.direct.drop_active_role(u, s, r)),
                    ),
                    None => (Outcome::NoSession, Outcome::NoSession),
                }
            }
            Step::CheckAccess { user, op, obj } => {
                let (Ok(op), Ok(obj)) = (
                    self.owte.system().op_by_name(&format!("op{op}")),
                    self.owte.system().obj_by_name(&format!("obj{obj}")),
                ) else {
                    return (Outcome::NoSession, Outcome::NoSession);
                };
                match self.sessions[*user] {
                    Some(s) => (
                        Outcome::Access(self.owte.check_access(s, op, obj).unwrap()),
                        Outcome::Access(self.direct.check_access(s, op, obj).unwrap()),
                    ),
                    None => (Outcome::NoSession, Outcome::NoSession),
                }
            }
            Step::Advance { secs } => {
                self.owte.advance(Dur::from_secs(*secs)).unwrap();
                self.direct.advance(Dur::from_secs(*secs)).unwrap();
                (Outcome::Granted, Outcome::Granted)
            }
            Step::SetContext { zone } => {
                let value = workload::enterprise::ZONES[*zone];
                self.owte.set_context("zone", value).unwrap();
                self.direct.set_context("zone", value);
                (Outcome::Granted, Outcome::Granted)
            }
        }
    }

    /// Compare final observable state.
    fn assert_states_equal(&self) {
        let a = self.owte.system();
        let b = &self.direct.sys;
        let sa: Vec<_> = a.all_sessions().collect();
        let sb: Vec<_> = b.all_sessions().collect();
        assert_eq!(sa, sb, "live session sets differ");
        for s in sa {
            assert_eq!(
                a.session_roles(s).unwrap(),
                b.session_roles(s).unwrap(),
                "active role sets differ in session {s}"
            );
        }
        for r in a.all_roles() {
            assert_eq!(
                a.is_enabled(r).unwrap(),
                b.is_enabled(r).unwrap(),
                "enabled flag differs for role {r}"
            );
        }
    }
}

fn run_equivalence(spec: EnterpriseSpec, ent_seed: u64, trace_seed: u64, steps: usize) {
    let trace_spec = TraceSpec {
        steps,
        users: spec.users,
        roles: spec.roles,
        objects: spec.permissions,
        w_context: if spec.context_fraction > 0.0 { 5 } else { 0 },
        ..TraceSpec::default()
    };
    let trace = generate_trace(&trace_spec, trace_seed);
    let mut h = Harness::new(&spec, ent_seed);
    for (i, step) in trace.iter().enumerate() {
        let (a, b) = h.step(step);
        assert_eq!(
            a,
            b,
            "step {i} ({}) diverged: OWTE {a:?} vs direct {b:?} \
             [enterprise seed {ent_seed}, trace seed {trace_seed}]",
            step.describe()
        );
    }
    h.assert_states_equal();
}

#[test]
fn equivalence_on_flat_core_rbac() {
    run_equivalence(EnterpriseSpec::flat(10), 1, 1, 400);
}

#[test]
fn equivalence_with_hierarchy_and_sod() {
    let spec = EnterpriseSpec {
        roles: 15,
        users: 20,
        permissions: 20,
        hierarchy_density: 0.7,
        ssd_pairs: 2,
        dsd_pairs: 2,
        capped_fraction: 0.0,
        temporal_fraction: 0.0,
        duration_fraction: 0.0,
        ..EnterpriseSpec::default()
    };
    run_equivalence(spec, 2, 2, 400);
}

#[test]
fn equivalence_with_caps_and_temporal() {
    let spec = EnterpriseSpec {
        roles: 12,
        users: 15,
        permissions: 15,
        capped_fraction: 0.4,
        temporal_fraction: 0.4,
        duration_fraction: 0.4,
        ..EnterpriseSpec::default()
    };
    run_equivalence(spec, 3, 3, 400);
}

#[test]
fn equivalence_with_context_constraints() {
    let spec = EnterpriseSpec {
        roles: 12,
        users: 15,
        permissions: 15,
        context_fraction: 0.5,
        ..EnterpriseSpec::default()
    };
    run_equivalence(spec, 4, 4, 400);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The headline property: arbitrary enterprise shape, arbitrary trace —
    /// identical decisions and identical final state.
    #[test]
    fn owte_equals_direct(
        ent_seed in 0u64..1000,
        trace_seed in 0u64..1000,
        roles in 4usize..20,
        hierarchy in 0.0f64..1.0,
        capped in 0.0f64..0.5,
        temporal in 0.0f64..0.5,
        duration in 0.0f64..0.5,
        context in 0.0f64..0.5,
    ) {
        let spec = EnterpriseSpec {
            roles,
            users: roles + 5,
            permissions: roles + 5,
            hierarchy_density: hierarchy,
            ssd_pairs: roles / 6,
            dsd_pairs: roles / 6,
            capped_fraction: capped,
            temporal_fraction: temporal,
            duration_fraction: duration,
            context_fraction: context,
            ..EnterpriseSpec::default()
        };
        run_equivalence(spec, ent_seed, trace_seed, 200);
    }
}
