//! Golden compiled-plan listing for the paper's Figure-1 enterprise-XYZ
//! policy: the verified pool lowers eagerly, the dump is deterministic,
//! and it covers every rule and every dispatching event. The same text is
//! what `rbacsh analyze --plan` prints.

use owte_core::Engine;
use policy::PolicyGraph;
use snoop::Ts;

#[test]
fn xyz_plan_dump_is_stable_and_exported() {
    let mut e = Engine::from_policy(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
    assert!(
        e.compiled_active(),
        "the verified XYZ pool must compile eagerly"
    );
    let plan = e.plan_text().unwrap();
    assert!(
        plan.starts_with("compiled plan: 23 rules"),
        "Figure-1 pool size in the header: {}",
        plan.lines().next().unwrap_or("")
    );
    assert!(plan.contains("on checkAccess"), "{plan}");
    // Every pool rule gets a bytecode listing.
    for (_, r) in e.pool().iter() {
        assert!(
            plan.contains(&format!("rule {} [", r.name)),
            "missing listing for rule {}",
            r.name
        );
    }
    // The check-access rule compiles to real condition bytecode.
    assert!(plan.contains("rule CA ["), "{plan}");

    // Deterministic: an independently built engine dumps identical text.
    let mut e2 = Engine::from_policy(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
    assert_eq!(plan, e2.plan_text().unwrap(), "plan dump must be stable");

    // Disarming drops the plan; re-arming recompiles to the same text.
    e.set_compiled(false);
    assert_eq!(e.plan_text(), None);
    e.set_compiled(true);
    assert_eq!(e.plan_text().unwrap(), plan);

    // Refresh the committed artifact location so `dot/plan_xyz.txt`
    // always matches the compiler (same pattern as the analyzer DOTs).
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("dot");
    if dir.is_dir() {
        std::fs::write(dir.join("plan_xyz.txt"), &plan).unwrap();
    }
}
