//! Regeneration invariants (§5): an incrementally regenerated rule pool
//! must be semantically identical to a freshly generated one, for any
//! sequence of role-property changes.

use policy::{instantiate, regenerate, DailyWindow, PolicyGraph};
use snoop::{Dur, Ts};
use workload::{generate_enterprise, EnterpriseSpec};

/// Rule-pool fingerprint covering name, triggering event (by stable name
/// or label — raw event ids differ between incrementally-evolved and fresh
/// detectors), conditions and both action lists.
fn fingerprint(inst: &policy::Instantiated) -> Vec<String> {
    let mut v: Vec<String> = inst
        .pool
        .iter()
        .map(|(_, r)| {
            let ev = inst
                .detector
                .name_of(r.event)
                .map(str::to_string)
                .unwrap_or_else(|| inst.detector.label(r.event).to_string());
            format!(
                "{}|{}|{}|{:?}|{:?}",
                r.name, ev, r.when, r.then, r.otherwise
            )
        })
        .collect();
    v.sort();
    v
}

#[test]
fn incremental_regeneration_equals_fresh_generation() {
    let base = generate_enterprise(&EnterpriseSpec::sized(40), 11);
    let mut inst = instantiate(&base, Ts::ZERO).unwrap();

    // A sequence of role-property edits.
    let mut g = base.clone();
    g.role("role3").max_active_users = Some(4);
    g.role("role7").enabling = Some(DailyWindow {
        start_h: 9,
        start_m: 0,
        end_h: 17,
        end_m: 0,
    });
    g.role("role9").max_activation = Some(Dur::from_hours(1));
    let report = regenerate(&mut inst, &g).unwrap();
    assert!(!report.full_rebuild);
    assert_eq!(report.regenerated_roles.len(), 3);

    let fresh = instantiate(&g, Ts::ZERO).unwrap();
    assert_eq!(
        fingerprint(&inst),
        fingerprint(&fresh),
        "incremental pool must match fresh pool"
    );
    assert_eq!(inst.pool.len(), fresh.pool.len());
}

#[test]
fn repeated_changes_converge() {
    let base = generate_enterprise(&EnterpriseSpec::sized(20), 3);
    let mut inst = instantiate(&base, Ts::ZERO).unwrap();
    let mut g = base.clone();
    // Flip a cap on and off repeatedly; pool must end equal to the base.
    for round in 0..3 {
        g.role("role1").max_active_users = Some(2 + round);
        regenerate(&mut inst, &g).unwrap();
        g.role("role1").max_active_users = None;
        regenerate(&mut inst, &g).unwrap();
    }
    let fresh = instantiate(&base, Ts::ZERO).unwrap();
    assert_eq!(fingerprint(&inst), fingerprint(&fresh));
}

#[test]
fn changed_activation_duration_rebinds_delta_event() {
    // Regression: changing a role's max_activation *duration* (Some -> Some
    // with a different Dur) used to collide in the detector: the Δ name was
    // still bound to the old PLUS node, so re-binding it to the new-delta
    // node failed with DuplicateName and left the old timers orphaned.
    let base = generate_enterprise(&EnterpriseSpec::sized(20), 7);
    let mut inst = instantiate(&base, Ts::ZERO).unwrap();

    let mut g = base.clone();
    g.role("role2").max_activation = Some(Dur::from_hours(2));
    regenerate(&mut inst, &g).unwrap();

    // Shrink the duration: must rebind, not error.
    g.role("role2").max_activation = Some(Dur::from_hours(1));
    let report = regenerate(&mut inst, &g).unwrap();
    assert!(!report.full_rebuild);
    let fresh = instantiate(&g, Ts::ZERO).unwrap();
    assert_eq!(fingerprint(&inst), fingerprint(&fresh));

    // Off and back on with a third value still converges.
    g.role("role2").max_activation = None;
    regenerate(&mut inst, &g).unwrap();
    g.role("role2").max_activation = Some(Dur::from_mins(30));
    regenerate(&mut inst, &g).unwrap();
    let fresh = instantiate(&g, Ts::ZERO).unwrap();
    assert_eq!(fingerprint(&inst), fingerprint(&fresh));
}

#[test]
fn regeneration_cost_scales_with_change_not_policy() {
    // The paper's administrative-burden claim, as a structural property:
    // one changed role out of 200 rewrites only that role's rules.
    let base = generate_enterprise(&EnterpriseSpec::sized(200), 5);
    let mut inst = instantiate(&base, Ts::ZERO).unwrap();
    let total = inst.pool.len();
    let mut g = base.clone();
    g.role("role42").enabling = Some(DailyWindow {
        start_h: 9,
        start_m: 0,
        end_h: 17,
        end_m: 0,
    });
    let report = regenerate(&mut inst, &g).unwrap();
    assert_eq!(report.regenerated_roles, vec!["role42".to_string()]);
    assert!(
        report.rules_rewritten * 10 < total,
        "rewrote {} of {total} rules",
        report.rules_rewritten
    );
}

#[test]
fn full_rebuild_on_structural_change_is_equivalent() {
    let base = generate_enterprise(&EnterpriseSpec::sized(30), 9);
    let mut inst = instantiate(&base, Ts::ZERO).unwrap();
    let mut g = base.clone();
    g.role("brand_new_role");
    g.user("brand_new_user");
    g.assign("brand_new_user", "brand_new_role");
    let report = regenerate(&mut inst, &g).unwrap();
    assert!(report.full_rebuild);
    let fresh = instantiate(&g, Ts::ZERO).unwrap();
    assert_eq!(fingerprint(&inst), fingerprint(&fresh));
}

#[test]
fn inconsistent_change_rejected_without_damage() {
    let base = PolicyGraph::enterprise_xyz();
    let mut inst = instantiate(&base, Ts::ZERO).unwrap();
    let before = fingerprint(&inst);
    // An SSD set over hierarchically related roles is inconsistent.
    let mut bad = base.clone();
    bad.ssd_set("bad", &["PM", "PC"], 2);
    assert!(regenerate(&mut inst, &bad).is_err());
    assert_eq!(fingerprint(&inst), before, "failed change left no residue");
    assert_eq!(inst.graph, base);
}
