//! Crash-consistency properties of the durable engine.
//!
//! The central property: **for any random enterprise, trace and crash
//! point, reopening the store yields exactly the state of replaying the
//! acknowledged operation prefix on a fresh engine.** Crashes are injected
//! with the deterministic `FaultyStorage` wrapper (torn final frames,
//! transient I/O errors, failed fsyncs, hard kill points) over a
//! `MemStorage` whose `crash()` models the page cache: only synced bytes
//! survive.
//!
//! Damage a crash cannot explain — a flipped bit mid-log — must instead
//! fail recovery closed, and a journal whose virtual clock runs backwards
//! must be rejected before a single operation is applied.

use owte_core::{
    replay, DurableConfig, DurableEngine, DurableError, Engine, FaultPlan, FaultyStorage,
    FileStorage, Journal, JournalOp, MemStorage, Storage, Wal, WalConfig, WalError,
};
use proptest::prelude::*;
use rbac::SessionId;
use snoop::Ts;
use workload::{generate_enterprise, generate_trace, Driver, EnterpriseSpec, Step, TraceSpec};

/// The repo's canonical state-equality check (same as the replication
/// suite): sessions, active roles, role enablement, the full audit log,
/// and the clock. `ctx` is prepended to every panic message so a failing
/// proptest case prints its seeds.
fn assert_state_equal(a: &Engine, b: &Engine, ctx: &str) {
    let (sa, sb) = (a.system(), b.system());
    assert_eq!(
        sa.all_sessions().collect::<Vec<_>>(),
        sb.all_sessions().collect::<Vec<_>>(),
        "{ctx}: session sets differ"
    );
    for s in sa.all_sessions() {
        assert_eq!(
            sa.session_roles(s).unwrap(),
            sb.session_roles(s).unwrap(),
            "{ctx}: active roles differ for {s:?}"
        );
    }
    for r in sa.all_roles() {
        assert_eq!(
            sa.is_enabled(r).unwrap(),
            sb.is_enabled(r).unwrap(),
            "{ctx}: enablement differs for {r:?}"
        );
    }
    assert_eq!(
        a.log().entries(),
        b.log().entries(),
        "{ctx}: audit logs differ"
    );
    assert_eq!(a.now(), b.now(), "{ctx}: clocks differ");
}

/// Format the seeds of a failing case as a one-command replay recipe.
fn replay_hint(test: &str, seeds: &[(&str, u64)]) -> String {
    let pairs: Vec<String> = seeds.iter().map(|(k, v)| format!("{k}={v}")).collect();
    let csv: Vec<String> = seeds.iter().map(|(_, v)| v.to_string()).collect();
    format!(
        "[{}; replay: OWTE_REPLAY_SEEDS={} cargo test --test {test} replay_from_env -- --ignored --nocapture]",
        pairs.join(" "),
        csv.join(",")
    )
}

/// Drive a durable engine through a trace, recording every operation the
/// engine *acknowledged journaling* (detected via the op counter, since a
/// denied request is journaled too while a storage failure is not).
/// Operations keep being attempted after the storage dies — the engine
/// must reject them without corrupting its history.
fn record_op<S: Storage>(d: &mut DurableEngine<S>, acked: &mut Vec<JournalOp>, op: JournalOp) {
    let before = d.op_count();
    let _ = match &op {
        JournalOp::DeleteSession { user, session } => d.delete_session(*user, *session),
        JournalOp::AddActiveRole {
            user,
            session,
            role,
        } => d.add_active_role(*user, *session, *role),
        JournalOp::DropActiveRole {
            user,
            session,
            role,
        } => d.drop_active_role(*user, *session, *role),
        JournalOp::CheckAccess {
            session, op, obj, ..
        } => d.check_access(*session, *op, *obj).map(|_| ()),
        JournalOp::AdvanceTo { to } => d.advance_to(*to),
        JournalOp::SetContext { key, value } => d.set_context(key, value),
        other => panic!("trace does not produce {other:?}"),
    };
    if d.op_count() > before {
        acked.push(op);
    }
}

/// [`Driver`] over a [`DurableEngine`], recording the acknowledged ops.
struct Durable<'a, S: Storage> {
    d: &'a mut DurableEngine<S>,
    acked: &'a mut Vec<JournalOp>,
}

impl<S: Storage> Driver for Durable<'_, S> {
    type Session = SessionId;

    fn create_session(&mut self, user: usize) -> Option<SessionId> {
        let u = self
            .d
            .engine()
            .user_id(&workload::enterprise::user_name(user))
            .unwrap();
        let before = self.d.op_count();
        let res = self.d.create_session(u, &[]);
        if self.d.op_count() > before {
            self.acked.push(JournalOp::CreateSession {
                user: u,
                initial: vec![],
            });
        }
        res.ok()
    }

    fn delete_session(&mut self, user: usize, session: SessionId) {
        let u = self
            .d
            .engine()
            .user_id(&workload::enterprise::user_name(user))
            .unwrap();
        record_op(
            self.d,
            self.acked,
            JournalOp::DeleteSession { user: u, session },
        );
    }

    fn add_active_role(&mut self, user: usize, session: SessionId, role: usize) {
        let u = self
            .d
            .engine()
            .user_id(&workload::enterprise::user_name(user))
            .unwrap();
        let r = self
            .d
            .engine()
            .role_id(&workload::enterprise::role_name(role))
            .unwrap();
        record_op(
            self.d,
            self.acked,
            JournalOp::AddActiveRole {
                user: u,
                session,
                role: r,
            },
        );
    }

    fn drop_active_role(&mut self, user: usize, session: SessionId, role: usize) {
        let u = self
            .d
            .engine()
            .user_id(&workload::enterprise::user_name(user))
            .unwrap();
        let r = self
            .d
            .engine()
            .role_id(&workload::enterprise::role_name(role))
            .unwrap();
        record_op(
            self.d,
            self.acked,
            JournalOp::DropActiveRole {
                user: u,
                session,
                role: r,
            },
        );
    }

    fn check_access(&mut self, session: SessionId, op: usize, obj: usize) {
        let (Ok(op), Ok(obj)) = (
            self.d.engine().system().op_by_name(&format!("op{op}")),
            self.d.engine().system().obj_by_name(&format!("obj{obj}")),
        ) else {
            return;
        };
        record_op(
            self.d,
            self.acked,
            JournalOp::CheckAccess {
                session,
                op,
                obj,
                purpose: -1,
            },
        );
    }

    fn advance(&mut self, secs: u64) {
        let to = self.d.engine().now() + snoop::Dur::from_secs(secs);
        record_op(self.d, self.acked, JournalOp::AdvanceTo { to });
    }

    fn set_context(&mut self, zone: &str) {
        record_op(
            self.d,
            self.acked,
            JournalOp::SetContext {
                key: "zone".to_string(),
                value: zone.to_string(),
            },
        );
    }
}

fn drive_durable<S: Storage>(
    d: &mut DurableEngine<S>,
    trace: &[Step],
    users: usize,
    acked: &mut Vec<JournalOp>,
) {
    workload::drive(&mut Durable { d, acked }, trace, users);
}

fn enterprise(seed: u64) -> (workload::EnterpriseSpec, policy::PolicyGraph) {
    let spec = EnterpriseSpec {
        roles: 8,
        users: 10,
        permissions: 10,
        temporal_fraction: 0.3,
        duration_fraction: 0.3,
        context_fraction: 0.3,
        capped_fraction: 0.3,
        ..EnterpriseSpec::default()
    };
    let graph = generate_enterprise(&spec, seed);
    (spec, graph)
}

fn trace_for(spec: &EnterpriseSpec, steps: usize, seed: u64) -> Vec<Step> {
    generate_trace(
        &TraceSpec {
            steps,
            users: spec.users,
            roles: spec.roles,
            objects: spec.permissions,
            w_context: 5,
            ..TraceSpec::default()
        },
        seed,
    )
}

/// Body of the crash-consistency property, factored out so a failing seed
/// combination can be replayed directly via [`replay_from_env`].
fn check_recovery_equals_prefix_replay(
    ent_seed: u64,
    trace_seed: u64,
    kill_at: u64,
    fault_seed: u64,
) {
    let ctx = replay_hint(
        "durability",
        &[
            ("ent_seed", ent_seed),
            ("trace_seed", trace_seed),
            ("kill_at", kill_at),
            ("fault_seed", fault_seed),
        ],
    );
    let (spec, graph) = enterprise(ent_seed);
    let trace = trace_for(&spec, 100, trace_seed);
    let plan = FaultPlan {
        kill_at_op: Some(kill_at),
        torn_writes: true,
        p_transient_io: 0.05,
        p_failed_sync: 0.05,
        ..FaultPlan::default()
    };
    let storage = FaultyStorage::new(MemStorage::new(), fault_seed, plan);
    let config = DurableConfig {
        snapshot_every: Some(25),
        ..DurableConfig::default()
    };
    let Ok(mut d) = DurableEngine::create(storage, &graph, Ts::ZERO, config.clone()) else {
        // The kill point fired during genesis; nothing to recover.
        return;
    };
    let mut acked = Vec::new();
    drive_durable(&mut d, &trace, spec.users, &mut acked);

    // Power loss: only synced bytes survive.
    let mut disk = d.into_storage().into_inner();
    disk.crash();

    let recovered = DurableEngine::open(disk, config)
        .unwrap_or_else(|e| panic!("{ctx}: crash at any point must be recoverable: {e}"));
    assert_eq!(
        recovered.op_count(),
        acked.len() as u64,
        "{ctx}: recovered op count != acknowledged prefix"
    );

    let expected = replay(&Journal {
        policy: graph.clone(),
        start: Ts::ZERO,
        ops: acked,
    })
    .unwrap_or_else(|e| panic!("{ctx}: acknowledged prefix replays: {e}"));
    assert_state_equal(recovered.engine(), &expected, &ctx);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The crash-consistency property, over random enterprises, traces and
    /// kill points, with torn writes, transient I/O errors and failed
    /// fsyncs all enabled.
    #[test]
    fn recovery_equals_prefix_replay(
        ent_seed in 0u64..200,
        trace_seed in 0u64..200,
        kill_at in 1u64..120,
        fault_seed in 0u64..1000,
    ) {
        check_recovery_equals_prefix_replay(ent_seed, trace_seed, kill_at, fault_seed);
    }

    /// Without any injected faults, reopening is lossless for the whole
    /// trace (and exercises the snapshot/compaction path heavily).
    #[test]
    fn clean_reopen_is_lossless(ent_seed in 0u64..200, trace_seed in 0u64..200) {
        let ctx = replay_hint(
            "durability",
            &[("ent_seed", ent_seed), ("trace_seed", trace_seed)],
        );
        let (spec, graph) = enterprise(ent_seed);
        let trace = trace_for(&spec, 80, trace_seed);
        let config = DurableConfig {
            snapshot_every: Some(16),
            ..DurableConfig::default()
        };
        let mut d = DurableEngine::create(MemStorage::new(), &graph, Ts::ZERO, config.clone())
            .unwrap();
        let mut acked = Vec::new();
        drive_durable(&mut d, &trace, spec.users, &mut acked);
        prop_assert_eq!(d.snapshot_failures(), 0, "{}: snapshot failed", ctx);
        let live = d.engine().clone();
        let total = d.op_count();

        let mut disk = d.into_storage();
        disk.crash(); // sync_on_append: everything acknowledged survives
        let recovered = DurableEngine::open(disk, config).unwrap();
        prop_assert_eq!(recovered.op_count(), total, "{}: op count changed", ctx);
        prop_assert_eq!(
            recovered.recovery_stats(),
            owte_core::RecoveryStats::default(),
            "{}: a clean reopen repairs nothing",
            ctx
        );
        assert_state_equal(recovered.engine(), &live, &ctx);
    }
}

/// One-command replay of a failing `recovery_equals_prefix_replay` case:
///
/// ```text
/// OWTE_REPLAY_SEEDS=ent,trace,kill,fault cargo test --test durability \
///     replay_from_env -- --ignored --nocapture
/// ```
#[test]
#[ignore = "replay harness; set OWTE_REPLAY_SEEDS=ent,trace,kill,fault"]
fn replay_from_env() {
    let raw = std::env::var("OWTE_REPLAY_SEEDS")
        .expect("set OWTE_REPLAY_SEEDS=ent_seed,trace_seed,kill_at,fault_seed");
    let seeds: Vec<u64> = raw
        .split(',')
        .map(|p| p.trim().parse().expect("seeds must be integers"))
        .collect();
    assert_eq!(
        seeds.len(),
        4,
        "expected 4 comma-separated seeds, got {raw:?}"
    );
    check_recovery_equals_prefix_replay(seeds[0], seeds[1], seeds[2], seeds[3]);
}

/// Helper: run a small deterministic workload and return storage + the
/// acknowledged ops + the policy.
fn small_run(snapshot_every: Option<u64>) -> (MemStorage, Vec<JournalOp>, policy::PolicyGraph) {
    let (spec, graph) = enterprise(7);
    let trace = trace_for(&spec, 40, 11);
    let config = DurableConfig {
        snapshot_every,
        ..DurableConfig::default()
    };
    let mut d = DurableEngine::create(MemStorage::new(), &graph, Ts::ZERO, config).unwrap();
    let mut acked = Vec::new();
    drive_durable(&mut d, &trace, spec.users, &mut acked);
    (d.into_storage(), acked, graph)
}

fn active_segment_name(storage: &MemStorage) -> String {
    let mut segs: Vec<String> = storage
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        .collect();
    segs.sort();
    segs.pop().expect("at least one segment")
}

#[test]
fn torn_final_frame_truncates_to_previous_op() {
    let (mut storage, acked, graph) = small_run(None);
    let seg = active_segment_name(&storage);
    let len = storage.raw(&seg).unwrap().len();
    storage.truncate(&seg, len - 2); // tear the last record

    let recovered =
        DurableEngine::open(storage, DurableConfig::default()).expect("a torn tail is recoverable");
    assert_eq!(recovered.op_count(), acked.len() as u64 - 1);
    assert!(
        recovered.recovery_stats().truncated_tail,
        "the dropped torn record must be surfaced to the caller"
    );
    let expected = replay(&Journal {
        policy: graph,
        start: Ts::ZERO,
        ops: acked[..acked.len() - 1].to_vec(),
    })
    .unwrap();
    assert_state_equal(recovered.engine(), &expected, "torn_final_frame");
}

#[test]
fn midlog_corruption_fails_closed() {
    let (mut storage, _acked, _graph) = small_run(None);
    // Flip a bit inside the first record's payload: segment header (28)
    // plus frame header (12) plus a couple of payload bytes.
    let seg = {
        let mut segs: Vec<String> = storage
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| n.starts_with("wal-") && n.ends_with(".seg"))
            .collect();
        segs.sort();
        segs.remove(0)
    };
    assert!(storage.raw(&seg).unwrap().len() > 44, "segment has records");
    storage.corrupt(&seg, 28 + 12 + 2);

    match DurableEngine::open(storage, DurableConfig::default()) {
        Err(DurableError::Wal(WalError::Corrupt(m))) => {
            assert!(m.contains("checksum"), "unexpected corruption message: {m}")
        }
        Ok(_) => panic!("corrupted log must not recover"),
        Err(other) => panic!("expected corruption error, got {other}"),
    }
}

#[test]
fn clock_regression_in_journal_is_rejected_before_apply() {
    let (spec, graph) = enterprise(3);
    let _ = spec;
    let d = DurableEngine::create(
        MemStorage::new(),
        &graph,
        Ts::from_secs(1_000),
        DurableConfig::default(),
    )
    .unwrap();
    let storage = d.into_storage();

    // Forge a journal tail whose clock runs backwards: a valid advance,
    // then one into the past. The durable engine's own API refuses to
    // journal such a record, so write it through the WAL directly.
    let (mut wal, _) = Wal::open(storage, WalConfig::default()).unwrap();
    for op in [
        JournalOp::AdvanceTo {
            to: Ts::from_secs(2_000),
        },
        JournalOp::AdvanceTo {
            to: Ts::from_secs(500),
        },
    ] {
        wal.append(&serde_json::to_vec(&op).unwrap()).unwrap();
    }

    match DurableEngine::open(wal.into_storage(), DurableConfig::default()) {
        Err(DurableError::ClockRegression { record, .. }) => {
            assert_eq!(record, 1, "the second tail record is the regression");
        }
        Ok(_) => panic!("a regressing journal must not recover"),
        Err(other) => panic!("expected clock-regression error, got {other}"),
    }
}

#[test]
fn file_storage_survives_process_restart() {
    let dir = std::env::temp_dir().join(format!("owte-durability-file-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let (spec, graph) = enterprise(5);
    let trace = trace_for(&spec, 60, 9);
    let config = DurableConfig {
        snapshot_every: Some(16),
        ..DurableConfig::default()
    };

    let live = {
        let storage = FileStorage::open(&dir).unwrap();
        let mut d = DurableEngine::create(storage, &graph, Ts::ZERO, config.clone()).unwrap();
        let mut acked = Vec::new();
        drive_durable(&mut d, &trace, spec.users, &mut acked);
        d.engine().clone()
    }; // drop = process exit

    let storage = FileStorage::open(&dir).unwrap();
    let recovered = DurableEngine::open(storage, config).unwrap();
    assert_state_equal(recovered.engine(), &live, "file_storage_restart");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshotting_bounds_recovery_work() {
    // Same workload, with and without snapshots: the snapshotted store
    // must recover from a tail much shorter than the full history.
    let (storage_snap, acked, _) = small_run(Some(8));
    let (storage_full, acked_full, _) = small_run(None);
    assert_eq!(acked.len(), acked_full.len(), "identical workloads");

    let snap = DurableEngine::open(storage_snap, DurableConfig::default()).unwrap();
    let full = DurableEngine::open(storage_full, DurableConfig::default()).unwrap();
    assert_eq!(snap.op_count(), full.op_count());
    assert!(
        snap.snapshot_ops() > 0,
        "snapshotted store recovered from a snapshot"
    );
    assert_eq!(full.snapshot_ops(), 0, "genesis snapshot only");
}
