//! Active security through the full OWTE engine (§1, §4.3.3): denial
//! storms trip threshold rules which alert administrators, disable rule
//! classes (lockdown) or disable roles — all without human intervention.

use active_authz::{Dur, Engine, EngineError, Ts};
use sentinel::RuleClass;

const POLICY: &str = r#"
    policy "bank" {
      roles Teller, Auditor, Vault;
      users mallory, alice;
      assign alice -> Teller;
      permission open_vault = open on vault_door;
      grant open_vault -> Vault;
      active_security "probe" threshold 5 within 60s actions alert;
      active_security "storm" threshold 12 within 60s
          actions alert, disable_activity;
    }
"#;

fn engine() -> Engine {
    Engine::from_source(POLICY, Ts::ZERO).unwrap()
}

#[test]
fn threshold_rule_alerts_once_and_self_disables() {
    let mut e = engine();
    let mallory = e.user_id("mallory").unwrap();
    let vault = e.role_id("Vault").unwrap();
    let s = e.create_session(mallory, &[]).unwrap();

    // Four failed activations: below threshold, no alert.
    for _ in 0..4 {
        let _ = e.add_active_role(mallory, s, vault);
    }
    assert!(e.alerts().is_empty());
    // The fifth trips "probe".
    let _ = e.add_active_role(mallory, s, vault);
    let alerts = e.alerts();
    assert_eq!(alerts.len(), 1);
    assert!(alerts[0].contains("probe"));
    // The SEC rule disabled itself: further denials do not re-alert.
    for _ in 0..3 {
        let _ = e.add_active_role(mallory, s, vault);
    }
    assert_eq!(e.alerts().len(), 1);
    assert!(!e.pool().get_by_name("SEC_probe").unwrap().enabled);
}

#[test]
fn storm_triggers_lockdown_of_activity_rules() {
    let mut e = engine();
    let mallory = e.user_id("mallory").unwrap();
    let alice = e.user_id("alice").unwrap();
    let vault = e.role_id("Vault").unwrap();
    let teller = e.role_id("Teller").unwrap();
    let s = e.create_session(mallory, &[]).unwrap();
    let sa = e.create_session(alice, &[]).unwrap();

    for _ in 0..12 {
        let _ = e.add_active_role(mallory, s, vault);
    }
    let alerts = e.alerts();
    assert!(alerts.iter().any(|a| a.contains("storm")));
    // Activity-control rules are now disabled: even alice's legitimate
    // activation finds no rule to handle it.
    let err = e.add_active_role(alice, sa, teller).unwrap_err();
    assert!(matches!(err, EngineError::Unhandled(_)));
    // Check-access also goes dark (no CA rule → no allow).
    let open = e.system().op_by_name("open").unwrap();
    let door = e.system().obj_by_name("vault_door").unwrap();
    assert!(!e.check_access(sa, open, door).unwrap());

    // Administrator recovery: re-enable the class.
    let n = e.enable_rule_class(RuleClass::ActivityControl);
    assert!(n > 0);
    e.add_active_role(alice, sa, teller).unwrap();
}

#[test]
fn window_expiry_resets_threshold() {
    let mut e = engine();
    let mallory = e.user_id("mallory").unwrap();
    let vault = e.role_id("Vault").unwrap();
    let s = e.create_session(mallory, &[]).unwrap();
    // Three denials, then the window slides past them.
    for _ in 0..3 {
        let _ = e.add_active_role(mallory, s, vault);
    }
    e.advance(Dur::from_secs(120)).unwrap();
    for _ in 0..3 {
        let _ = e.add_active_role(mallory, s, vault);
    }
    assert!(
        e.alerts().is_empty(),
        "3 + 3 denials in separate windows stay below threshold 5"
    );
    // Two more within the second window trip it.
    for _ in 0..2 {
        let _ = e.add_active_role(mallory, s, vault);
    }
    assert_eq!(e.alerts().len(), 1);
}

#[test]
fn denials_from_check_access_count_too() {
    let mut e = engine();
    let mallory = e.user_id("mallory").unwrap();
    let s = e.create_session(mallory, &[]).unwrap();
    let open = e.system().op_by_name("open").unwrap();
    let door = e.system().obj_by_name("vault_door").unwrap();
    for _ in 0..5 {
        assert!(!e.check_access(s, open, door).unwrap());
    }
    assert_eq!(e.alerts().len(), 1, "probe tripped by access denials");
    // The audit log records the full history for the administrator report.
    assert!(e.log().denial_count() >= 5);
    let report = e.log().report();
    assert!(report.contains("ALERT"));
    assert!(report.contains("Permission Denied"));
}

#[test]
fn disable_role_reaction() {
    let src = r#"
        policy "p" {
          roles Target, Other;
          users mallory;
          active_security "cutoff" threshold 3 within 60s
              actions alert, disable_role Target;
        }
    "#;
    let mut e = Engine::from_source(src, Ts::ZERO).unwrap();
    let mallory = e.user_id("mallory").unwrap();
    let target = e.role_id("Target").unwrap();
    let s = e.create_session(mallory, &[]).unwrap();
    assert!(e.system().is_enabled(target).unwrap());
    for _ in 0..3 {
        let _ = e.add_active_role(mallory, s, target);
    }
    assert!(
        !e.system().is_enabled(target).unwrap(),
        "the SEC rule raised the disableRole event; the DISR rule applied it"
    );
    assert_eq!(e.alerts().len(), 1);
}

#[test]
fn transaction_based_activation_via_aperiodic() {
    // Rule 9's original form, wired manually on the engine's substrates:
    // JuniorEmp activations are only *observed* between Manager activation
    // and deactivation using an Aperiodic event. This exercises the event
    // algebra the generated rules build on.
    use sentinel::{attach_rule, ActionSpec, CondExpr, Rule};
    use snoop::{Detector, EventExpr, Params};

    let mut detector = Detector::new(Ts::ZERO);
    let mut pool = sentinel::RulePool::new();
    let mut state = sentinel::PermissiveState::default();
    let mut log = sentinel::AuditLog::new();

    let et16 = EventExpr::prim("managerActivated");
    let et13 = EventExpr::prim("juniorRequest");
    let et17 = EventExpr::prim("managerDeactivated");
    let asec3_event = detector
        .define(&EventExpr::aperiodic(et16, et13, et17))
        .unwrap();
    attach_rule(
        &mut detector,
        &mut pool,
        Rule::new("ASEC3", asec3_event, CondExpr::True).then(vec![ActionSpec::Custom {
            name: "activateJuniorEmp".into(),
            args: vec![],
        }]),
    );

    let exec = sentinel::Executor::new();
    let mut rt = sentinel::Runtime {
        detector: &mut detector,
        pool: &mut pool,
        state: &mut state,
        log: &mut log,
    };
    // Request before the manager window: no rule fires.
    exec.dispatch_named(&mut rt, "juniorRequest", Params::new())
        .unwrap();
    assert!(state.log.is_empty());

    let mut rt = sentinel::Runtime {
        detector: &mut detector,
        pool: &mut pool,
        state: &mut state,
        log: &mut log,
    };
    // SnoopIB sequencing is strict: separate the occurrences in time.
    exec.dispatch_named(&mut rt, "managerActivated", Params::new())
        .unwrap();
    exec.advance(&mut rt, Dur::from_secs(1)).unwrap();
    let rep = exec
        .dispatch_named(&mut rt, "juniorRequest", Params::new())
        .unwrap();
    assert_eq!(rep.fired, 1);
    exec.advance(&mut rt, Dur::from_secs(1)).unwrap();
    exec.dispatch_named(&mut rt, "managerDeactivated", Params::new())
        .unwrap();
    exec.advance(&mut rt, Dur::from_secs(1)).unwrap();
    let rep = exec
        .dispatch_named(&mut rt, "juniorRequest", Params::new())
        .unwrap();
    assert_eq!(rep.fired, 0, "terminated: the Aperiodic window closed");
    assert_eq!(state.log.len(), 1);
}
