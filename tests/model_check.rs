//! Bounded model checking of the durable OWTE stack (tier-1 for the
//! simulation subsystem).
//!
//! The centerpiece: on a small but complete enterprise — two users, an
//! SSD/DSD role pair, a GTRBAC daily enabling window, a per-role
//! activation cap, and a durable journal underneath — *no interleaving*
//! of client operations, detector timer firings and crash/restart points
//! violates separation-of-duty or loses an acknowledged journal
//! operation. And when a violation is deliberately seeded (an engine
//! built from a doctored policy, or a journal that acknowledges before
//! syncing), the checker finds it and reports a minimal replayable
//! schedule.

use owte_core::DurableConfig;
use repl::ReplConfig;
use sim::{
    explore, run_schedule, strip_sod, tiny_enterprise, tiny_ops, Budget, Choice, ClusterInvariants,
    ClusterWorld, Invariants, NetChoice, Outcome, SimOp, Strategy, Violation, World,
};
use std::collections::BTreeSet;

/// The durable config the clean sweep runs under: snapshot every 4 ops
/// so the exhaustive sweep crosses snapshot writes and log compaction,
/// not just plain appends.
fn clean_config() -> DurableConfig {
    DurableConfig {
        snapshot_every: Some(4),
        ..DurableConfig::default()
    }
}

/// Acceptance sweep: every interleaving of the 7-op client script with
/// timer firings and one crash/restart cycle — including crashes at
/// every storage-op boundary inside each client op, clean and torn —
/// satisfies every invariant.
#[test]
fn exhaustive_tiny_enterprise_is_clean() {
    let graph = tiny_enterprise();
    let world = World::new(&graph, tiny_ops(), clean_config()).expect("tiny policy instantiates");
    assert!(
        world
            .engine()
            .expect("world boots running")
            .engine()
            .next_timer_at()
            .is_some(),
        "the GTRBAC enabling window must arm a detector timer at boot, \
         or the sweep never interleaves timer firings"
    );
    // The footprint invariant must not pass vacuously: the world carries
    // the static effect report and records touches as rules execute.
    assert!(
        !world.effects().effects.is_empty(),
        "tiny enterprise produced no effect report — FootprintViolated \
         would certify nothing"
    );
    assert!(
        world
            .engine()
            .expect("world boots running")
            .engine()
            .effects_recorded(),
        "worlds must boot with effect recording armed"
    );
    let invariants = Invariants::from_reference(&graph);
    let budget = Budget {
        max_steps: 10,
        max_crashes: 1,
        max_states: 2_000_000,
        ..Budget::default()
    };
    match explore(
        &world,
        &invariants,
        Strategy::Exhaustive { reduction: true },
        budget,
    ) {
        Outcome::Clean(stats) => {
            assert!(
                stats.complete,
                "sweep must cover the whole bounded space, not give up: {stats:?}"
            );
            assert!(
                stats.explored > 100,
                "suspiciously small sweep — is the choice enumeration broken? {stats:?}"
            );
            assert!(
                stats.pruned_fingerprint > 0,
                "fingerprint dedup never fired on a space with commuting steps: {stats:?}"
            );
        }
        Outcome::Violation {
            violation,
            schedule,
            ..
        } => panic!(
            "invariant violation in the honest stack: {violation}\nschedule:\n{}",
            schedule.script(&world)
        ),
    }
}

/// Seeded-bug 1: the engine is built from the policy with its SoD sets
/// stripped, while the invariants still check the original policy. The
/// checker must catch the under-enforcing engine and shrink the failure
/// to exactly the four client ops leading to the conflicting assignment.
#[test]
fn seeded_ssd_violation_is_found_and_minimized() {
    let reference = tiny_enterprise();
    let doctored = strip_sod(tiny_enterprise());
    let world =
        World::new(&doctored, tiny_ops(), DurableConfig::default()).expect("doctored instantiates");
    let invariants = Invariants::from_reference(&reference);
    // No crash budget here: crash/restart exploration has its own tests,
    // and without it the minimal schedule is exact, not merely small.
    let budget = Budget {
        max_steps: 10,
        max_crashes: 0,
        max_states: 2_000_000,
        ..Budget::default()
    };
    let outcome = explore(
        &world,
        &invariants,
        Strategy::Exhaustive { reduction: true },
        budget,
    );
    let Outcome::Violation {
        violation,
        schedule,
        ..
    } = outcome
    else {
        panic!("stripped-SoD engine passed the original policy's invariants");
    };
    assert_eq!(
        violation,
        Violation::Ssd {
            set: "bill-audit".into(),
            user: "u1".into(),
            held: vec!["auditing".into(), "billing".into()],
        },
        "wrong violation reported"
    );
    assert_eq!(
        schedule.0,
        vec![Choice::NextOp; 4],
        "minimal schedule must be exactly the ops up to the conflicting \
         assignment (ops[3]), timers shrunk away:\n{}",
        schedule.script(&world)
    );
    // The reported schedule replays deterministically to the same
    // violation at its final step.
    let replayed = run_schedule(&world, &invariants, &schedule.0)
        .expect("minimal schedule stays enabled")
        .expect("minimal schedule still violates");
    assert_eq!(replayed, (violation, 3));
}

/// The footprint invariant certifies real evidence: running the whole
/// client script records touches from several distinct rules, every one
/// inside its statically declared footprint.
#[test]
fn footprint_certification_observes_real_touches() {
    let graph = tiny_enterprise();
    let mut world =
        World::new(&graph, tiny_ops(), DurableConfig::default()).expect("tiny policy instantiates");
    let invariants = Invariants::from_reference(&graph);
    for _ in 0..tiny_ops().len() {
        world.apply(&Choice::NextOp).expect("script step applies");
        assert!(
            invariants.check(&world).is_none(),
            "honest stack violated an invariant mid-script"
        );
    }
    let touches = world
        .engine()
        .expect("world still running")
        .engine()
        .observed_touches();
    assert!(
        !touches.is_empty(),
        "a 7-op script over an enterprise with SoD, windows and caps \
         must execute at least one rule — recording is broken"
    );
    let rules: BTreeSet<&str> = touches.iter().map(|t| t.rule.as_str()).collect();
    for rule in &rules {
        let fp = world
            .effects()
            .effect_of(rule)
            .unwrap_or_else(|| panic!("rule `{rule}` executed but has no static effect entry"));
        assert!(
            touches
                .iter()
                .filter(|t| t.rule == *rule)
                .all(|t| fp.direct.covers(t.access, &t.region)),
            "rule `{rule}` touched outside its declared direct footprint"
        );
    }
}

/// Seeded-bug: a deliberately under-declared footprint — the invariant
/// suite treats the check-access rule's declared footprint as empty while
/// the engine keeps recording its real touches. The checker must raise
/// `FootprintViolated` for exactly that rule and shrink the schedule to
/// the shortest op prefix that makes it execute.
#[test]
fn seeded_footprint_underdeclaration_is_found_and_minimized() {
    let graph = tiny_enterprise();
    let world =
        World::new(&graph, tiny_ops(), DurableConfig::default()).expect("tiny policy instantiates");
    assert!(
        world.effects().effect_of("CA").is_some(),
        "generated pool must contain the check-access rule `CA`"
    );
    let invariants = Invariants::from_reference(&graph).with_stripped_footprint("CA");
    let budget = Budget {
        max_steps: 10,
        max_crashes: 0,
        max_states: 2_000_000,
        ..Budget::default()
    };
    let outcome = explore(
        &world,
        &invariants,
        Strategy::Exhaustive { reduction: true },
        budget,
    );
    let Outcome::Violation {
        violation,
        schedule,
        ..
    } = outcome
    else {
        panic!("under-declared footprint passed the containment invariant");
    };
    let Violation::FootprintViolated { ref rule, .. } = violation else {
        panic!("wrong violation reported: {violation}");
    };
    assert_eq!(rule, "CA", "the stripped rule must be the one reported");
    // `CA` runs on the CHECK_ACCESS dispatch of ops[4]; nothing earlier
    // triggers it, so the minimal schedule is exactly the five client
    // ops up to and including the access check, timers shrunk away.
    assert_eq!(
        schedule.0,
        vec![Choice::NextOp; 5],
        "minimal schedule must stop at the first check-access op:\n{}",
        schedule.script(&world)
    );
    let replayed = run_schedule(&world, &invariants, &schedule.0)
        .expect("minimal schedule stays enabled")
        .expect("minimal schedule still violates");
    assert_eq!(replayed.0, violation);
    assert_eq!(replayed.1, 4, "violation observed on the check-access step");
    // The same schedule is clean when the declared footprints are honest.
    assert!(
        run_schedule(&world, &Invariants::from_reference(&graph), &schedule.0)
            .expect("schedule stays enabled")
            .is_none(),
        "honest footprints must cover the same execution"
    );
}

/// Seeded-bug 2: `sync_on_append: false` acknowledges journal appends
/// that are still in the page cache. The checker must find the
/// acked-but-lost window and shrink it to three steps: one acknowledged
/// operation, a power loss, a restart.
#[test]
fn seeded_durability_bug_is_found_and_minimized() {
    let graph = tiny_enterprise();
    let lossy = DurableConfig {
        sync_on_append: false,
        snapshot_every: None,
        ..DurableConfig::default()
    };
    let world = World::new(&graph, tiny_ops(), lossy).expect("tiny policy instantiates");
    let invariants = Invariants::from_reference(&graph);
    let budget = Budget {
        max_steps: 8,
        max_crashes: 1,
        max_states: 2_000_000,
        ..Budget::default()
    };
    let outcome = explore(
        &world,
        &invariants,
        Strategy::Exhaustive { reduction: true },
        budget,
    );
    let Outcome::Violation {
        violation,
        schedule,
        ..
    } = outcome
    else {
        panic!("unsynced-acknowledgement config passed the durability invariants");
    };
    assert_eq!(
        violation,
        Violation::AckedOpsLost {
            acked: 1,
            recovered: 0,
        },
        "wrong violation reported"
    );
    assert_eq!(
        schedule.0.len(),
        3,
        "minimal schedule is ack/crash/restart:\n{}",
        schedule.script(&world)
    );
    assert_eq!(
        schedule.0.last(),
        Some(&Choice::Restart),
        "the loss is observed on the recovery step"
    );
    // The canonical counterexample replays on the lossy config…
    let canonical = vec![Choice::NextOp, Choice::CrashNow, Choice::Restart];
    let (v, at) = run_schedule(&world, &invariants, &canonical)
        .expect("canonical schedule stays enabled")
        .expect("canonical schedule violates on the lossy config");
    assert_eq!(at, 2);
    assert_eq!(
        v,
        Violation::AckedOpsLost {
            acked: 1,
            recovered: 0,
        }
    );
    // …and the very same schedule is clean under durable acknowledgement.
    let honest =
        World::new(&graph, tiny_ops(), DurableConfig::default()).expect("tiny policy instantiates");
    assert!(
        run_schedule(&honest, &invariants, &canonical)
            .expect("canonical schedule stays enabled")
            .is_none(),
        "synced appends must survive the same crash point"
    );
}

/// The seeded-random walker (the CI strategy for configurations too big
/// to exhaust) also finds the durability bug, and shrinking still
/// reduces whatever long random schedule found it to the 3-step core.
#[test]
fn random_strategy_finds_durability_bug() {
    let graph = tiny_enterprise();
    let lossy = DurableConfig {
        sync_on_append: false,
        snapshot_every: None,
        ..DurableConfig::default()
    };
    let world = World::new(&graph, tiny_ops(), lossy).expect("tiny policy instantiates");
    let invariants = Invariants::from_reference(&graph);
    let budget = Budget {
        max_steps: 12,
        max_crashes: 2,
        max_schedules: 256,
        ..Budget::default()
    };
    let outcome = explore(
        &world,
        &invariants,
        Strategy::Random { seed: 0xC0FFEE },
        budget,
    );
    let Outcome::Violation {
        violation,
        schedule,
        ..
    } = outcome
    else {
        panic!("256 random schedules with crashes never lost an unsynced ack");
    };
    assert!(
        matches!(violation, Violation::AckedOpsLost { recovered: 0, .. }),
        "wrong violation reported: {violation}"
    );
    assert_eq!(
        schedule.0.len(),
        3,
        "random find must shrink to the same 3-step core:\n{}",
        schedule.script(&world)
    );
    assert_eq!(schedule.0.last(), Some(&Choice::Restart));
}

/// Validate the reduction against ground truth: on a space small enough
/// to walk raw, the pruned and unpruned exhaustive sweeps must agree on
/// the verdict, and the reduction must actually reduce.
#[test]
fn reduction_agrees_with_raw_tree_walk() {
    let graph = tiny_enterprise();
    let two_ops = tiny_ops()[..2].to_vec();
    let budget = Budget {
        max_steps: 5,
        max_crashes: 2,
        max_states: 2_000_000,
        ..Budget::default()
    };
    let invariants = Invariants::from_reference(&graph);
    let run = |reduction: bool| {
        let world = World::new(&graph, two_ops.clone(), DurableConfig::default())
            .expect("tiny policy instantiates");
        explore(
            &world,
            &invariants,
            Strategy::Exhaustive { reduction },
            budget.clone(),
        )
    };
    let (Outcome::Clean(reduced), Outcome::Clean(raw)) = (run(true), run(false)) else {
        panic!("reduced and raw sweeps must both be clean on the honest stack");
    };
    assert!(reduced.complete && raw.complete);
    assert_eq!(
        raw.pruned_fingerprint + raw.pruned_stutter,
        0,
        "the raw walk must not prune: {raw:?}"
    );
    assert!(
        reduced.pruned_fingerprint > 0 && reduced.pruned_stutter > 0,
        "both reduction rules must fire on this space: {reduced:?}"
    );
    assert!(
        reduced.explored < raw.explored,
        "reduction must shrink the explored space: {} vs {}",
        reduced.explored,
        raw.explored
    );
}

/// Replication config for the multi-node sweeps: deterministic backoff
/// (no jitter), no probabilistic faults — loss, duplication and
/// reordering are *scheduler choices*, so the explorer owns them.
fn cluster_config() -> ReplConfig {
    ReplConfig {
        jitter: false,
        ..ReplConfig::default()
    }
}

/// The multi-node acceptance sweep: on a 3-node group over the tiny
/// enterprise, every interleaving of client ops, message deliveries,
/// losses, duplicates, per-node crashes, restarts, failovers and
/// follower reads — up to the step budget — keeps every invariant: no
/// acknowledged op is lost, every node is the replay of its journaled
/// prefix, SSD/DSD/caps hold on every node, and no follower read outruns
/// the validity horizon.
#[test]
fn exhaustive_cluster_sweep_is_clean() {
    let graph = tiny_enterprise();
    let ops = vec![
        SimOp::CreateSession { user: 0 },
        SimOp::AssignUser {
            user: 1,
            role: "billing".into(),
        },
    ];
    let world =
        ClusterWorld::new(&graph, 3, ops, cluster_config()).expect("tiny cluster instantiates");
    let invariants = ClusterInvariants::from_reference(&graph);
    let budget = Budget {
        max_steps: 6,
        max_crashes: 1,
        max_states: 2_000_000,
        ..Budget::default()
    };
    match explore(
        &world,
        &invariants,
        Strategy::Exhaustive { reduction: true },
        budget,
    ) {
        Outcome::Clean(stats) => {
            assert!(
                stats.complete,
                "sweep must cover the whole bounded space: {stats:?}"
            );
            assert!(
                stats.explored > 500,
                "suspiciously small multi-node sweep: {stats:?}"
            );
            assert!(
                stats.pruned_commute > 0,
                "delivery commutation never fired on a 3-node group: {stats:?}"
            );
            assert!(
                stats.pruned_fingerprint > 0,
                "fingerprint dedup never fired: {stats:?}"
            );
        }
        Outcome::Violation {
            violation,
            schedule,
            ..
        } => panic!(
            "invariant violation in the honest cluster: {violation}\nschedule:\n{}",
            schedule.script(&world)
        ),
    }
}

/// Seeded-bug 3: `premature_ack` advances the commit index the moment
/// the *leader* journals, without waiting for follower acks — the
/// classic lost-ack bug. The checker must find it and shrink it to the
/// 3-step core: one client op, the leader dies before anyone received
/// the Append, a bare follower is promoted.
#[test]
fn cluster_seeded_premature_ack_is_found_and_minimized() {
    let graph = tiny_enterprise();
    let buggy = ReplConfig {
        premature_ack: true,
        ..cluster_config()
    };
    let ops = vec![SimOp::CreateSession { user: 0 }];
    let world = ClusterWorld::new(&graph, 2, ops, buggy).expect("tiny cluster instantiates");
    let invariants = ClusterInvariants::from_reference(&graph);
    let budget = Budget {
        max_steps: 5,
        max_crashes: 1,
        max_states: 2_000_000,
        ..Budget::default()
    };
    let outcome = explore(
        &world,
        &invariants,
        Strategy::Exhaustive { reduction: true },
        budget,
    );
    let Outcome::Violation {
        violation,
        schedule,
        ..
    } = outcome
    else {
        panic!("premature-ack cluster passed the durability invariants");
    };
    assert_eq!(
        violation,
        Violation::AckedOpsLost {
            acked: 1,
            recovered: 0,
        },
        "wrong violation reported"
    );
    assert_eq!(
        schedule.0,
        vec![
            NetChoice::ClientOp,
            NetChoice::CrashNode { node: 0 },
            NetChoice::Promote { node: 1 },
        ],
        "minimal schedule is op / leader dies / bare follower promoted:\n{}",
        schedule.script(&world)
    );
    // The minimal schedule replays deterministically to the same
    // violation on its final step…
    let replayed = run_schedule(&world, &invariants, &schedule.0)
        .expect("minimal schedule stays enabled")
        .expect("minimal schedule still violates");
    assert_eq!(replayed, (violation, 2));
    // …and the same schedule is clean when acks are honest: the honest
    // commit index never covers the op nobody replicated.
    let honest = ClusterWorld::new(&graph, 2, vec![SimOp::CreateSession { user: 0 }], {
        cluster_config()
    })
    .expect("tiny cluster instantiates");
    assert!(
        run_schedule(&honest, &invariants, &schedule.0)
            .expect("schedule stays enabled")
            .is_none(),
        "an honest commit index must survive the same crash point"
    );
}

/// Validate the delivery-commutation reduction against ground truth on
/// the cluster space: reduced and raw sweeps agree on the verdict, and
/// the reduction actually reduces.
#[test]
fn cluster_reduction_agrees_with_raw_tree_walk() {
    let graph = tiny_enterprise();
    let ops = vec![SimOp::CreateSession { user: 0 }];
    let budget = Budget {
        max_steps: 5,
        max_crashes: 1,
        max_states: 2_000_000,
        ..Budget::default()
    };
    let invariants = ClusterInvariants::from_reference(&graph);
    let run = |reduction: bool| {
        let world = ClusterWorld::new(&graph, 3, ops.clone(), cluster_config())
            .expect("tiny cluster instantiates");
        explore(
            &world,
            &invariants,
            Strategy::Exhaustive { reduction },
            budget.clone(),
        )
    };
    let (Outcome::Clean(reduced), Outcome::Clean(raw)) = (run(true), run(false)) else {
        panic!("reduced and raw cluster sweeps must both be clean on the honest stack");
    };
    assert!(reduced.complete && raw.complete);
    assert_eq!(
        raw.pruned_commute, 0,
        "the raw walk must not prune deliveries: {raw:?}"
    );
    assert!(
        reduced.pruned_commute > 0,
        "delivery commutation must fire on this space: {reduced:?}"
    );
    assert!(
        reduced.explored < raw.explored,
        "reduction must shrink the explored cluster space: {} vs {}",
        reduced.explored,
        raw.explored
    );
}
