//! End-to-end reproduction of §5's enterprise XYZ (Figure 1): high-level
//! specification → consistency → rule generation → rule-enforced workflows.

use active_authz::{Engine, EngineError, PolicyGraph, Ts};

const XYZ_DSL: &str = r#"
    policy "XYZ" {
      roles PM, PC, AM, AC, Clerk;
      users alice, bob, carol;
      hierarchy PM -> PC -> Clerk;
      hierarchy AM -> AC -> Clerk;
      ssd "purchase-approval" { PC, AC } cardinality 2;
      permission place_order = create on purchase_order;
      permission approve_order = approve on purchase_order;
      permission read_order = read on purchase_order;
      grant place_order -> PC;
      grant approve_order -> AC;
      grant read_order -> Clerk;
      assign alice -> PM;
      assign bob -> AC;
      assign carol -> Clerk;
    }
"#;

fn engine() -> Engine {
    Engine::from_source(XYZ_DSL, Ts::ZERO).unwrap()
}

#[test]
fn dsl_matches_builder_graph() {
    let parsed = policy::parse(XYZ_DSL).unwrap();
    let mut built = PolicyGraph::enterprise_xyz();
    for u in ["alice", "bob", "carol"] {
        built.user(u);
    }
    built.assign("alice", "PM");
    built.assign("bob", "AC");
    built.assign("carol", "Clerk");
    assert_eq!(parsed, built);
    assert!(policy::is_consistent(&parsed));
}

#[test]
fn generated_rules_follow_role_properties() {
    let e = engine();
    // §5: "rule corresponding to activating role PC … is similar to rule
    // AAR₂ … as role PC has static SoD and role hierarchies".
    let pool = e.pool();
    assert!(pool.get_by_name("AAR2_PC").is_some());
    assert!(pool.get_by_name("AAR2_AC").is_some());
    assert!(pool.get_by_name("AAR2_PM").is_some());
    assert!(pool.get_by_name("AAR2_Clerk").is_some());
    // Globalized check-access rule exists once.
    assert!(pool.get_by_name("CA").is_some());
    let stats = pool.stats();
    assert_eq!(stats.globalized, 3, "CA + ASSIGN + DEASSIGN");
    assert_eq!(stats.total, pool.len());
}

#[test]
fn purchase_workflow() {
    let mut e = engine();
    let alice = e.user_id("alice").unwrap();
    let pm = e.role_id("PM").unwrap();
    let create = e.system().op_by_name("create").unwrap();
    let approve = e.system().op_by_name("approve").unwrap();
    let read = e.system().op_by_name("read").unwrap();
    let po = e.system().obj_by_name("purchase_order").unwrap();

    let s = e.create_session(alice, &[pm]).unwrap();
    // PM inherits PC's create and Clerk's read, but not AC's approve.
    assert!(e.check_access(s, create, po).unwrap());
    assert!(e.check_access(s, read, po).unwrap());
    assert!(!e.check_access(s, approve, po).unwrap());
}

#[test]
fn static_sod_propagates_through_hierarchy() {
    let mut e = engine();
    let alice = e.user_id("alice").unwrap(); // assigned PM ⪰ PC
    let bob = e.user_id("bob").unwrap(); // assigned AC
    let ac = e.role_id("AC").unwrap();
    let am = e.role_id("AM").unwrap();
    let pm = e.role_id("PM").unwrap();
    let pc = e.role_id("PC").unwrap();

    // "a user assigned to the role PM cannot be assigned to the role AC":
    assert!(matches!(
        e.assign_user(alice, ac),
        Err(EngineError::Denied(_))
    ));
    // "and a user assigned to the role AM cannot be assigned to PM or PC":
    // bob holds AC (junior of AM); both PM and PC must be refused.
    assert!(e.assign_user(bob, pm).is_err());
    assert!(e.assign_user(bob, pc).is_err());
    // Conflict-free assignment still works.
    let carol = e.user_id("carol").unwrap();
    e.assign_user(carol, am).unwrap();
}

#[test]
fn activation_through_hierarchy_and_denials() {
    let mut e = engine();
    let alice = e.user_id("alice").unwrap();
    let bob = e.user_id("bob").unwrap();
    let pc = e.role_id("PC").unwrap();
    let clerk = e.role_id("Clerk").unwrap();

    // Alice (PM) may activate the junior roles PC and Clerk.
    let s = e.create_session(alice, &[]).unwrap();
    e.add_active_role(alice, s, pc).unwrap();
    e.add_active_role(alice, s, clerk).unwrap();
    // Bob (AC) may activate Clerk but not PC.
    let t = e.create_session(bob, &[]).unwrap();
    e.add_active_role(bob, t, clerk).unwrap();
    assert!(matches!(
        e.add_active_role(bob, t, pc),
        Err(EngineError::Denied(_))
    ));
    // Every denial lands in the audit log.
    assert_eq!(e.log().denial_count(), 1);
}

#[test]
fn session_isolation_and_ownership() {
    let mut e = engine();
    let alice = e.user_id("alice").unwrap();
    let bob = e.user_id("bob").unwrap();
    let clerk = e.role_id("Clerk").unwrap();
    let s_alice = e.create_session(alice, &[]).unwrap();
    // Bob cannot activate roles in Alice's session.
    assert!(matches!(
        e.add_active_role(bob, s_alice, clerk),
        Err(EngineError::Denied(_))
    ));
}

#[test]
fn rule_dump_shows_paper_syntax() {
    let e = engine();
    let dump = e.dump_rules().unwrap();
    assert!(dump.contains("RULE [ AAR2_PC"));
    assert!(dump.contains("WHEN"));
    assert!(dump.contains("(checkAuthorization(user,"));
    assert!(dump.contains("ELSE  raise error"));
    // The dump round-trips as stable golden output.
    assert_eq!(dump, e.dump_rules().unwrap());
}

#[test]
fn deactivation_and_reactivation() {
    let mut e = engine();
    let alice = e.user_id("alice").unwrap();
    let pm = e.role_id("PM").unwrap();
    let s = e.create_session(alice, &[pm]).unwrap();
    e.drop_active_role(alice, s, pm).unwrap();
    assert!(e.system().session_roles(s).unwrap().is_empty());
    // Dropping again is denied by the DAR rule's conditions.
    assert!(e.drop_active_role(alice, s, pm).is_err());
    e.add_active_role(alice, s, pm).unwrap();
    assert!(e.system().session_roles(s).unwrap().contains(&pm));
}
