//! Privacy-aware RBAC through the full engine (§4.4): purposes, purpose
//! hierarchies and object policies enforced by the generated `purpose_ok`
//! condition in the check-access rule.

use active_authz::{DirectEngine, Engine, Ts};

const CLINIC: &str = r#"
    policy "clinic" {
      roles Nurse, Doctor, Billing;
      users nina, dave, beth;
      assign nina -> Nurse;
      assign dave -> Doctor;
      assign beth -> Billing;
      permission read_record = read on patient_record;
      permission read_invoice = read on invoice;
      grant read_record -> Nurse, Doctor;
      grant read_invoice -> Billing;
      purpose care;
      purpose treatment under care;
      purpose billing;
      object_policy read on patient_record for Nurse requires treatment;
      object_policy read on patient_record for Doctor requires care;
    }
"#;

fn engine() -> Engine {
    Engine::from_source(CLINIC, Ts::ZERO).unwrap()
}

#[test]
fn purpose_required_when_policy_applies() {
    let mut e = engine();
    let nina = e.user_id("nina").unwrap();
    let nurse = e.role_id("Nurse").unwrap();
    let s = e.create_session(nina, &[nurse]).unwrap();
    let read = e.system().op_by_name("read").unwrap();
    let rec = e.system().obj_by_name("patient_record").unwrap();

    // Plain check (no purpose): denied, because an object policy applies.
    assert!(!e.check_access(s, read, rec).unwrap());
    // With the required purpose: allowed.
    assert!(e
        .check_access_for_purpose(s, read, rec, "treatment")
        .unwrap());
    // With an unrelated purpose: denied.
    assert!(!e.check_access_for_purpose(s, read, rec, "billing").unwrap());
}

#[test]
fn purpose_hierarchy_descendants_satisfy() {
    let mut e = engine();
    let dave = e.user_id("dave").unwrap();
    let doctor = e.role_id("Doctor").unwrap();
    let s = e.create_session(dave, &[doctor]).unwrap();
    let read = e.system().op_by_name("read").unwrap();
    let rec = e.system().obj_by_name("patient_record").unwrap();

    // Doctor's policy requires `care`; `treatment` is under `care`.
    assert!(e.check_access_for_purpose(s, read, rec, "care").unwrap());
    assert!(e
        .check_access_for_purpose(s, read, rec, "treatment")
        .unwrap());
    assert!(!e.check_access_for_purpose(s, read, rec, "billing").unwrap());
}

#[test]
fn unconstrained_objects_ignore_purpose() {
    let mut e = engine();
    let beth = e.user_id("beth").unwrap();
    let billing_role = e.role_id("Billing").unwrap();
    let s = e.create_session(beth, &[billing_role]).unwrap();
    let read = e.system().op_by_name("read").unwrap();
    let invoice = e.system().obj_by_name("invoice").unwrap();

    // No object policy on invoices: plain check passes on RBAC grounds.
    assert!(e.check_access(s, read, invoice).unwrap());
    // A stated purpose is harmless.
    assert!(e
        .check_access_for_purpose(s, read, invoice, "billing")
        .unwrap());
}

#[test]
fn rbac_denial_still_wins_over_purpose() {
    let mut e = engine();
    let beth = e.user_id("beth").unwrap();
    let billing_role = e.role_id("Billing").unwrap();
    let s = e.create_session(beth, &[billing_role]).unwrap();
    let read = e.system().op_by_name("read").unwrap();
    let rec = e.system().obj_by_name("patient_record").unwrap();
    // Billing has no permission on patient records at all.
    assert!(!e
        .check_access_for_purpose(s, read, rec, "treatment")
        .unwrap());
}

#[test]
fn unknown_purpose_rejected() {
    let mut e = engine();
    let nina = e.user_id("nina").unwrap();
    let nurse = e.role_id("Nurse").unwrap();
    let s = e.create_session(nina, &[nurse]).unwrap();
    let read = e.system().op_by_name("read").unwrap();
    let rec = e.system().obj_by_name("patient_record").unwrap();
    assert!(e
        .check_access_for_purpose(s, read, rec, "world_domination")
        .is_err());
}

#[test]
fn direct_baseline_agrees_on_privacy() {
    let graph = policy::parse(CLINIC).unwrap();
    let mut owte = Engine::from_policy(&graph, Ts::ZERO).unwrap();
    let mut direct = DirectEngine::from_policy(&graph, Ts::ZERO).unwrap();

    let nina = owte.user_id("nina").unwrap();
    let nurse = owte.role_id("Nurse").unwrap();
    let so = owte.create_session(nina, &[nurse]).unwrap();
    let sd = direct.create_session(nina, &[nurse]).unwrap();
    assert_eq!(so, sd);
    let read = owte.system().op_by_name("read").unwrap();
    let rec = owte.system().obj_by_name("patient_record").unwrap();

    for purpose in ["treatment", "care", "billing"] {
        assert_eq!(
            owte.check_access_for_purpose(so, read, rec, purpose)
                .unwrap(),
            direct
                .check_access_for_purpose(sd, read, rec, purpose)
                .unwrap(),
            "purpose {purpose}"
        );
    }
    assert_eq!(
        owte.check_access(so, read, rec).unwrap(),
        direct.check_access(sd, read, rec).unwrap()
    );
}
