//! Property tests for the policy DSL: `parse(print(g)) == g` over random
//! generated enterprises, and parser robustness (no panics on arbitrary
//! input).

use proptest::prelude::*;
use workload::{generate_enterprise, EnterpriseSpec};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Printer/parser round trip over the whole generator surface.
    #[test]
    fn print_parse_round_trip(
        seed in 0u64..10_000,
        roles in 2usize..40,
        hierarchy in 0.0f64..1.0,
        capped in 0.0f64..0.6,
        temporal in 0.0f64..0.6,
        duration in 0.0f64..0.6,
    ) {
        let spec = EnterpriseSpec {
            roles,
            users: roles,
            permissions: roles,
            hierarchy_density: hierarchy,
            ssd_pairs: roles / 5,
            dsd_pairs: roles / 5,
            capped_fraction: capped,
            temporal_fraction: temporal,
            duration_fraction: duration,
            ..EnterpriseSpec::default()
        };
        let g = generate_enterprise(&spec, seed);
        let text = policy::print(&g);
        let back = policy::parse(&text)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        prop_assert_eq!(g, back);
    }

    /// The parser never panics: it returns Ok or a positioned error for
    /// arbitrary printable input.
    #[test]
    fn parser_total_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = policy::parse(&s);
    }

    /// ... including near-miss inputs built from DSL vocabulary.
    #[test]
    fn parser_total_on_dsl_like_input(
        words in proptest::collection::vec(
            prop_oneof![
                Just("policy"), Just("roles"), Just("users"), Just("hierarchy"),
                Just("ssd"), Just("dsd"), Just("grant"), Just("assign"),
                Just("->"), Just("{"), Just("}"), Just(";"), Just(","),
                Just("\"x\""), Just("a"), Just("b"), Just("2"), Just("2h"),
                Just("08:00"), Just("-"), Just("="), Just("cardinality"),
            ],
            0..40,
        )
    ) {
        let src = words.join(" ");
        let _ = policy::parse(&src);
    }
}

#[test]
fn consistency_of_round_tripped_policies_is_stable() {
    // Consistency findings must be identical before and after a round trip
    // (the printer must not lose constraint information).
    for seed in 0..20 {
        let g = generate_enterprise(&EnterpriseSpec::sized(25), seed);
        let back = policy::parse(&policy::print(&g)).unwrap();
        let a: Vec<String> = policy::check(&g).into_iter().map(|i| i.message).collect();
        let b: Vec<String> = policy::check(&back)
            .into_iter()
            .map(|i| i.message)
            .collect();
        assert_eq!(a, b, "seed {seed}");
    }
}
