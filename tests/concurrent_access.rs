//! Read-path equivalence under concurrency: N reader threads racing one
//! mutator over a [`SharedEngine`] must produce exactly the state a
//! mutex-only sequential replay produces, and the lock-free fast path
//! must never leak a stale grant.

use owte_core::{Engine, SharedEngine};
use policy::PolicyGraph;
use rbac::{ObjId, OpId};
use snoop::{Dur, Ts};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn xyz_shared() -> SharedEngine {
    let mut g = PolicyGraph::enterprise_xyz();
    g.user("alice");
    g.user("bob");
    g.assign("alice", "PM");
    g.assign("bob", "AC");
    SharedEngine::new(Engine::from_policy(&g, Ts::ZERO).unwrap())
}

fn op_obj(e: &SharedEngine) -> (OpId, ObjId) {
    e.with(|e| {
        (
            e.system().op_by_name("create").unwrap(),
            e.system().obj_by_name("purchase_order").unwrap(),
        )
    })
}

/// Many readers, no writers: every decision must come out identical to
/// the locked engine's, and nearly all grants must be served lock-free.
#[test]
fn readers_agree_with_locked_engine() {
    let engine = xyz_shared();
    let alice = engine.user_id("alice").unwrap();
    let pm = engine.role_id("PM").unwrap();
    let s = engine.create_session(alice, &[pm]).unwrap();
    let (create, po) = op_obj(&engine);
    let expected = engine.with(|e| e.check_access(s, create, po).unwrap());
    assert!(expected);

    let mut handles = Vec::new();
    for _ in 0..8 {
        let e = engine.clone();
        handles.push(thread::spawn(move || {
            for _ in 0..500 {
                assert!(e.check_access(s, create, po).unwrap());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let (fast, slow) = engine.read_stats();
    assert!(
        fast >= 8 * 500,
        "grants served from the snapshot (fast {fast}, slow {slow})"
    );
}

/// N readers race one mutator that repeatedly activates/deactivates the
/// permission-carrying role. Per-read results are racy by design (reads
/// concurrent with a write may order before it); what must hold is:
/// readers only ever see decisions the engine could have produced, and
/// the final state equals a mutex-only sequential replay.
#[test]
fn readers_race_one_mutator_equivalently() {
    let engine = xyz_shared();
    let alice = engine.user_id("alice").unwrap();
    let pm = engine.role_id("PM").unwrap();
    let s = engine.create_session(alice, &[pm]).unwrap();
    let (create, po) = op_obj(&engine);

    const ROUNDS: usize = 200;
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let e = engine.clone();
        let stop = stop.clone();
        readers.push(thread::spawn(move || {
            let mut grants = 0usize;
            let mut checks = 0usize;
            while !stop.load(Ordering::Relaxed) {
                if e.check_access(s, create, po).unwrap() {
                    grants += 1;
                }
                checks += 1;
            }
            (grants, checks)
        }));
    }
    for _ in 0..ROUNDS {
        engine.drop_active_role(alice, s, pm).unwrap();
        engine.add_active_role(alice, s, pm).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_checks = 0;
    for r in readers {
        let (_, checks) = r.join().unwrap();
        total_checks += checks;
    }
    assert!(total_checks > 0);

    // Final state must equal a mutex-only sequential replay of the same
    // mutation history (the readers are decision-only and cannot have
    // perturbed it). Denial counts are not compared: racy reads may have
    // hit windows where the role was dropped, which is legal behavior.
    let replay = xyz_shared();
    let r_alice = replay.user_id("alice").unwrap();
    let r_pm = replay.role_id("PM").unwrap();
    let r_s = replay.create_session(r_alice, &[r_pm]).unwrap();
    for _ in 0..ROUNDS {
        replay.drop_active_role(r_alice, r_s, r_pm).unwrap();
        replay.add_active_role(r_alice, r_s, r_pm).unwrap();
    }
    let (roles, sessions) = engine.with(|e| {
        (
            e.system().session_roles(s).unwrap(),
            e.system().session_count(),
        )
    });
    let (r_roles, r_sessions) = replay.with(|e| {
        (
            e.system().session_roles(r_s).unwrap(),
            e.system().session_count(),
        )
    });
    assert_eq!(roles, r_roles, "active role sets diverged");
    assert_eq!(sessions, r_sessions);
    // And the post-race engine answers exactly like the replay.
    assert_eq!(
        engine.check_access(s, create, po).unwrap(),
        replay.check_access(r_s, create, po).unwrap()
    );
}

/// After a mutation completes, no reader may be served the pre-mutation
/// grant: sequential staleness check.
#[test]
fn completed_mutation_is_immediately_visible() {
    let engine = xyz_shared();
    let alice = engine.user_id("alice").unwrap();
    let pm = engine.role_id("PM").unwrap();
    let s = engine.create_session(alice, &[pm]).unwrap();
    let (create, po) = op_obj(&engine);
    for _ in 0..50 {
        assert!(engine.check_access(s, create, po).unwrap());
        engine.drop_active_role(alice, s, pm).unwrap();
        assert!(
            !engine.check_access(s, create, po).unwrap(),
            "stale snapshot grant leaked past a completed drop"
        );
        engine.add_active_role(alice, s, pm).unwrap();
    }
}

/// A snapshot whose validity is bounded by a pending Δ timer must refuse
/// to answer exactly at the horizon: the timed deactivation belongs to
/// the serialized write path, and a fast-path grant at that instant would
/// leak access the rules are about to revoke.
#[test]
fn read_exactly_on_the_horizon_takes_the_locked_path() {
    let mut g = PolicyGraph::enterprise_xyz();
    g.user("alice");
    g.assign("alice", "PM");
    g.role("PM").max_activation = Some(Dur::from_hours(2));
    let engine = SharedEngine::new(Engine::from_policy(&g, Ts::ZERO).unwrap());
    let alice = engine.user_id("alice").unwrap();
    let pm = engine.role_id("PM").unwrap();
    let s = engine.create_session(alice, &[pm]).unwrap();
    let (create, po) = op_obj(&engine);

    let snap = engine.snapshot().expect("published");
    let until = snap.valid_until().expect("Δ timer bounds the snapshot");
    assert_eq!(until, Ts::ZERO + Dur::from_hours(2));
    // Strictly inside the horizon: lock-free grant.
    let (fast0, _) = engine.read_stats();
    assert!(engine
        .check_access_at(Ts(until.0 - 1), s, create, po)
        .unwrap());
    let (fast1, slow1) = engine.read_stats();
    assert_eq!(fast1, fast0 + 1, "in-horizon read served from snapshot");

    // Exactly at the horizon: must take the locked path, which fires the
    // deactivation timer first and therefore denies.
    assert!(!engine.check_access_at(until, s, create, po).unwrap());
    let (fast2, slow2) = engine.read_stats();
    assert_eq!(fast2, fast1, "horizon read did not use the snapshot");
    assert_eq!(slow2, slow1 + 1);
    // The Δ rule deactivated PM at the horizon.
    assert!(engine.with(|e| e.system().session_roles(s).unwrap().is_empty()));
}

/// The fast path stays sound when the CA rule is disabled mid-flight
/// (active-security lockdown): reads must immediately fall back to the
/// locked path, which reports the lockdown.
#[test]
fn lockdown_disables_the_fast_path() {
    let engine = xyz_shared();
    let alice = engine.user_id("alice").unwrap();
    let pm = engine.role_id("PM").unwrap();
    let s = engine.create_session(alice, &[pm]).unwrap();
    let (create, po) = op_obj(&engine);
    assert!(engine.check_access(s, create, po).unwrap());

    engine.with(|e| {
        e.disable_rule_class(sentinel::RuleClass::ActivityControl);
    });
    // The republished snapshot failed the soundness gate, so the read
    // takes the locked path, where no enabled rule answers: not granted.
    assert!(
        !engine.check_access(s, create, po).unwrap(),
        "lockdown must not be masked by a stale snapshot grant"
    );

    engine.with(|e| {
        e.enable_rule_class(sentinel::RuleClass::ActivityControl);
    });
    assert!(engine.check_access(s, create, po).unwrap());
    let snap = engine.snapshot().unwrap();
    assert!(snap.has_fast_path(), "fast path re-armed after recovery");
}
