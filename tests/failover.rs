//! Replication robustness: convergence under a lossy transport, failover
//! that recovers from the promoted follower's own WAL and re-ships from
//! the last acked index, term fencing of rejoining stale leaders, and
//! follower reads bounded by the temporal validity horizon.
//!
//! The property tests print a one-command replay recipe on failure; a
//! failing seed tuple replays via
//!
//! ```text
//! OWTE_REPLAY_SEEDS=ent,trace,net cargo test --test failover \
//!     replay_from_env -- --ignored --nocapture
//! ```

use proptest::prelude::*;
use rbac::SessionId;
use repl::{state_matches, Cluster, NetFaultKind, NetFaultPlan, ReadOutcome, ReplConfig};
use sim::{apply_client_op, tiny_enterprise, SimOp};
use snoop::{Civil, Ts};
use workload::{generate_enterprise, generate_trace, EnterpriseSpec, TraceSpec};

fn at(h: u32, m: u32) -> Ts {
    Civil::new(2000, 1, 1, h, m, 0).to_ts()
}

fn lockstep() -> ReplConfig {
    ReplConfig {
        jitter: false,
        ..ReplConfig::default()
    }
}

/// Run `ops` through the leader, driving sessions the same way the model
/// checker does.
fn run_script(c: &mut Cluster, ops: &[SimOp], sessions: &mut [Option<SessionId>]) {
    for op in ops {
        let op = op.clone();
        c.with_leader(|d| {
            apply_client_op(d, sessions, &op);
        })
        .expect("leader is up");
    }
}

/// Assert every up follower is state-identical to the leader.
fn assert_converged(c: &Cluster, ctx: &str) {
    let li = c.leader().expect("leader up");
    let leader = c.node_engine(li).unwrap().engine();
    for n in 0..c.len() {
        if n == li || !c.is_up(n) {
            continue;
        }
        let f = c.node_engine(n).unwrap();
        assert_eq!(
            f.op_count(),
            c.node_engine(li).unwrap().op_count(),
            "{ctx}: n{n} journal length differs from leader"
        );
        assert!(
            state_matches(leader, f.engine()),
            "{ctx}: n{n} state diverged from leader"
        );
    }
}

/// Core property: whatever the transport does (drop / duplicate /
/// reorder, seeded), after settling every follower is state-identical to
/// the leader and holds exactly the leader's journal.
fn check_lossy_convergence(ent_seed: u64, trace_seed: u64, net_seed: u64) {
    let spec = EnterpriseSpec {
        roles: 4,
        users: 3,
        permissions: 4,
        ..EnterpriseSpec::default()
    };
    let graph = generate_enterprise(&spec, ent_seed);
    let trace = generate_trace(
        &TraceSpec {
            steps: 24,
            users: 3,
            roles: 4,
            objects: 4,
            ..TraceSpec::default()
        },
        trace_seed,
    );
    let ops = sim::op::from_trace(&trace);
    let config = ReplConfig {
        net: NetFaultPlan {
            p_drop: 0.35,
            p_duplicate: 0.2,
            p_reorder: 0.3,
            scripted: Vec::new(),
        },
        net_seed,
        ..ReplConfig::default()
    };
    let mut c = Cluster::new(&graph, 3, config).expect("cluster boots");
    let mut sessions = vec![None; graph.users.len()];
    run_script(&mut c, &ops, &mut sessions);
    c.settle();
    let hint = format!(
        "[ent={ent_seed} trace={trace_seed} net={net_seed}; replay: \
         OWTE_REPLAY_SEEDS={ent_seed},{trace_seed},{net_seed} cargo test --test failover \
         replay_from_env -- --ignored --nocapture]"
    );
    assert_converged(&c, &hint);
    assert_eq!(
        c.commit(),
        c.node_engine(c.leader().unwrap()).unwrap().op_count(),
        "{hint}: commit index short of the leader log after settle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Followers converge to the leader under seeded drop/duplicate/
    /// reorder faults, for random enterprises and traces.
    #[test]
    fn lossy_transport_converges(ent_seed in 0u64..1000, trace_seed in 0u64..1000, net_seed in 0u64..1000) {
        check_lossy_convergence(ent_seed, trace_seed, net_seed);
    }
}

/// Replay a failing `lossy_transport_converges` seed tuple:
///
/// ```text
/// OWTE_REPLAY_SEEDS=ent,trace,net cargo test --test failover \
///     replay_from_env -- --ignored --nocapture
/// ```
#[test]
#[ignore = "replay harness; set OWTE_REPLAY_SEEDS=ent_seed,trace_seed,net_seed"]
fn replay_from_env() {
    let raw = std::env::var("OWTE_REPLAY_SEEDS")
        .expect("set OWTE_REPLAY_SEEDS=ent_seed,trace_seed,net_seed");
    let seeds: Vec<u64> = raw
        .split(',')
        .map(|p| p.trim().parse().expect("seeds must be integers"))
        .collect();
    assert_eq!(
        seeds.len(),
        3,
        "expected 3 comma-separated seeds, got {raw:?}"
    );
    check_lossy_convergence(seeds[0], seeds[1], seeds[2]);
}

/// Scripted transport faults bite at exact send indexes, so a specific
/// lost Append is replayable byte-for-byte — the same `Scripted<K>`
/// format the storage fault injector uses.
#[test]
fn scripted_drop_is_deterministic() {
    let graph = tiny_enterprise();
    let script = |seed: u64| {
        let config = ReplConfig {
            net: NetFaultPlan::scripted_one(1, NetFaultKind::Drop),
            net_seed: seed,
            jitter: false,
            ..ReplConfig::default()
        };
        let mut c = Cluster::new(&graph, 3, config).expect("cluster boots");
        let mut sessions = vec![None; 2];
        run_script(&mut c, &[SimOp::CreateSession { user: 0 }], &mut sessions);
        c.settle();
        (c.transport().stats().dropped, c.commit())
    };
    // The scripted fault fires regardless of the probabilistic seed.
    assert_eq!(script(1), script(99));
    let (dropped, commit) = script(1);
    assert_eq!(dropped, 1, "exactly the scripted send is lost");
    assert_eq!(commit, 1, "retransmission recovers the lost Append");
}

/// The headline failover scenario: the leader dies with one follower
/// lagging; the promoted follower recovers from its own durable WAL,
/// re-ships from the last acked index, and the fenced old leader rejoins
/// as a follower of the new term.
#[test]
fn promoted_follower_reships_and_fences_old_leader() {
    let graph = tiny_enterprise();
    let mut c = Cluster::new(&graph, 3, lockstep()).expect("cluster boots");
    let mut sessions = vec![None; 2];

    // Two ops reach everyone.
    run_script(
        &mut c,
        &[
            // 09:30 — inside clerk's 09:00–17:00 enabling window.
            SimOp::Advance { secs: 34_200 },
            SimOp::CreateSession { user: 0 },
        ],
        &mut sessions,
    );
    c.settle();
    assert_eq!(c.commit(), 2);

    // Partition n2 so the next op reaches n1 only.
    c.transport_mut()
        .partition(repl::NodeId(0), repl::NodeId(2));
    run_script(
        &mut c,
        &[SimOp::AddActiveRole {
            user: 0,
            role: "clerk".into(),
        }],
        &mut sessions,
    );
    c.settle();
    assert_eq!(
        c.node_engine(1).unwrap().op_count(),
        3,
        "n1 holds the partitioned-era op"
    );
    assert_eq!(c.node_engine(2).unwrap().op_count(), 2, "n2 lags");
    let acked_n2 = c.acked_index(2);
    assert_eq!(acked_n2, 2, "leader acked n2 only through the prefix");

    // Leader dies; heal the partition; promote the up-to-date follower.
    c.crash(0).unwrap();
    c.transport_mut().heal();
    c.promote(1).unwrap();
    assert_eq!(c.leader(), Some(1));
    assert_eq!(c.term(), 2, "promotion bumps the term");
    assert_eq!(
        c.node_engine(1).unwrap().op_count(),
        3,
        "the new leader recovered its full log from its own WAL"
    );
    assert_eq!(
        c.next_index(2),
        acked_n2,
        "re-shipping to n2 resumes from its last acked index"
    );

    // The lagging follower catches up from the new leader.
    c.settle();
    assert_converged(&c, "after failover");
    assert_eq!(c.commit(), 3);

    // The old leader rejoins: recovered from its WAL, fenced to term 2,
    // and converges as a follower.
    c.restart(0).unwrap();
    assert_eq!(
        c.node_term(0),
        2,
        "rejoining node is fenced to the new term"
    );
    c.settle();
    assert_converged(&c, "after old leader rejoins");
}

/// A session created before failover keeps working after it: the
/// replicated state machine preserves session IDs, so the promoted
/// leader answers `check_access` for a session minted by its
/// predecessor.
#[test]
fn sessions_survive_failover() {
    let graph = tiny_enterprise();
    let mut c = Cluster::new(&graph, 3, lockstep()).expect("cluster boots");
    let mut sessions = vec![None; 2];
    run_script(
        &mut c,
        &[
            // 10:00 — inside clerk's 09:00–17:00 enabling window.
            SimOp::Advance { secs: 36_000 },
            SimOp::CreateSession { user: 0 },
            SimOp::AddActiveRole {
                user: 0,
                role: "clerk".into(),
            },
        ],
        &mut sessions,
    );
    c.settle();
    let s = sessions[0].expect("session created");
    c.crash(0).unwrap();
    c.promote(2).unwrap();
    c.settle();
    let (op, obj) = {
        let sys = c.node_engine(2).unwrap().engine().system();
        (
            sys.op_by_name("write").unwrap(),
            sys.obj_by_name("claims").unwrap(),
        )
    };
    assert!(
        c.check_access_via(2, s, op, obj).unwrap(),
        "the promoted leader honours a session its predecessor created"
    );
}

/// Satellite: follower staleness against the GTRBAC window flip, pinned
/// at the exact boundary. `tiny_enterprise`'s `clerk` is enabled
/// 09:00–17:00; a follower snapshot taken mid-window vouches for reads
/// strictly before the 17:00 flip and refuses at and past it.
#[test]
fn follower_refuses_reads_at_the_window_flip() {
    let graph = tiny_enterprise();
    let mut c = Cluster::new(&graph, 3, lockstep()).expect("cluster boots");
    let mut sessions = vec![None; 2];
    run_script(
        &mut c,
        &[
            // 10:00 — inside clerk's 09:00–17:00 enabling window.
            SimOp::Advance { secs: 36_000 },
            SimOp::CreateSession { user: 0 },
            SimOp::AddActiveRole {
                user: 0,
                role: "clerk".into(),
            },
        ],
        &mut sessions,
    );
    c.settle();
    let s = sessions[0].expect("session created");
    let (op, obj) = {
        let sys = c.node_engine(1).unwrap().engine().system();
        (
            sys.op_by_name("write").unwrap(),
            sys.obj_by_name("claims").unwrap(),
        )
    };

    // The follower's snapshot is valid exactly until the 17:00 flip.
    let snap = c.node_snapshot(1).expect("follower published a snapshot");
    assert_eq!(snap.valid_until(), Some(at(17, 0)));

    // Strictly inside the window: the follower answers authoritatively.
    assert_eq!(
        c.read_at(1, s, op, obj, at(16, 59)).unwrap(),
        ReadOutcome::Granted,
        "one minute before the flip the snapshot still vouches"
    );
    // At the boundary itself the snapshot can no longer vouch: the
    // DIS rule fires *at* 17:00, so the follower must refuse.
    assert_eq!(
        c.read_at(1, s, op, obj, at(17, 0)).unwrap(),
        ReadOutcome::Stale,
        "at the flip the follower degrades"
    );
    assert_eq!(
        c.read_at(1, s, op, obj, at(17, 1)).unwrap(),
        ReadOutcome::Stale,
        "past the flip the follower degrades"
    );
    assert_eq!(c.stale_reads(), 2);
}

/// Degradation end-to-end: once the leader's clock crosses the flip, a
/// routed `check_access` ignores the follower's (now stale) snapshot and
/// asks the leader — who, post-flip, denies because the DIS rule
/// disabled `clerk` and force-deactivated the session.
#[test]
fn stale_follower_degrades_to_leader_after_window_flip() {
    let graph = tiny_enterprise();
    let mut c = Cluster::new(&graph, 3, lockstep()).expect("cluster boots");
    let mut sessions = vec![None; 2];
    run_script(
        &mut c,
        &[
            // 10:00 — inside clerk's 09:00–17:00 enabling window.
            SimOp::Advance { secs: 36_000 },
            SimOp::CreateSession { user: 0 },
            SimOp::AddActiveRole {
                user: 0,
                role: "clerk".into(),
            },
        ],
        &mut sessions,
    );
    c.settle();
    let s = sessions[0].expect("session created");
    let (op, obj) = {
        let sys = c.node_engine(1).unwrap().engine().system();
        (
            sys.op_by_name("write").unwrap(),
            sys.obj_by_name("claims").unwrap(),
        )
    };

    // Mid-window, the follower's snapshot answers the routed check.
    let before = c.stale_reads();
    assert!(c.check_access_via(1, s, op, obj).unwrap());
    assert_eq!(c.stale_reads(), before, "fresh read served by the follower");

    // Partition the follower, then advance the leader across the flip:
    // the follower still holds the mid-window snapshot, but the query
    // time is now past its horizon.
    c.transport_mut()
        .partition(repl::NodeId(0), repl::NodeId(1));
    run_script(
        &mut c,
        // 10:00 → 17:30, across the flip.
        &[SimOp::Advance { secs: 27_000 }],
        &mut sessions,
    );
    c.settle();
    let granted = c.check_access_via(1, s, op, obj).unwrap();
    assert!(
        !granted,
        "post-flip the leader denies: clerk is disabled and deactivated"
    );
    assert!(
        c.stale_reads() > before,
        "the routed check counted the follower's refusal"
    );
}
