//! Property test: the sharded engine preserves single-engine semantics
//! — sharding is a pure scaling transformation.
//!
//! A [`ShardedEngine`] over 1, 2, 4 and 8 shards is driven step by step
//! through the same random workload as a single reference [`Engine`]
//! built from the same policy. After every routed (per-user) step the
//! decision must match and the step's audit delta must agree on
//! `(time, kind, rule, event)` — and on one shard, where session ids
//! cannot diverge, the *complete* audit log and id allocation must be
//! byte-identical. After the whole trace, every user's observable state
//! (live sessions, active role set), every role's enabled flag on every
//! shard, and every shard's clock must equal the reference.
//!
//! A directed test then races two users on *different* shards for a
//! cap-1 role from two threads: the coordinator's reserve/commit round
//! must let exactly one activation commit, and every constrained
//! decision must carry a distinct coordinator epoch (the total order
//! audit stamps advertise).

use owte_core::Engine;
use proptest::prelude::*;
use rbac::{RoleId, SessionId, UserId};
use sentinel::{AuditEntry, AuditKind};
use shard::{ShardSession, ShardedEngine};
use snoop::{Dur, EventId, Ts};
use std::collections::BTreeSet;
use workload::{
    drive, generate_enterprise, generate_trace, Driver, EnterpriseSpec, Step, TraceSpec,
};

/// The session-id-free audit projection compared at shard counts where
/// allocation order may legitimately differ from the reference.
type Projected = (Ts, AuditKind, Option<String>, Option<EventId>);

fn project(e: &AuditEntry) -> Projected {
    (e.time, e.kind.clone(), e.rule.clone(), e.event)
}

struct Harness {
    base: Engine,
    sharded: ShardedEngine,
    shards: usize,
    users: usize,
    /// Replay context (seeds + current step) prepended to divergence panics.
    ctx: String,
    at: String,
}

impl Harness {
    fn new(spec: &EnterpriseSpec, seed: u64, shards: usize, ctx: String) -> Harness {
        let graph = generate_enterprise(spec, seed);
        let base = Engine::from_policy(&graph, Ts::ZERO).unwrap();
        let sharded = ShardedEngine::new(&graph, shards, Ts::ZERO)
            .expect("generated enterprises carry no unshardable rules");
        Harness {
            base,
            sharded,
            shards,
            users: spec.users,
            ctx,
            at: String::new(),
        }
    }

    fn user(&self, idx: usize) -> UserId {
        self.base
            .user_id(&workload::enterprise::user_name(idx))
            .unwrap()
    }

    fn role(&self, idx: usize) -> RoleId {
        self.base
            .role_id(&workload::enterprise::role_name(idx))
            .unwrap()
    }

    fn agree(&self, base: bool, sharded: bool) {
        assert_eq!(
            base, sharded,
            "{} diverged on {} shard(s): reference {base} vs sharded {sharded} [{}]",
            self.at, self.shards, self.ctx
        );
    }

    /// Run one routed step on both engines and compare its audit delta.
    /// On one shard the full entries must match; on more, the projection
    /// (session id allocation may differ across shard-local engines).
    fn routed<B, S>(&mut self, user: UserId, on_base: B, on_sharded: S) -> (bool, bool)
    where
        B: FnOnce(&mut Engine) -> bool,
        S: FnOnce(&ShardedEngine) -> bool,
    {
        let shard = self.sharded.shard_of(user);
        let b0 = self.base.log().len();
        let s0 = self.sharded.with_engine(shard, |e| e.log().len());
        let base_ok = on_base(&mut self.base);
        let sharded_ok = on_sharded(&self.sharded);
        self.agree(base_ok, sharded_ok);
        let base_delta: Vec<AuditEntry> =
            self.base.log().entries().iter().skip(b0).cloned().collect();
        let shard_delta: Vec<AuditEntry> = self.sharded.with_engine(shard, |e| {
            e.log().entries().iter().skip(s0).cloned().collect()
        });
        if self.shards == 1 {
            assert_eq!(
                base_delta, shard_delta,
                "{}: single-shard audit delta must be byte-identical [{}]",
                self.at, self.ctx
            );
        } else {
            let b: Vec<Projected> = base_delta.iter().map(project).collect();
            let s: Vec<Projected> = shard_delta.iter().map(project).collect();
            assert_eq!(
                b, s,
                "{}: audit projection diverged on shard {shard} of {} [{}]",
                self.at, self.shards, self.ctx
            );
        }
        (base_ok, sharded_ok)
    }

    /// Compare final observable state, per user, against the reference.
    fn assert_states_equal(&self) {
        let sys = self.base.system();
        for idx in 0..self.users {
            let u = self.user(idx);
            let shard = self.sharded.shard_of(u);
            let base_active: BTreeSet<RoleId> = sys.active_roles_of_user(u).unwrap_or_default();
            let shard_active: BTreeSet<RoleId> = self.sharded.with_engine(shard, |e| {
                e.system().active_roles_of_user(u).unwrap_or_default()
            });
            assert_eq!(
                base_active, shard_active,
                "active role set of user {idx} differs on shard {shard} [{}]",
                self.ctx
            );
            let base_sessions = sys
                .all_sessions()
                .filter(|s| sys.session_user(*s).ok() == Some(u))
                .count();
            let shard_sessions = self.sharded.with_engine(shard, |e| {
                let sy = e.system();
                sy.all_sessions()
                    .filter(|s| sy.session_user(*s).ok() == Some(u))
                    .count()
            });
            assert_eq!(
                base_sessions, shard_sessions,
                "live session count of user {idx} differs [{}]",
                self.ctx
            );
        }
        for s in 0..self.shards {
            for r in sys.all_roles() {
                let base_enabled = sys.is_enabled(r).unwrap();
                let shard_enabled = self
                    .sharded
                    .with_engine(s, |e| e.system().is_enabled(r).unwrap());
                assert_eq!(
                    base_enabled, shard_enabled,
                    "enabled flag of role {r} differs on shard {s} [{}]",
                    self.ctx
                );
            }
            assert_eq!(
                self.base.now(),
                self.sharded.with_engine(s, |e| e.now()),
                "clock differs on shard {s} [{}]",
                self.ctx
            );
        }
        if self.shards == 1 {
            assert_eq!(
                self.base.log().entries(),
                &self.sharded.with_engine(0, |e| e.log().entries().clone()),
                "single-shard complete audit log must be byte-identical [{}]",
                self.ctx
            );
        }
        // Constrained decisions are totally ordered: every epoch-stamped
        // audit range across every shard carries a distinct epoch.
        let mut epochs = Vec::new();
        for s in 0..self.shards {
            epochs.extend(self.sharded.stamps(s).iter().filter_map(|st| st.epoch));
        }
        let distinct: BTreeSet<u64> = epochs.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            epochs.len(),
            "constrained ops must carry distinct coordinator epochs [{}]",
            self.ctx
        );
    }
}

impl Driver for Harness {
    type Session = (SessionId, ShardSession);

    fn on_step(&mut self, index: usize, step: &Step) {
        self.at = format!("step {index} ({})", step.describe());
    }

    fn create_session(&mut self, user: usize) -> Option<(SessionId, ShardSession)> {
        let u = self.user(user);
        let mut pair = (None, None);
        let (base_sid, shard_sess) = {
            let p = &mut pair;
            self.routed(
                u,
                |e| match e.create_session(u, &[]) {
                    Ok(sid) => {
                        p.0 = Some(sid);
                        true
                    }
                    Err(_) => false,
                },
                |sh| match sh.create_session(u, &[]) {
                    Ok(sess) => {
                        p.1 = Some(sess);
                        true
                    }
                    Err(_) => false,
                },
            );
            (pair.0, pair.1)
        };
        match (base_sid, shard_sess) {
            (Some(sid), Some(sess)) => {
                if self.shards == 1 {
                    assert_eq!(
                        sid, sess.session,
                        "single-shard session id allocation must match [{}]",
                        self.ctx
                    );
                }
                Some((sid, sess))
            }
            _ => None,
        }
    }

    fn delete_session(&mut self, user: usize, session: (SessionId, ShardSession)) {
        let u = self.user(user);
        self.routed(
            u,
            |e| e.delete_session(u, session.0).is_ok(),
            |sh| sh.delete_session(u, session.1).is_ok(),
        );
    }

    fn add_active_role(&mut self, user: usize, session: (SessionId, ShardSession), role: usize) {
        let (u, r) = (self.user(user), self.role(role));
        self.routed(
            u,
            |e| e.add_active_role(u, session.0, r).is_ok(),
            |sh| sh.add_active_role(u, session.1, r).is_ok(),
        );
    }

    fn drop_active_role(&mut self, user: usize, session: (SessionId, ShardSession), role: usize) {
        let (u, r) = (self.user(user), self.role(role));
        self.routed(
            u,
            |e| e.drop_active_role(u, session.0, r).is_ok(),
            |sh| sh.drop_active_role(u, session.1, r).is_ok(),
        );
    }

    fn check_access(&mut self, session: (SessionId, ShardSession), op: usize, obj: usize) {
        let (op_name, obj_name) = (format!("op{op}"), format!("obj{obj}"));
        let Ok(base_op) = self.base.system().op_by_name(&op_name) else {
            return;
        };
        let Ok(base_obj) = self.base.system().obj_by_name(&obj_name) else {
            return;
        };
        let Some((shard_op, shard_obj)) = self.sharded.perm_ids(&op_name, &obj_name) else {
            panic!(
                "permission vocabulary differs: {op_name}/{obj_name} [{}]",
                self.ctx
            );
        };
        // Sessions come from the driver, so the user owning them is not
        // at hand — resolve the home shard from the handle itself.
        let shard = session.1.shard;
        let b0 = self.base.log().len();
        let s0 = self.sharded.with_engine(shard, |e| e.log().len());
        let base_ok = self
            .base
            .check_access(session.0, base_op, base_obj)
            .unwrap();
        let sharded_ok = self
            .sharded
            .check_access(session.1, shard_op, shard_obj)
            .unwrap();
        self.agree(base_ok, sharded_ok);
        let base_delta: Vec<Projected> = self
            .base
            .log()
            .entries()
            .iter()
            .skip(b0)
            .map(project)
            .collect();
        let shard_delta: Vec<Projected> = self.sharded.with_engine(shard, |e| {
            e.log().entries().iter().skip(s0).map(project).collect()
        });
        assert_eq!(
            base_delta, shard_delta,
            "{}: access-check audit delta diverged [{}]",
            self.at, self.ctx
        );
    }

    fn advance(&mut self, secs: u64) {
        self.base.advance(Dur::from_secs(secs)).unwrap();
        self.sharded.advance(Dur::from_secs(secs)).unwrap();
    }

    fn set_context(&mut self, zone: &str) {
        self.base.set_context("zone", zone).unwrap();
        self.sharded.set_context("zone", zone).unwrap();
    }
}

fn run_equivalence(spec: EnterpriseSpec, ent_seed: u64, trace_seed: u64, steps: usize) {
    let trace_spec = TraceSpec {
        steps,
        users: spec.users,
        roles: spec.roles,
        objects: spec.permissions,
        w_context: if spec.context_fraction > 0.0 { 5 } else { 0 },
        ..TraceSpec::default()
    };
    let trace = generate_trace(&trace_spec, trace_seed);
    for shards in [1usize, 2, 4, 8] {
        let ctx = format!("enterprise seed {ent_seed}, trace seed {trace_seed}, {shards} shard(s)");
        let mut h = Harness::new(&spec, ent_seed, shards, ctx);
        drive(&mut h, &trace, spec.users);
        h.assert_states_equal();
    }
}

#[test]
fn sharded_equivalence_on_flat_core_rbac() {
    run_equivalence(EnterpriseSpec::flat(10), 1, 1, 300);
}

#[test]
fn sharded_equivalence_with_caps_and_temporal() {
    let spec = EnterpriseSpec {
        roles: 12,
        users: 15,
        permissions: 15,
        capped_fraction: 0.4,
        temporal_fraction: 0.4,
        duration_fraction: 0.4,
        ..EnterpriseSpec::default()
    };
    run_equivalence(spec, 2, 2, 300);
}

#[test]
fn sharded_equivalence_with_sod_and_context() {
    let spec = EnterpriseSpec {
        roles: 15,
        users: 20,
        permissions: 20,
        ssd_pairs: 2,
        dsd_pairs: 2,
        context_fraction: 0.5,
        ..EnterpriseSpec::default()
    };
    run_equivalence(spec, 3, 3, 300);
}

/// Directed race: two users on different shards of a 2-group, one
/// cap-1 role (also an SSD-set member, so the coordinator tracks its
/// membership), two OS threads racing the activation. Exactly one may
/// commit — under every thread interleaving the mutex fabric allows.
#[test]
fn racing_cross_shard_capped_activations_commit_exactly_once() {
    use policy::PolicyGraph;

    let mut g = PolicyGraph::new("race");
    g.role("Auditor").max_active_users = Some(1);
    g.role("Treasurer");
    g.ssd_set("aud-treas", &["Auditor", "Treasurer"], 2);
    for u in ["u_a", "u_b", "u_c", "u_d"] {
        g.user(u);
        g.assign(u, "Auditor");
    }

    for round in 0..16 {
        let sharded = ShardedEngine::new(&g, 2, Ts::ZERO).expect("policy shards");
        let users: Vec<UserId> = ["u_a", "u_b", "u_c", "u_d"]
            .iter()
            .map(|n| sharded.user_id(n).unwrap())
            .collect();
        let (a, b) = users
            .iter()
            .flat_map(|x| users.iter().map(move |y| (*x, *y)))
            .find(|(x, y)| sharded.shard_of(*x) != sharded.shard_of(*y))
            .expect("four users must span both shards");
        let auditor = sharded.role_id("Auditor").unwrap();
        let sa = sharded.create_session(a, &[]).unwrap();
        let sb = sharded.create_session(b, &[]).unwrap();

        let (ra, rb) = std::thread::scope(|scope| {
            let ta = scope.spawn(|| sharded.add_active_role(a, sa, auditor).is_ok());
            let tb = scope.spawn(|| sharded.add_active_role(b, sb, auditor).is_ok());
            (ta.join().unwrap(), tb.join().unwrap())
        });
        assert!(
            ra ^ rb,
            "round {round}: exactly one racing activation must commit \
             (a: {ra}, b: {rb})"
        );
        let total: usize = (0..2)
            .map(|s| {
                sharded.with_engine(s, |e| e.system().active_users_of_role(auditor).unwrap_or(0))
            })
            .sum();
        assert_eq!(total, 1, "round {round}: cap-1 must hold globally");
        // Both decisions were constrained, so both shards hold an
        // epoch-stamped audit range, and the epochs are distinct.
        let epochs: Vec<u64> = (0..2)
            .flat_map(|s| {
                sharded
                    .stamps(s)
                    .iter()
                    .filter_map(|st| st.epoch)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(epochs.len(), 2, "round {round}: both decisions stamped");
        assert_ne!(epochs[0], epochs[1], "round {round}: epochs total-order");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The headline property: arbitrary enterprise shape, arbitrary
    /// trace, shard counts 1/2/4/8 — identical decisions, equivalent
    /// audit, identical per-user final state.
    #[test]
    fn sharded_equals_single_engine(
        ent_seed in 0u64..1000,
        trace_seed in 0u64..1000,
        roles in 4usize..16,
        hierarchy in 0.0f64..1.0,
        capped in 0.0f64..0.5,
        temporal in 0.0f64..0.5,
        duration in 0.0f64..0.5,
        context in 0.0f64..0.5,
    ) {
        let spec = EnterpriseSpec {
            roles,
            users: roles + 5,
            permissions: roles + 5,
            hierarchy_density: hierarchy,
            ssd_pairs: roles / 6,
            dsd_pairs: roles / 6,
            capped_fraction: capped,
            temporal_fraction: temporal,
            duration_fraction: duration,
            context_fraction: context,
            ..EnterpriseSpec::default()
        };
        run_equivalence(spec, ent_seed, trace_seed, 200);
    }
}
