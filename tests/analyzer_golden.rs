//! Golden analyzer behaviour on the paper's Figure-1 enterprise-XYZ
//! policy: the pristine pool is clean and proved terminating; a
//! deliberately broken variant produces a stable, ordered set of
//! diagnostics.

use policy::{
    analyze, effect_dot, instantiate, rule_dependency_dot, DiagCode, PolicyGraph, Severity,
};
use sentinel::{attach_rule, ActionSpec, Check, CondExpr, Rule};
use snoop::Ts;

#[test]
fn xyz_pool_is_clean_and_proved_terminating() {
    let inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
    let report = analyze(&inst);
    assert!(report.proved_terminating());
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.rules, 5 * 4 + 3, "Figure-1 pool size");
    assert_eq!(
        report.summary(),
        format!(
            "PROVED-TERMINATING — 23 rules over {} events, 0 errors, 0 warnings",
            report.events
        )
    );
}

#[test]
fn broken_variant_produces_stable_diagnostics() {
    let mut inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
    let ca_event = inst.detector.lookup(policy::events::CHECK_ACCESS).unwrap();
    // (a) An unconditional high-priority denier on checkAccess: shadows
    //     every weaker rule on the event, including the paper's CA rule.
    attach_rule(
        &mut inst.detector,
        &mut inst.pool,
        Rule::new("DENY_ALL", ca_event, CondExpr::True)
            .then(vec![ActionSpec::RaiseError("locked down".into())])
            .priority(100),
    );
    // (b) A rule referencing event names nobody registered.
    attach_rule(
        &mut inst.detector,
        &mut inst.pool,
        Rule::new(
            "GHOST",
            ca_event,
            CondExpr::check(Check::SourceIs("no_such_event".into())),
        )
        .then(vec![ActionSpec::RaiseEvent {
            event: "also_missing".into(),
            params: vec![],
        }]),
    );
    // (c) A dead rule: its When-clause can never hold.
    attach_rule(
        &mut inst.detector,
        &mut inst.pool,
        Rule::new("DEAD", ca_event, CondExpr::False),
    );

    let report = analyze(&inst);
    assert!(report.proved_terminating(), "breakage is not a loop");
    assert_eq!(report.error_count(), 2);
    assert_eq!(report.warning_count(), 3);

    // Stable snapshot: (severity, code, anchored rules), errors first,
    // deterministic order within each severity.
    let got: Vec<(Severity, DiagCode, Vec<&str>)> = report
        .diagnostics
        .iter()
        .map(|d| {
            (
                d.severity,
                d.code,
                d.rules.iter().map(String::as_str).collect(),
            )
        })
        .collect();
    assert_eq!(
        got,
        vec![
            (Severity::Error, DiagCode::UnregisteredEvent, vec!["GHOST"]),
            (Severity::Error, DiagCode::UnregisteredEvent, vec!["GHOST"]),
            (Severity::Warning, DiagCode::UnsatisfiableWhen, vec!["DEAD"]),
            (
                Severity::Warning,
                DiagCode::ShadowedRule,
                vec!["CA", "DENY_ALL"]
            ),
            (
                Severity::Warning,
                DiagCode::ShadowedRule,
                vec!["GHOST", "DENY_ALL"]
            ),
        ],
        "{report}"
    );
    let unregistered: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == DiagCode::UnregisteredEvent)
        .flat_map(|d| d.events.iter().map(String::as_str))
        .collect();
    assert_eq!(unregistered, vec!["also_missing", "no_such_event"]);
}

#[test]
fn rule_dependency_dot_exported() {
    let inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
    let dot = rule_dependency_dot(&inst.detector, &inst.pool);
    assert!(dot.starts_with("digraph rules {"), "{dot}");
    for (_, r) in inst.pool.iter() {
        assert!(
            dot.contains(&format!("[label=\"{}\"]", r.name)),
            "missing node for {}",
            r.name
        );
    }
    // Refresh the committed artifact so `dot/rules_xyz.dot` always matches
    // the generator.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("dot");
    if dir.is_dir() {
        std::fs::write(dir.join("rules_xyz.dot"), &dot).unwrap();
    }
}

#[test]
fn effect_interference_dot_exported() {
    let inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
    let report = analyze(&inst);
    let dot = effect_dot(&report.effects);
    assert!(dot.starts_with("digraph effects {"), "{dot}");
    for (_, r) in inst.pool.iter() {
        assert!(
            dot.contains(&format!("[label=\"{}\"", r.name)),
            "missing node for {}",
            r.name
        );
    }
    // Refresh the committed artifact so `dot/effects_xyz.dot` always
    // matches the effect analyzer.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("dot");
    if dir.is_dir() {
        std::fs::write(dir.join("effects_xyz.dot"), &dot).unwrap();
    }
}
