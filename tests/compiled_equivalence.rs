//! Property test: the compiled dispatch plan and the rule interpreter make
//! **identical decisions** on random enterprises and random workload traces
//! — compilation is a pure performance transformation.
//!
//! Two full OWTE engines are built from the same policy; one keeps its
//! compiled plan, the other pins the interpreter via
//! [`Engine::set_compiled`]. Both are driven step by step through the
//! shared [`workload::drive`] runner; after every step the decision must
//! match, and after the whole trace the observable state (sessions, active
//! role sets, enabled flags) **and the complete audit log** must be equal —
//! the compiled path is required to write byte-identical audit records.

use owte_core::{Engine, EngineError};
use proptest::prelude::*;
use rbac::{RoleId, SessionId, UserId};
use snoop::{Dur, Ts};
use workload::{
    drive, generate_enterprise, generate_trace, Driver, EnterpriseSpec, Step, TraceSpec,
};

/// Decision outcome, comparable across engines.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Granted,
    Denied,
    Access(bool),
}

fn outcome(r: Result<(), EngineError>) -> Outcome {
    match r {
        Ok(()) => Outcome::Granted,
        Err(_) => Outcome::Denied,
    }
}

struct Harness {
    compiled: Engine,
    interp: Engine,
    /// Replay context (seeds + current step) prepended to divergence panics.
    ctx: String,
    at: String,
}

impl Harness {
    fn new(spec: &EnterpriseSpec, seed: u64, ctx: String) -> Harness {
        let graph = generate_enterprise(spec, seed);
        let compiled = Engine::from_policy(&graph, Ts::ZERO).unwrap();
        let mut interp = Engine::from_policy(&graph, Ts::ZERO).unwrap();
        interp.set_compiled(false);
        assert!(!interp.compiled_active());
        Harness {
            compiled,
            interp,
            ctx,
            at: String::new(),
        }
    }

    fn user(&self, idx: usize) -> UserId {
        self.compiled
            .user_id(&workload::enterprise::user_name(idx))
            .unwrap()
    }

    fn role(&self, idx: usize) -> RoleId {
        self.compiled
            .role_id(&workload::enterprise::role_name(idx))
            .unwrap()
    }

    fn agree(&self, a: Outcome, b: Outcome) {
        assert_eq!(
            a, b,
            "{} diverged: compiled {a:?} vs interpreted {b:?} [{}]",
            self.at, self.ctx
        );
    }

    /// Compare final observable state and the complete audit trail.
    fn assert_states_equal(&self) {
        let a = self.compiled.system();
        let b = self.interp.system();
        let sa: Vec<_> = a.all_sessions().collect();
        let sb: Vec<_> = b.all_sessions().collect();
        assert_eq!(sa, sb, "live session sets differ");
        for s in sa {
            assert_eq!(
                a.session_roles(s).unwrap(),
                b.session_roles(s).unwrap(),
                "active role sets differ in session {s}"
            );
        }
        for r in a.all_roles() {
            assert_eq!(
                a.is_enabled(r).unwrap(),
                b.is_enabled(r).unwrap(),
                "enabled flag differs for role {r}"
            );
        }
        assert_eq!(
            self.compiled.now(),
            self.interp.now(),
            "detector clocks differ"
        );
        assert_eq!(
            self.compiled.log().entries(),
            self.interp.log().entries(),
            "audit logs differ"
        );
    }
}

impl Driver for Harness {
    type Session = SessionId;

    fn on_step(&mut self, index: usize, step: &Step) {
        self.at = format!("step {index} ({})", step.describe());
    }

    fn create_session(&mut self, user: usize) -> Option<SessionId> {
        let u = self.user(user);
        let a = self.compiled.create_session(u, &[]);
        let b = self.interp.create_session(u, &[]);
        self.agree(Outcome::Access(a.is_ok()), Outcome::Access(b.is_ok()));
        if let (Ok(sa), Ok(sb)) = (&a, &b) {
            assert_eq!(sa, sb, "session id allocation must match");
        }
        a.ok()
    }

    fn delete_session(&mut self, user: usize, session: SessionId) {
        let u = self.user(user);
        let a = outcome(self.compiled.delete_session(u, session));
        let b = outcome(self.interp.delete_session(u, session));
        self.agree(a, b);
    }

    fn add_active_role(&mut self, user: usize, session: SessionId, role: usize) {
        let (u, r) = (self.user(user), self.role(role));
        let a = outcome(self.compiled.add_active_role(u, session, r));
        let b = outcome(self.interp.add_active_role(u, session, r));
        self.agree(a, b);
    }

    fn drop_active_role(&mut self, user: usize, session: SessionId, role: usize) {
        let (u, r) = (self.user(user), self.role(role));
        let a = outcome(self.compiled.drop_active_role(u, session, r));
        let b = outcome(self.interp.drop_active_role(u, session, r));
        self.agree(a, b);
    }

    fn check_access(&mut self, session: SessionId, op: usize, obj: usize) {
        let (Ok(op), Ok(obj)) = (
            self.compiled.system().op_by_name(&format!("op{op}")),
            self.compiled.system().obj_by_name(&format!("obj{obj}")),
        ) else {
            return;
        };
        let a = Outcome::Access(self.compiled.check_access(session, op, obj).unwrap());
        let b = Outcome::Access(self.interp.check_access(session, op, obj).unwrap());
        self.agree(a, b);
    }

    fn advance(&mut self, secs: u64) {
        self.compiled.advance(Dur::from_secs(secs)).unwrap();
        self.interp.advance(Dur::from_secs(secs)).unwrap();
    }

    fn set_context(&mut self, zone: &str) {
        self.compiled.set_context("zone", zone).unwrap();
        self.interp.set_context("zone", zone).unwrap();
    }
}

fn run_equivalence(spec: EnterpriseSpec, ent_seed: u64, trace_seed: u64, steps: usize) {
    let trace_spec = TraceSpec {
        steps,
        users: spec.users,
        roles: spec.roles,
        objects: spec.permissions,
        w_context: if spec.context_fraction > 0.0 { 5 } else { 0 },
        ..TraceSpec::default()
    };
    let trace = generate_trace(&trace_spec, trace_seed);
    let ctx = format!("enterprise seed {ent_seed}, trace seed {trace_seed}");
    let mut h = Harness::new(&spec, ent_seed, ctx);
    drive(&mut h, &trace, spec.users);
    h.assert_states_equal();
}

#[test]
fn compiled_plan_arms_on_generated_enterprises() {
    let graph = generate_enterprise(&EnterpriseSpec::flat(10), 1);
    let e = Engine::from_policy(&graph, Ts::ZERO).unwrap();
    assert!(
        e.compiled_active(),
        "verified generated pools must compile eagerly"
    );
}

#[test]
fn compiled_equivalence_on_flat_core_rbac() {
    run_equivalence(EnterpriseSpec::flat(10), 1, 1, 400);
}

#[test]
fn compiled_equivalence_with_hierarchy_and_sod() {
    let spec = EnterpriseSpec {
        roles: 15,
        users: 20,
        permissions: 20,
        hierarchy_density: 0.7,
        ssd_pairs: 2,
        dsd_pairs: 2,
        capped_fraction: 0.0,
        temporal_fraction: 0.0,
        duration_fraction: 0.0,
        ..EnterpriseSpec::default()
    };
    run_equivalence(spec, 2, 2, 400);
}

#[test]
fn compiled_equivalence_with_caps_and_temporal() {
    let spec = EnterpriseSpec {
        roles: 12,
        users: 15,
        permissions: 15,
        capped_fraction: 0.4,
        temporal_fraction: 0.4,
        duration_fraction: 0.4,
        ..EnterpriseSpec::default()
    };
    run_equivalence(spec, 3, 3, 400);
}

#[test]
fn compiled_equivalence_with_context_constraints() {
    let spec = EnterpriseSpec {
        roles: 12,
        users: 15,
        permissions: 15,
        context_fraction: 0.5,
        ..EnterpriseSpec::default()
    };
    run_equivalence(spec, 4, 4, 400);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The headline property: arbitrary enterprise shape, arbitrary trace —
    /// identical decisions, identical final state, identical audit trail.
    #[test]
    fn compiled_equals_interpreted(
        ent_seed in 0u64..1000,
        trace_seed in 0u64..1000,
        roles in 4usize..20,
        hierarchy in 0.0f64..1.0,
        capped in 0.0f64..0.5,
        temporal in 0.0f64..0.5,
        duration in 0.0f64..0.5,
        context in 0.0f64..0.5,
    ) {
        let spec = EnterpriseSpec {
            roles,
            users: roles + 5,
            permissions: roles + 5,
            hierarchy_density: hierarchy,
            ssd_pairs: roles / 6,
            dsd_pairs: roles / 6,
            capped_fraction: capped,
            temporal_fraction: temporal,
            duration_fraction: duration,
            context_fraction: context,
            ..EnterpriseSpec::default()
        };
        run_equivalence(spec, ent_seed, trace_seed, 200);
    }
}
