//! Agreement between the static analyzer's termination verdict and the
//! runtime executor: pools the analyzer proves terminating never trip the
//! executor's cascade-depth guard, and pools it flags as loopy do.

use owte_core::{Engine, EngineError};
use policy::{analyze, events, instantiate, PolicyGraph, Termination, VerifyGate};
use proptest::prelude::*;
use sentinel::{
    attach_rule, ActionSpec, AuditLog, CondExpr, Executor, PermissiveState, Rule, Runtime,
};
use snoop::{Dur, Params, Ts};
use workload::{generate_enterprise, EnterpriseSpec};

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Every generated enterprise pool is proved terminating, and driving
    /// it with the depth guard armed (gate off, `assume_acyclic` false)
    /// never cuts a cascade.
    #[test]
    fn proved_pools_never_hit_the_depth_guard(seed in 0u64..200, roles in 3usize..25) {
        let g = generate_enterprise(&EnterpriseSpec::sized(roles), seed);
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        let report = analyze(&inst);
        prop_assert!(report.proved_terminating(), "{report}");

        let mut engine = Engine::from_policy_gated(&g, Ts::ZERO, VerifyGate::Off).unwrap();
        prop_assert!(!engine.proved_acyclic(), "gate off: guard stays armed");
        let assignments = engine.policy().assignments.clone();
        for (u, r) in assignments.into_iter().take(8) {
            let uid = engine.user_id(&u).unwrap();
            let rid = engine.role_id(&r).unwrap();
            match engine.create_session(uid, &[rid]) {
                Ok(s) => {
                    let _ = engine.drop_active_role(uid, s, rid);
                }
                Err(EngineError::Denied(_)) => {} // caps/SoD/windows: fine
                Err(EngineError::Unhandled(m)) => {
                    prop_assert!(!m.contains("cascade depth"), "{m}");
                }
                Err(e) => return Err(TestCaseError::fail(e.to_string())),
            }
        }
        // Temporal cascades (Δ expiry, windows) stay bounded too.
        for _ in 0..4 {
            let rep = engine.advance(Dur::from_hours(6)).unwrap();
            for m in &rep.errors {
                prop_assert!(!m.contains("cascade depth"), "{m}");
            }
        }
    }
}

/// A rule raising its own triggering event: the analyzer must flag the
/// pool POTENTIAL-LOOP with the rule on the cycle, and the runtime guard
/// must actually cut the cascade.
#[test]
fn injected_self_loop_is_flagged_and_cut_at_runtime() {
    let mut inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
    let event_name = events::enable_role("PC");
    let ev = inst.detector.lookup(&event_name).unwrap();
    attach_rule(
        &mut inst.detector,
        &mut inst.pool,
        Rule::new("ECHO", ev, CondExpr::True)
            .then(vec![ActionSpec::RaiseEvent {
                event: event_name.clone(),
                params: vec![],
            }])
            .priority(100),
    );

    let report = analyze(&inst);
    match &report.termination {
        Termination::PotentialLoop { cycles } => {
            assert!(
                cycles.iter().any(|c| c.contains(&"ECHO".to_string())),
                "{cycles:?}"
            );
        }
        other => panic!("expected PotentialLoop, got {other:?}"),
    }
    assert!(report.error_count() > 0, "loops are Error severity");

    // Runtime agreement: the armed guard cuts the cascade at its limit.
    let exec = Executor {
        max_cascade_depth: 8,
        ..Executor::default()
    };
    let mut state = PermissiveState::default();
    let mut log = AuditLog::new();
    let mut rt = Runtime {
        detector: &mut inst.detector,
        pool: &mut inst.pool,
        state: &mut state,
        log: &mut log,
    };
    let rep = exec.dispatch(&mut rt, ev, Params::new()).unwrap();
    assert!(
        rep.errors.iter().any(|m| m.contains("cascade depth")),
        "{:?}",
        rep.errors
    );
}

/// The same loopy pool is refused end-to-end by the gated engine builder.
#[test]
fn gated_engine_refuses_what_the_analyzer_flags() {
    use policy::{InstantiateError, PostConditionSpec};
    let mut g = PolicyGraph::new("loopy");
    g.role("a");
    g.role("b");
    g.post_conditions.push(PostConditionSpec {
        role: "a".into(),
        requires: "b".into(),
    });
    g.post_conditions.push(PostConditionSpec {
        role: "b".into(),
        requires: "a".into(),
    });
    let err = Engine::from_policy(&g, Ts::ZERO).unwrap_err();
    assert!(matches!(err, InstantiateError::Rejected(_)), "{err}");
    let text = err.to_string();
    assert!(text.contains("failed verification"), "{text}");
    assert!(text.contains("rule-loop"), "{text}");
}
