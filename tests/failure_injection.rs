//! Failure injection: malformed rules, runaway cascades, buffer pressure,
//! clock misuse, entity deletion under live rules. The system must fail
//! *closed* (no grant ever results from a broken rule), log the problem,
//! and keep serving.

use sentinel::{
    attach_rule, ActionSpec, AuditKind, AuditLog, Check, CondExpr, Executor, ParamRef,
    PermissiveState, Rule, RulePool, Runtime,
};
use snoop::{Context, Detector, Dur, EventExpr, Params, Ts};

struct Fx {
    detector: Detector,
    pool: RulePool,
    state: PermissiveState,
    log: AuditLog,
}

impl Fx {
    fn new() -> Fx {
        Fx {
            detector: Detector::new(Ts::ZERO),
            pool: RulePool::new(),
            state: PermissiveState::default(),
            log: AuditLog::new(),
        }
    }

    fn rt(&mut self) -> Runtime<'_> {
        Runtime {
            detector: &mut self.detector,
            pool: &mut self.pool,
            state: &mut self.state,
            log: &mut self.log,
        }
    }
}

#[test]
fn rule_with_missing_parameter_fails_closed() {
    // An administrator hand-writes a rule whose condition reads a parameter
    // the event never carries: the condition errors, the Else (deny) path
    // runs, and the problem is logged.
    let mut fx = Fx::new();
    let e = fx.detector.primitive("op");
    attach_rule(
        &mut fx.detector,
        &mut fx.pool,
        Rule::new(
            "broken",
            e,
            CondExpr::check(Check::UserExists(ParamRef::param("ghost_param"))),
        )
        .then(vec![ActionSpec::Allow])
        .otherwise(vec![ActionSpec::RaiseError("denied".into())]),
    );
    let mut rt = fx.rt();
    let rep = Executor::new()
        .dispatch_named(&mut rt, "op", Params::new())
        .unwrap();
    assert_eq!(rep.allows, 0, "no grant from a broken rule");
    assert!(rep.denied());
    assert_eq!(rep.errors.len(), 1);
    assert_eq!(fx.log.of_kind(&AuditKind::EngineError).count(), 1);
}

#[test]
fn action_with_missing_parameter_is_logged_not_applied() {
    let mut fx = Fx::new();
    let e = fx.detector.primitive("op");
    attach_rule(
        &mut fx.detector,
        &mut fx.pool,
        Rule::new("broken", e, CondExpr::True).then(vec![ActionSpec::AddSessionRole {
            user: ParamRef::param("nope"),
            session: ParamRef::param("nope"),
            role: ParamRef::Int(1),
        }]),
    );
    let mut rt = fx.rt();
    let rep = Executor::new()
        .dispatch_named(&mut rt, "op", Params::new())
        .unwrap();
    assert_eq!(rep.errors.len(), 1);
    assert!(fx.state.log.is_empty(), "no mutation happened");
}

#[test]
fn mutually_recursive_rules_are_cut_by_depth_guard() {
    let mut fx = Fx::new();
    let ping = fx.detector.primitive("ping");
    let pong = fx.detector.primitive("pong");
    attach_rule(
        &mut fx.detector,
        &mut fx.pool,
        Rule::new("ping", ping, CondExpr::True).then(vec![ActionSpec::RaiseEvent {
            event: "pong".into(),
            params: vec![],
        }]),
    );
    attach_rule(
        &mut fx.detector,
        &mut fx.pool,
        Rule::new("pong", pong, CondExpr::True).then(vec![ActionSpec::RaiseEvent {
            event: "ping".into(),
            params: vec![],
        }]),
    );
    let exec = Executor {
        max_cascade_depth: 10,
        ..Executor::new()
    };
    let mut rt = fx.rt();
    let rep = exec.dispatch_named(&mut rt, "ping", Params::new()).unwrap();
    assert_eq!(rep.fired, 11, "initial + 10 cascade levels");
    assert_eq!(rep.errors.len(), 1, "depth guard reported once");
    // The system still works afterwards.
    let mut rt = fx.rt();
    let rep = exec.dispatch_named(&mut rt, "pong", Params::new()).unwrap();
    assert!(rep.fired >= 1);
}

#[test]
fn raise_of_unknown_event_is_an_error_not_a_panic() {
    let mut fx = Fx::new();
    let e = fx.detector.primitive("op");
    attach_rule(
        &mut fx.detector,
        &mut fx.pool,
        Rule::new("r", e, CondExpr::True).then(vec![ActionSpec::RaiseEvent {
            event: "never_defined".into(),
            params: vec![],
        }]),
    );
    let mut rt = fx.rt();
    let rep = Executor::new()
        .dispatch_named(&mut rt, "op", Params::new())
        .unwrap();
    assert_eq!(rep.errors.len(), 1);
    assert!(rep.errors[0].contains("never_defined"));
}

#[test]
fn buffer_cap_bounds_unrestricted_contexts() {
    // A hostile or buggy event source floods an Unrestricted SEQ initiator:
    // memory stays bounded by the cap and detection still works.
    let mut d = Detector::new(Ts::ZERO);
    d.set_buffer_cap(16);
    d.primitive("a");
    d.primitive("b");
    let root = d
        .define(
            &EventExpr::seq(EventExpr::named("a"), EventExpr::named("b"))
                .context(Context::Unrestricted),
        )
        .unwrap();
    d.watch(root);
    for _ in 0..10_000 {
        d.raise_named("a", Params::new()).unwrap();
        d.advance(Dur::from_micros(1)).unwrap();
    }
    let dets = d.raise_named("b", Params::new()).unwrap();
    assert_eq!(dets.len(), 16, "only the retained (capped) initiators pair");
}

#[test]
fn clock_regression_is_rejected_cleanly() {
    let mut fx = Fx::new();
    fx.detector.advance(Dur::from_secs(100)).unwrap();
    let exec = Executor::new();
    let mut rt = fx.rt();
    assert!(exec.advance_to(&mut rt, Ts::from_secs(50)).is_err());
    // State intact; the clock did not move backwards.
    assert_eq!(fx.detector.now(), Ts::from_secs(100));
}

#[test]
fn engine_survives_deleted_entities_behind_live_rules() {
    // Delete a user out from under the OWTE engine via the monitor-level
    // rules (deassign + activation attempts on stale ids must deny, not
    // panic or grant).
    use active_authz::{Engine, EngineError, PolicyGraph};
    let mut g = PolicyGraph::new("t");
    g.role("r");
    g.user("u");
    g.assign("u", "r");
    let mut e = Engine::from_policy(&g, Ts::ZERO).unwrap();
    let u = e.user_id("u").unwrap();
    let r = e.role_id("r").unwrap();
    let s = e.create_session(u, &[r]).unwrap();
    // Simulate out-of-band deletion (e.g. an HR feed) directly on ids that
    // the rules will subsequently resolve.
    e.delete_session(u, s).unwrap();
    let err = e.add_active_role(u, s, r).unwrap_err();
    assert!(matches!(err, EngineError::Denied(_)));
    let op_err = e.check_access(s, rbac::OpId(0), rbac::ObjId(0)).unwrap();
    assert!(!op_err, "stale session gets deny, not panic");
}

#[test]
fn disabled_rule_pool_fails_closed_everywhere() {
    use active_authz::{Engine, PolicyGraph};
    use sentinel::RuleClass;
    let mut g = PolicyGraph::new("t");
    g.role("r");
    g.user("u");
    g.assign("u", "r");
    g.permission("p", "read", "doc");
    g.grant("p", "r");
    let mut e = Engine::from_policy(&g, Ts::ZERO).unwrap();
    let u = e.user_id("u").unwrap();
    let r = e.role_id("r").unwrap();
    let s = e.create_session(u, &[r]).unwrap();
    let read = e.system().op_by_name("read").unwrap();
    let doc = e.system().obj_by_name("doc").unwrap();
    assert!(e.check_access(s, read, doc).unwrap());

    // Kill every rule class: all decisions become deny/unhandled.
    e.with_pool_disabled();
    assert!(!e.check_access(s, read, doc).unwrap());
    assert!(e.drop_active_role(u, s, r).is_err());
    // Recovery restores service.
    e.enable_rule_class(RuleClass::ActivityControl);
    assert!(e.check_access(s, read, doc).unwrap());
}

/// Test-support trait impl: disable everything (modelled as an extension
/// trait so the production API stays minimal).
trait DisableAll {
    fn with_pool_disabled(&mut self);
}

impl DisableAll for active_authz::Engine {
    fn with_pool_disabled(&mut self) {
        for class in [
            sentinel::RuleClass::Administrative,
            sentinel::RuleClass::ActivityControl,
            sentinel::RuleClass::ActiveSecurity,
        ] {
            self.disable_rule_class(class);
        }
    }
}
