//! Context-aware RBAC through both engines (§3's external events: "when a
//! user moves from one location to another, external events can trigger
//! some rules that activate/deactivate roles"; conditions can check
//! "whether the network is secure or insecure").

use active_authz::{DirectEngine, Engine, EngineError, Ts};

const PERVASIVE: &str = r#"
    policy "pervasive" {
      roles WardNurse, RemoteAnalyst;
      users nina, ralph;
      assign nina -> WardNurse;
      assign ralph -> RemoteAnalyst;
      permission read_chart = read on patient_chart;
      grant read_chart -> WardNurse;
      context WardNurse requires location = ward;
      context RemoteAnalyst requires network = secure;
    }
"#;

fn engine() -> Engine {
    Engine::from_source(PERVASIVE, Ts::ZERO).unwrap()
}

#[test]
fn activation_requires_context() {
    let mut e = engine();
    let nina = e.user_id("nina").unwrap();
    let nurse = e.role_id("WardNurse").unwrap();
    let s = e.create_session(nina, &[]).unwrap();

    // No location reported yet: fails closed.
    assert!(matches!(
        e.add_active_role(nina, s, nurse),
        Err(EngineError::Denied(_))
    ));
    // In the cafeteria: still denied.
    e.set_context("location", "cafeteria").unwrap();
    assert!(e.add_active_role(nina, s, nurse).is_err());
    // On the ward: allowed.
    e.set_context("location", "ward").unwrap();
    e.add_active_role(nina, s, nurse).unwrap();
}

#[test]
fn context_change_deactivates_via_ctx_rule() {
    let mut e = engine();
    let nina = e.user_id("nina").unwrap();
    let nurse = e.role_id("WardNurse").unwrap();
    e.set_context("location", "ward").unwrap();
    let s = e.create_session(nina, &[nurse]).unwrap();
    let read = e.system().op_by_name("read").unwrap();
    let chart = e.system().obj_by_name("patient_chart").unwrap();
    assert!(e.check_access(s, read, chart).unwrap());

    // She walks out: the CTX rule's *alternative action* force-deactivates.
    e.set_context("location", "hallway").unwrap();
    assert!(!e.system().session_roles(s).unwrap().contains(&nurse));
    assert!(!e.check_access(s, read, chart).unwrap());
    // Back on the ward: the role is activatable again (not auto-restored).
    e.set_context("location", "ward").unwrap();
    e.add_active_role(nina, s, nurse).unwrap();
}

#[test]
fn independent_context_keys() {
    let mut e = engine();
    let ralph = e.user_id("ralph").unwrap();
    let analyst = e.role_id("RemoteAnalyst").unwrap();
    let nina = e.user_id("nina").unwrap();
    let nurse = e.role_id("WardNurse").unwrap();
    e.set_context("location", "ward").unwrap();
    e.set_context("network", "secure").unwrap();
    let sr = e.create_session(ralph, &[analyst]).unwrap();
    let sn = e.create_session(nina, &[nurse]).unwrap();

    // The network degrades: only the analyst is kicked out.
    e.set_context("network", "insecure").unwrap();
    assert!(!e.system().session_roles(sr).unwrap().contains(&analyst));
    assert!(e.system().session_roles(sn).unwrap().contains(&nurse));
}

#[test]
fn generated_pool_contains_ctx_rules() {
    let e = engine();
    assert!(e.pool().get_by_name("CTX_WardNurse").is_some());
    assert!(e.pool().get_by_name("CTX_RemoteAnalyst").is_some());
    // Unconstrained policies have none.
    let plain = Engine::from_policy(&policy::PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
    assert!(!plain.pool().iter().any(|(_, r)| r.name.starts_with("CTX_")));
    // And the AAR rule carries the context_ok condition.
    let aar = e.pool().get_by_name("AAR1_WardNurse").unwrap();
    assert!(aar.when.to_string().contains("context_ok"));
}

#[test]
fn direct_baseline_agrees_on_context() {
    let graph = policy::parse(PERVASIVE).unwrap();
    let mut owte = Engine::from_policy(&graph, Ts::ZERO).unwrap();
    let mut direct = DirectEngine::from_policy(&graph, Ts::ZERO).unwrap();
    let nina_o = owte.user_id("nina").unwrap();
    let nina_d = direct.user_id("nina").unwrap();
    let nurse_o = owte.role_id("WardNurse").unwrap();
    let nurse_d = direct.role_id("WardNurse").unwrap();
    let so = owte.create_session(nina_o, &[]).unwrap();
    let sd = direct.create_session(nina_d, &[]).unwrap();

    for (key, value, expect_active_after) in [
        ("location", "cafeteria", false),
        ("location", "ward", true),
        ("location", "hallway", false),
    ] {
        owte.set_context(key, value).unwrap();
        direct.set_context(key, value);
        let a = owte.add_active_role(nina_o, so, nurse_o).is_ok();
        let b = direct.add_active_role(nina_d, sd, nurse_d).is_ok();
        assert_eq!(a, b, "activation decision at {key}={value}");
        assert_eq!(
            owte.system().session_roles(so).unwrap(),
            direct.sys.session_roles(sd).unwrap(),
            "state after {key}={value}"
        );
        let _ = expect_active_after;
    }
}

#[test]
fn context_round_trips_through_dsl() {
    let g = policy::parse(PERVASIVE).unwrap();
    assert_eq!(g.context_constraints.len(), 2);
    let printed = policy::print(&g);
    assert!(printed.contains("context WardNurse requires location = ward;"));
    assert_eq!(policy::parse(&printed).unwrap(), g);
    // Flags reflect the constraint.
    assert!(g.role_flags("WardNurse").context);
    assert!(!g.role_flags("WardNurse").temporal);
}

#[test]
fn policy_change_preserves_environment() {
    let mut e = engine();
    e.set_context("location", "ward").unwrap();
    // A structural change (new role) forces a rebuild…
    let mut g = policy::parse(PERVASIVE).unwrap();
    g.role("Visitor");
    let report = e.apply_policy(&g).unwrap();
    assert!(report.full_rebuild);
    // …but nina is still on the ward.
    assert_eq!(e.context().get("location"), Some("ward"));
    let nina = e.user_id("nina").unwrap();
    let nurse = e.role_id("WardNurse").unwrap();
    let s = e.create_session(nina, &[]).unwrap();
    e.add_active_role(nina, s, nurse).unwrap();
}
