//! Property test: the static effect analysis is *sound*. On random
//! enterprises driven by random workload traces, every state access the
//! executor records at runtime (condition reads, action writes, across
//! synchronous cascades) lies within the footprint the analyzer declared
//! statically for the rule that performed it.
//!
//! This is the same containment the model checker certifies exhaustively
//! on the tiny enterprise (`FootprintViolated`), replayed here as a
//! statistical sweep over much larger generated pools — constraint-heavy
//! specs so AAR variants, cardinality cascades, GTRBAC window rules and
//! context checks all execute.

use owte_core::Engine;
use proptest::prelude::*;
use rbac::SessionId;
use snoop::{Dur, Ts};
use std::collections::BTreeSet;
use workload::{generate_enterprise, generate_trace, EnterpriseSpec, Step, TraceSpec};

/// Drive one random trace through `e`, mirroring the proptest drivers
/// elsewhere (unknown names and missing sessions are silent no-ops).
fn run_trace(e: &mut Engine, trace: &[Step], users: usize) {
    let mut sessions: Vec<Option<SessionId>> = vec![None; users];
    for step in trace {
        match step {
            Step::CreateSession { user } => {
                let u = e.user_id(&workload::enterprise::user_name(*user)).unwrap();
                if let Ok(s) = e.create_session(u, &[]) {
                    sessions[*user] = Some(s);
                }
            }
            Step::DeleteSession { user } => {
                if let Some(s) = sessions[*user].take() {
                    let u = e.user_id(&workload::enterprise::user_name(*user)).unwrap();
                    let _ = e.delete_session(u, s);
                }
            }
            Step::AddActiveRole { user, role } => {
                if let Some(s) = sessions[*user] {
                    let u = e.user_id(&workload::enterprise::user_name(*user)).unwrap();
                    let r = e.role_id(&workload::enterprise::role_name(*role)).unwrap();
                    let _ = e.add_active_role(u, s, r);
                }
            }
            Step::DropActiveRole { user, role } => {
                if let Some(s) = sessions[*user] {
                    let u = e.user_id(&workload::enterprise::user_name(*user)).unwrap();
                    let r = e.role_id(&workload::enterprise::role_name(*role)).unwrap();
                    let _ = e.drop_active_role(u, s, r);
                }
            }
            Step::CheckAccess { user, op, obj } => {
                if let Some(s) = sessions[*user] {
                    let (Ok(op), Ok(obj)) = (
                        e.system().op_by_name(&format!("op{op}")),
                        e.system().obj_by_name(&format!("obj{obj}")),
                    ) else {
                        continue;
                    };
                    let _ = e.check_access(s, op, obj);
                }
            }
            Step::Advance { secs } => {
                e.advance(Dur::from_secs(*secs)).unwrap();
            }
            Step::SetContext { zone } => {
                e.set_context("zone", workload::enterprise::ZONES[*zone])
                    .unwrap();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Soundness: observed ⊆ declared, per rule, against the *direct*
    /// footprint (touches are recorded under the rule that actually ran,
    /// so the sync-closed effective footprint is not needed).
    #[test]
    fn observed_accesses_stay_within_static_footprints(
        ent_seed in 0u64..1000,
        trace_seed in 0u64..1000,
        roles in 4usize..24,
    ) {
        let spec = EnterpriseSpec {
            hierarchy_density: 0.5,
            capped_fraction: 0.3,
            temporal_fraction: 0.3,
            duration_fraction: 0.3,
            context_fraction: 0.3,
            ..EnterpriseSpec::sized(roles)
        };
        let graph = generate_enterprise(&spec, ent_seed);
        let trace = generate_trace(
            &TraceSpec {
                steps: 150,
                users: spec.users,
                roles: spec.roles,
                objects: spec.permissions,
                w_context: 5,
                ..TraceSpec::default()
            },
            trace_seed,
        );
        let mut e = Engine::from_policy(&graph, Ts::ZERO).unwrap();
        let report = e.analyze();
        prop_assert_eq!(
            report.effects.effects.len(),
            e.pool().len(),
            "the effect report must cover every generated rule"
        );
        e.record_effects(true);
        run_trace(&mut e, &trace, spec.users);
        let touches = e.observed_touches();
        prop_assert!(
            !touches.is_empty(),
            "a 150-step trace over a constraint-heavy enterprise must \
             execute rules — effect recording is broken"
        );
        for t in touches {
            let fp = report.effects.effect_of(&t.rule).unwrap_or_else(|| {
                panic!("rule `{}` executed but has no static effect entry", t.rule)
            });
            prop_assert!(
                fp.direct.covers(t.access, &t.region),
                "rule `{}`: observed {} of {} is outside its declared \
                 direct footprint (reads {:?}, writes {:?}, opaque {})",
                t.rule, t.access, t.region,
                fp.direct.reads, fp.direct.writes, fp.direct.opaque
            );
        }
        // The recorded evidence is not trivial either: generated pools
        // mix read-only access checks with state-mutating cascades.
        let kinds: BTreeSet<_> = touches.iter().map(|t| t.access).collect();
        prop_assert!(
            kinds.contains(&sentinel::Access::Read),
            "no condition read was ever recorded"
        );
    }
}
