//! Safety invariants of the *rule-driven* engine: no sequence of public
//! operations (including clock advances that fire temporal rules, context
//! changes, and policy regeneration) may leave the monitor in a state that
//! violates SoD, hierarchy, session or temporal invariants.

use owte_core::Engine;
use proptest::prelude::*;
use rbac::SessionId;
use snoop::{Dur, Ts};
use workload::{generate_enterprise, generate_trace, EnterpriseSpec, Step, TraceSpec};

fn check_invariants(e: &Engine) {
    let sys = e.system();
    // SSD over authorized roles.
    for id in sys.all_ssd_sets() {
        let (name, roles, n) = sys.ssd_set_info(id).unwrap();
        for u in sys.all_users() {
            let auth = sys.authorized_roles(u).unwrap();
            assert!(
                auth.intersection(&roles).count() < n,
                "SSD `{name}` violated for {u}"
            );
        }
    }
    // DSD over per-session active sets.
    for id in sys.all_dsd_sets() {
        let (name, roles, n) = sys.dsd_set_info(id).unwrap();
        for s in sys.all_sessions() {
            let active = sys.session_roles(s).unwrap();
            assert!(
                active.intersection(&roles).count() < n,
                "DSD `{name}` violated in {s}"
            );
        }
    }
    // Sessions only contain authorized roles of their owner.
    for s in sys.all_sessions() {
        let owner = sys.session_user(s).unwrap();
        for &r in &sys.session_roles(s).unwrap() {
            assert!(sys.is_authorized(owner, r).unwrap());
        }
    }
    // Temporal: a role with an enabling window must have the enabled flag
    // the window dictates (the calendar rules keep them in sync at all
    // observation points).
    for (name, id) in e.binding().roles.iter() {
        let node = e.policy().role_node(name).expect("policy role");
        if let Some(w) = &node.enabling {
            // Only check when no manual disable/enable has raced the
            // window: the generated policies never issue those, so the flag
            // must track the window exactly.
            let expected = gtrbac::PeriodicWindow::daily(w.start_h, w.start_m, w.end_h, w.end_m)
                .contains(e.now());
            assert_eq!(
                sys.is_enabled(*id).unwrap(),
                expected,
                "role {name} enabled flag diverged from its window at {}",
                e.now()
            );
        }
        // Δ-bounded roles: no activation may outlive its Δ. We can't see
        // activation ages directly, but after a long advance with no
        // intervening activations every Δ-bounded role must be inactive —
        // checked by the dedicated step below.
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn rule_driven_engine_preserves_invariants(
        ent_seed in 0u64..300,
        trace_seed in 0u64..300,
    ) {
        let spec = EnterpriseSpec {
            roles: 10,
            users: 12,
            permissions: 12,
            hierarchy_density: 0.5,
            ssd_pairs: 2,
            dsd_pairs: 2,
            capped_fraction: 0.3,
            temporal_fraction: 0.3,
            duration_fraction: 0.3,
            context_fraction: 0.3,
            ..EnterpriseSpec::default()
        };
        let graph = generate_enterprise(&spec, ent_seed);
        let trace = generate_trace(
            &TraceSpec {
                steps: 120,
                users: spec.users,
                roles: spec.roles,
                objects: spec.permissions,
                w_context: 5,
                ..TraceSpec::default()
            },
            trace_seed,
        );
        let mut e = Engine::from_policy(&graph, Ts::ZERO).unwrap();
        let mut sessions: Vec<Option<SessionId>> = vec![None; spec.users];
        check_invariants(&e);
        for step in &trace {
            match step {
                Step::CreateSession { user } => {
                    let u = e.user_id(&workload::enterprise::user_name(*user)).unwrap();
                    if let Ok(s) = e.create_session(u, &[]) {
                        sessions[*user] = Some(s);
                    }
                }
                Step::DeleteSession { user } => {
                    if let Some(s) = sessions[*user].take() {
                        let u = e.user_id(&workload::enterprise::user_name(*user)).unwrap();
                        let _ = e.delete_session(u, s);
                    }
                }
                Step::AddActiveRole { user, role } => {
                    if let Some(s) = sessions[*user] {
                        let u = e.user_id(&workload::enterprise::user_name(*user)).unwrap();
                        let r = e.role_id(&workload::enterprise::role_name(*role)).unwrap();
                        let _ = e.add_active_role(u, s, r);
                    }
                }
                Step::DropActiveRole { user, role } => {
                    if let Some(s) = sessions[*user] {
                        let u = e.user_id(&workload::enterprise::user_name(*user)).unwrap();
                        let r = e.role_id(&workload::enterprise::role_name(*role)).unwrap();
                        let _ = e.drop_active_role(u, s, r);
                    }
                }
                Step::CheckAccess { user, op, obj } => {
                    if let Some(s) = sessions[*user] {
                        let (Ok(op), Ok(obj)) = (
                            e.system().op_by_name(&format!("op{op}")),
                            e.system().obj_by_name(&format!("obj{obj}")),
                        ) else {
                            continue;
                        };
                        let _ = e.check_access(s, op, obj);
                    }
                }
                Step::Advance { secs } => {
                    e.advance(Dur::from_secs(*secs)).unwrap();
                }
                Step::SetContext { zone } => {
                    e.set_context("zone", workload::enterprise::ZONES[*zone]).unwrap();
                }
            }
            check_invariants(&e);
        }
        // Final: after a Δ-long quiet period every duration-bounded role is
        // fully deactivated by the DELTA rules.
        e.advance(Dur::from_hours(5)).unwrap();
        for (name, id) in e.binding().roles.iter() {
            let node = e.policy().role_node(name).expect("policy role");
            if node.max_activation.is_some() {
                prop_assert_eq!(
                    e.system().active_users_of_role(*id).unwrap(),
                    0,
                    "Δ-bounded role {} still active after quiet period",
                    name
                );
            }
        }
    }
}
