//! TRBAC role triggers through the full stack (Bertino et al.; the paper's
//! §6 positions OWTE rules as subsuming them): DSL → generated TRIG rules
//! on status events → guarded enable/disable requests, immediate and
//! delayed — with the direct baseline agreeing.

use active_authz::{DirectEngine, Dur, Engine, Ts};

const POLICY: &str = r#"
    policy "triggers" {
      roles Primary, Standby, Audit, Archive;
      # When Primary goes down, bring Standby up (immediate).
      trigger "failover" on disable Primary then enable Standby;
      # When Primary comes back while Standby is up, retire Standby 10m later.
      trigger "failback" on enable Primary when enabled Standby
          then disable Standby after 10m;
      # Enabling Audit requires archiving to start too.
      trigger "couple" on enable Audit then enable Archive;
    }
"#;

fn owte() -> Engine {
    let mut e = Engine::from_source(POLICY, Ts::ZERO).unwrap();
    // Baseline state for the scenarios: standby + audit + archive down.
    for r in ["Standby", "Audit", "Archive"] {
        let id = e.role_id(r).unwrap();
        e.disable_role(id).unwrap();
    }
    e
}

fn direct() -> DirectEngine {
    let g = policy::parse(POLICY).unwrap();
    let mut e = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
    for r in ["Standby", "Audit", "Archive"] {
        let id = e.role_id(r).unwrap();
        e.disable_role(id).unwrap();
    }
    e
}

#[test]
fn immediate_trigger_fires_on_status_event() {
    let mut e = owte();
    let primary = e.role_id("Primary").unwrap();
    let standby = e.role_id("Standby").unwrap();
    assert!(!e.system().is_enabled(standby).unwrap());
    // Disable Primary → the failover trigger enables Standby.
    e.disable_role(primary).unwrap();
    assert!(e.system().is_enabled(standby).unwrap());
}

#[test]
fn conditional_delayed_trigger() {
    let mut e = owte();
    let primary = e.role_id("Primary").unwrap();
    let standby = e.role_id("Standby").unwrap();
    e.disable_role(primary).unwrap(); // failover: standby up
                                      // Primary returns: failback arms (condition "Standby enabled" holds),
                                      // action fires 10 minutes later.
    e.enable_role(primary).unwrap();
    assert!(e.system().is_enabled(standby).unwrap(), "not yet");
    e.advance(Dur::from_mins(9)).unwrap();
    assert!(e.system().is_enabled(standby).unwrap(), "still armed");
    e.advance(Dur::from_mins(2)).unwrap();
    assert!(!e.system().is_enabled(standby).unwrap(), "retired after Δ");
}

#[test]
fn condition_blocks_trigger() {
    let mut e = owte();
    let primary = e.role_id("Primary").unwrap();
    let standby = e.role_id("Standby").unwrap();
    // Re-enabling Primary while Standby is DOWN: failback's condition
    // fails, nothing is scheduled.
    e.disable_role(standby).err(); // already disabled; ignore
    e.disable_role(primary).unwrap(); // brings standby up (failover!)
    e.disable_role(standby).unwrap(); // force it down again
    e.enable_role(primary).unwrap();
    e.advance(Dur::from_mins(20)).unwrap();
    assert!(!e.system().is_enabled(standby).unwrap());
}

#[test]
fn trigger_cascades_are_bounded_and_guarded() {
    let mut e = owte();
    let audit = e.role_id("Audit").unwrap();
    let archive = e.role_id("Archive").unwrap();
    e.enable_role(audit).unwrap();
    assert!(e.system().is_enabled(archive).unwrap(), "couple trigger");
}

#[test]
fn direct_baseline_agrees() {
    let mut a = owte();
    let mut b = direct();
    let steps: Vec<(&str, bool)> = vec![
        ("Primary", false), // disable → failover
        ("Primary", true),  // enable → failback arms
        ("Audit", true),    // couple
    ];
    for (role, enable) in steps {
        let ra = a.role_id(role).unwrap();
        let rb = b.role_id(role).unwrap();
        if enable {
            let _ = a.enable_role(ra);
            let _ = b.enable_role(rb);
        } else {
            let _ = a.disable_role(ra);
            let _ = b.disable_role(rb);
        }
    }
    a.advance(Dur::from_mins(15)).unwrap();
    b.advance(Dur::from_mins(15)).unwrap();
    for role in ["Primary", "Standby", "Audit", "Archive"] {
        let ra = a.role_id(role).unwrap();
        let rb = b.role_id(role).unwrap();
        assert_eq!(
            a.system().is_enabled(ra).unwrap(),
            b.sys.is_enabled(rb).unwrap(),
            "role {role}"
        );
    }
}

#[test]
fn trigger_dsl_round_trips_and_checks() {
    let g = policy::parse(POLICY).unwrap();
    assert_eq!(g.triggers.len(), 3);
    let printed = policy::print(&g);
    assert!(printed.contains("trigger \"failover\" on disable Primary then enable Standby;"));
    assert!(printed
        .contains("trigger \"failback\" on enable Primary when enabled Standby then disable Standby after 10m;"));
    assert_eq!(policy::parse(&printed).unwrap(), g);
    // Self-feeding immediate trigger is rejected.
    let bad = r#"policy "p" { roles A; trigger "loop" on enable A then enable A; }"#;
    let g = policy::parse(bad).unwrap();
    assert!(!policy::is_consistent(&g));
    // Flags mark trigger participants as active-security roles.
    let g = policy::parse(POLICY).unwrap();
    assert!(g.role_flags("Primary").active_security);
    assert!(g.role_flags("Standby").active_security);
}

#[test]
fn generated_trigger_rules_visible_in_pool() {
    let e = owte();
    assert!(e.pool().get_by_name("TRIG_failover").is_some());
    assert!(e.pool().get_by_name("TRIG_failback").is_some());
    assert!(
        e.pool().get_by_name("TRIGD_failback").is_some(),
        "delayed half"
    );
    let text = e.rule_text("TRIG_failover").unwrap();
    assert!(text.contains("ON    roleDisabled_Primary"), "{text}");
    assert!(text.contains("raiseEvent(enableRole_Standby)"));
}
