//! GTRBAC scenarios through the full OWTE engine (§4.3.2): shift windows,
//! Δ-bounded activations (Rule 7), disabling-time SoD (Rule 6),
//! post-condition CFDs (Rule 8) and prerequisite activation (Rule 9).

use active_authz::{Civil, Dur, Engine, EngineError, Ts};

const HOSPITAL: &str = r#"
    policy "hospital" {
      roles Doctor, Nurse, DayDoctor, SysAdmin, SysAudit, Manager, JuniorEmp;
      users bob, jane, dana;
      assign bob -> Doctor, Nurse, DayDoctor;
      assign jane -> Manager;
      assign dana -> JuniorEmp;
      enable DayDoctor daily 08:00-16:00;
      max_activation Nurse 2h;
      max_activation Doctor for bob 4h;
      disabling_sod "availability" { Doctor, Nurse } daily 10:00-17:00;
      post_condition SysAdmin requires SysAudit;
      prerequisite JuniorEmp requires_active Manager;
    }
"#;

fn engine_at(h: u32, m: u32) -> Engine {
    Engine::from_source(HOSPITAL, Civil::new(2000, 1, 5, h, m, 0).to_ts()).unwrap()
}

fn at(h: u32, m: u32) -> Ts {
    Civil::new(2000, 1, 5, h, m, 0).to_ts()
}

#[test]
fn shift_window_enables_and_disables_via_calendar_rules() {
    let mut e = engine_at(6, 0);
    let bob = e.user_id("bob").unwrap();
    let day = e.role_id("DayDoctor").unwrap();
    let s = e.create_session(bob, &[]).unwrap();

    // 6 a.m.: outside the 8–16 shift → the AAR rule's enabled-check denies.
    assert!(matches!(
        e.add_active_role(bob, s, day),
        Err(EngineError::Denied(_))
    ));
    // Advance to 9 a.m.: the calendar ENA rule fired at 8:00.
    e.advance_to(at(9, 0)).unwrap();
    assert!(e.system().is_enabled(day).unwrap());
    e.add_active_role(bob, s, day).unwrap();
    // Advance past 16:00: the DIS rule disables and force-deactivates.
    e.advance_to(at(17, 0)).unwrap();
    assert!(!e.system().is_enabled(day).unwrap());
    assert!(!e.system().session_roles(s).unwrap().contains(&day));
    // Next morning it re-enables.
    e.advance_to(Civil::new(2000, 1, 6, 9, 0, 0).to_ts())
        .unwrap();
    assert!(e.system().is_enabled(day).unwrap());
}

#[test]
fn rule7_delta_deactivates_after_duration() {
    let mut e = engine_at(6, 0);
    let bob = e.user_id("bob").unwrap();
    let nurse = e.role_id("Nurse").unwrap();
    let s = e.create_session(bob, &[nurse]).unwrap();

    e.advance(Dur::from_mins(90)).unwrap();
    assert!(e.system().session_roles(s).unwrap().contains(&nurse));
    e.advance(Dur::from_mins(40)).unwrap();
    assert!(
        !e.system().session_roles(s).unwrap().contains(&nurse),
        "the PLUS(sessionRoleAdded, 2h) rule deactivated the role"
    );
}

#[test]
fn rule7_manual_drop_cancels_delta_timer() {
    let mut e = engine_at(6, 0);
    let bob = e.user_id("bob").unwrap();
    let nurse = e.role_id("Nurse").unwrap();
    let s = e.create_session(bob, &[nurse]).unwrap();
    e.advance(Dur::from_hours(1)).unwrap();
    // Manual drop raises sessionRoleDropped → the CANCEL rule retracts the
    // pending PLUS timer.
    e.drop_active_role(bob, s, nurse).unwrap();
    e.add_active_role(bob, s, nurse).unwrap();
    // At the 2h mark of the FIRST activation, nothing may happen.
    e.advance(Dur::from_hours(1)).unwrap();
    assert!(e.system().session_roles(s).unwrap().contains(&nurse));
    // The second activation expires on its own schedule.
    e.advance(Dur::from_hours(1)).unwrap();
    assert!(!e.system().session_roles(s).unwrap().contains(&nurse));
}

#[test]
fn rule7_per_user_delta() {
    // Bob's Doctor activations are bounded at 4h (specialized rule);
    // other users' are unbounded.
    let mut e = engine_at(6, 0);
    let bob = e.user_id("bob").unwrap();
    let doctor = e.role_id("Doctor").unwrap();
    let jane = e.user_id("jane").unwrap();
    e.assign_user(jane, doctor).unwrap();

    let sb = e.create_session(bob, &[doctor]).unwrap();
    let sj = e.create_session(jane, &[doctor]).unwrap();
    e.advance(Dur::from_hours(5)).unwrap();
    assert!(
        !e.system().session_roles(sb).unwrap().contains(&doctor),
        "bob's specialized Δ rule fired"
    );
    assert!(
        e.system().session_roles(sj).unwrap().contains(&doctor),
        "jane is not constrained"
    );
}

#[test]
fn rule6_disabling_time_sod() {
    let mut e = engine_at(12, 0); // inside the 10–17 SoD window
    let doctor = e.role_id("Doctor").unwrap();
    let nurse = e.role_id("Nurse").unwrap();

    // Disabling Doctor first is fine (Nurse still enabled).
    e.disable_role(doctor).unwrap();
    // Now Nurse cannot be disabled inside the window.
    let err = e.disable_role(nurse).unwrap_err();
    assert!(matches!(err, EngineError::Denied(_)));
    assert!(e.system().is_enabled(nurse).unwrap());
    // Outside the window (18:00) the constraint does not apply.
    e.advance_to(at(18, 0)).unwrap();
    e.disable_role(nurse).unwrap();
    assert!(!e.system().is_enabled(nurse).unwrap());
}

#[test]
fn rule8_post_condition_cfd() {
    let mut e = engine_at(12, 0);
    let sysadmin = e.role_id("SysAdmin").unwrap();
    let sysaudit = e.role_id("SysAudit").unwrap();
    // Start with both disabled (outside any window; disable via requests).
    e.disable_role(sysaudit).unwrap();
    e.disable_role(sysadmin).unwrap();

    // Enabling SysAdmin cascades to SysAudit (CFD₁ raises its event).
    e.enable_role(sysadmin).unwrap();
    assert!(e.system().is_enabled(sysadmin).unwrap());
    assert!(
        e.system().is_enabled(sysaudit).unwrap(),
        "post-condition: SysAudit enabled with SysAdmin"
    );
}

#[test]
fn rule9_prerequisite_activation_and_cascade() {
    let mut e = engine_at(12, 0);
    let jane = e.user_id("jane").unwrap();
    let dana = e.user_id("dana").unwrap();
    let manager = e.role_id("Manager").unwrap();
    let junior = e.role_id("JuniorEmp").unwrap();

    let sd = e.create_session(dana, &[]).unwrap();
    // No manager active anywhere: JuniorEmp activation denied.
    assert!(matches!(
        e.add_active_role(dana, sd, junior),
        Err(EngineError::Denied(_))
    ));
    // Manager activates; now JuniorEmp may.
    let sj = e.create_session(jane, &[manager]).unwrap();
    e.add_active_role(dana, sd, junior).unwrap();
    // Manager deactivates → the PREDROP rule deactivates JuniorEmp
    // everywhere ("if the role Manager is deactivated, then role JuniorEmp
    // should also be deactivated").
    e.drop_active_role(jane, sj, manager).unwrap();
    assert!(!e.system().session_roles(sd).unwrap().contains(&junior));
    // And future activation is blocked again.
    assert!(e.add_active_role(dana, sd, junior).is_err());
}

#[test]
fn rule9_cascade_only_when_no_manager_left() {
    let mut e = engine_at(12, 0);
    let jane = e.user_id("jane").unwrap();
    let dana = e.user_id("dana").unwrap();
    let manager = e.role_id("Manager").unwrap();
    let junior = e.role_id("JuniorEmp").unwrap();

    let s1 = e.create_session(jane, &[manager]).unwrap();
    let s2 = e.create_session(jane, &[manager]).unwrap();
    let sd = e.create_session(dana, &[junior]).unwrap();
    // Dropping one of two manager sessions must NOT cascade.
    e.drop_active_role(jane, s1, manager).unwrap();
    assert!(e.system().session_roles(sd).unwrap().contains(&junior));
    e.drop_active_role(jane, s2, manager).unwrap();
    assert!(!e.system().session_roles(sd).unwrap().contains(&junior));
}

#[test]
fn shift_change_regeneration_under_load() {
    // §5's policy-change scenario with live sessions: 8–16 becomes 9–17.
    let mut e = engine_at(8, 30);
    let bob = e.user_id("bob").unwrap();
    let day = e.role_id("DayDoctor").unwrap();
    let s = e.create_session(bob, &[day]).unwrap();
    assert!(e.system().session_roles(s).unwrap().contains(&day));

    let mut new = policy::parse(HOSPITAL).unwrap();
    new.role("DayDoctor").enabling = Some(policy::DailyWindow {
        start_h: 9,
        start_m: 0,
        end_h: 17,
        end_m: 0,
    });
    let report = e.apply_policy(&new).unwrap();
    assert!(!report.full_rebuild, "shift change is incremental");
    assert_eq!(report.regenerated_roles, vec!["DayDoctor".to_string()]);
    // 8:30 is outside the new window: the role was disabled and dropped.
    assert!(!e.system().is_enabled(day).unwrap());
    assert!(!e.system().session_roles(s).unwrap().contains(&day));
    // At 9:30 the new window applies.
    e.advance_to(at(9, 30)).unwrap();
    assert!(e.system().is_enabled(day).unwrap());
    e.add_active_role(bob, s, day).unwrap();
    // And 16:30 — outside the old window's end — is now inside.
    e.advance_to(at(16, 30)).unwrap();
    assert!(e.system().is_enabled(day).unwrap());
    assert!(e.system().session_roles(s).unwrap().contains(&day));
    e.advance_to(at(17, 30)).unwrap();
    assert!(!e.system().is_enabled(day).unwrap());
}

#[test]
fn enabling_time_sod_dual_of_rule6() {
    // GTRBAC's enabling-time SoD: two mutually suspicious auditor roles
    // must never be usable at the same time inside the window.
    let src = r#"
        policy "audit" {
          roles InternalAuditor, ExternalAuditor;
          enabling_sod "auditors" { InternalAuditor, ExternalAuditor } daily 09:00-18:00;
        }
    "#;
    let mut e = Engine::from_source(src, at(12, 0)).unwrap();
    let internal = e.role_id("InternalAuditor").unwrap();
    let external = e.role_id("ExternalAuditor").unwrap();
    // Both start enabled (the constraint guards *requests*); bring one down.
    e.disable_role(external).unwrap();
    // Re-enabling it while the other is up, inside the window: refused.
    let err = e.enable_role(external).unwrap_err();
    assert!(matches!(err, EngineError::Denied(_)), "{err}");
    // Disable the internal auditor; now the external one may come up.
    e.disable_role(internal).unwrap();
    e.enable_role(external).unwrap();
    // Outside the window both may be enabled.
    e.advance_to(at(20, 0)).unwrap();
    e.enable_role(internal).unwrap();
    assert!(e.system().is_enabled(internal).unwrap());
    assert!(e.system().is_enabled(external).unwrap());

    // The direct baseline agrees.
    let g = policy::parse(src).unwrap();
    let mut d = owte_core::DirectEngine::from_policy(&g, at(12, 0)).unwrap();
    let internal = d.role_id("InternalAuditor").unwrap();
    let external = d.role_id("ExternalAuditor").unwrap();
    d.disable_role(external).unwrap();
    assert!(d.enable_role(external).is_err());
    d.disable_role(internal).unwrap();
    d.enable_role(external).unwrap();
}

#[test]
fn enabling_sod_round_trips_through_dsl() {
    let src = r#"
        policy "audit" {
          roles A, B;
          enabling_sod "x" { A, B } daily 09:00-18:00;
        }
    "#;
    let g = policy::parse(src).unwrap();
    assert_eq!(g.enabling_sod.len(), 1);
    let printed = policy::print(&g);
    assert!(printed.contains("enabling_sod \"x\" { A, B } daily 09:00-18:00;"));
    assert_eq!(policy::parse(&printed).unwrap(), g);
    assert!(g.role_flags("A").active_security);
}
