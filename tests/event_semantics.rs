//! Model-based property tests for Snoop consumption-context semantics:
//! the detector's SEQ pairing must match a tiny reference model for every
//! random interleaving of initiators and terminators.

use proptest::prelude::*;
use snoop::{Context, Detector, Dur, EventExpr, Params, Ts};

/// One trace step: raise the initiator, raise the terminator. The detector
/// clock advances 1s after every raise so all occurrences sequence strictly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    A,
    B,
}

fn trace_strategy() -> impl Strategy<Value = Vec<Ev>> {
    proptest::collection::vec(prop_oneof![Just(Ev::A), Just(Ev::B)], 0..64)
}

/// Reference model: detections produced per B event under each context.
fn model(trace: &[Ev], ctx: Context) -> usize {
    let mut buffered: usize = 0; // retained initiators
    let mut detections = 0;
    for ev in trace {
        match ev {
            Ev::A => match ctx {
                // Recent keeps only the newest initiator.
                Context::Recent => buffered = 1,
                _ => buffered += 1,
            },
            Ev::B => match ctx {
                Context::Unrestricted => detections += buffered, // nothing consumed
                Context::Recent => detections += usize::from(buffered > 0), // survives
                Context::Chronicle => {
                    if buffered > 0 {
                        detections += 1;
                        buffered -= 1;
                    }
                }
                Context::Continuous => {
                    detections += buffered;
                    buffered = 0;
                }
                Context::Cumulative => {
                    detections += usize::from(buffered > 0);
                    buffered = 0;
                }
            },
        }
    }
    detections
}

fn run_detector(trace: &[Ev], ctx: Context) -> usize {
    let mut d = Detector::new(Ts::ZERO);
    d.primitive("a");
    d.primitive("b");
    let root = d
        .define(&EventExpr::seq(EventExpr::named("a"), EventExpr::named("b")).context(ctx))
        .unwrap();
    d.watch(root);
    let mut detections = 0;
    for ev in trace {
        let name = match ev {
            Ev::A => "a",
            Ev::B => "b",
        };
        detections += d.raise_named(name, Params::new()).unwrap().len();
        d.advance(Dur::from_secs(1)).unwrap();
    }
    detections
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn seq_matches_reference_model(trace in trace_strategy()) {
        for ctx in Context::ALL {
            let expected = model(&trace, ctx);
            let got = run_detector(&trace, ctx);
            prop_assert_eq!(
                got, expected,
                "context {} on trace {:?}", ctx, trace
            );
        }
    }

    /// Detection *ordering* sanity for Chronicle: intervals of successive
    /// detections have non-decreasing starts (FIFO pairing).
    #[test]
    fn chronicle_pairs_fifo(trace in trace_strategy()) {
        let mut d = Detector::new(Ts::ZERO);
        d.primitive("a");
        d.primitive("b");
        let root = d
            .define(
                &EventExpr::seq(EventExpr::named("a"), EventExpr::named("b"))
                    .context(Context::Chronicle),
            )
            .unwrap();
        d.watch(root);
        let mut starts = Vec::new();
        for ev in &trace {
            let name = match ev { Ev::A => "a", Ev::B => "b" };
            for det in d.raise_named(name, Params::new()).unwrap() {
                starts.push(det.occurrence.interval.start);
            }
            d.advance(Dur::from_secs(1)).unwrap();
        }
        let mut sorted = starts.clone();
        sorted.sort();
        prop_assert_eq!(starts, sorted);
    }

    /// The detector never produces more AND detections than the count of
    /// the rarer constituent under one-to-one (Chronicle) pairing.
    #[test]
    fn and_chronicle_bounded_by_rarer_side(trace in trace_strategy()) {
        let mut d = Detector::new(Ts::ZERO);
        d.primitive("a");
        d.primitive("b");
        let root = d
            .define(
                &EventExpr::and(EventExpr::named("a"), EventExpr::named("b"))
                    .context(Context::Chronicle),
            )
            .unwrap();
        d.watch(root);
        let mut detections = 0;
        for ev in &trace {
            let name = match ev { Ev::A => "a", Ev::B => "b" };
            detections += d.raise_named(name, Params::new()).unwrap().len();
            d.advance(Dur::from_secs(1)).unwrap();
        }
        let a = trace.iter().filter(|e| **e == Ev::A).count();
        let b = trace.iter().filter(|e| **e == Ev::B).count();
        prop_assert_eq!(detections, a.min(b), "AND/Chronicle pairs one-to-one");
    }

    /// Calendar next/prev are inverses on the instants they emit.
    #[test]
    fn calendar_next_prev_inverse(h in 0u32..24, m in 0u32..60, start_secs in 0u64..(86_400 * 400)) {
        let e = snoop::CalendarExpr::daily(h, m, 0);
        let t = Ts::from_secs(start_secs);
        if let Some(next) = e.next_after(t) {
            prop_assert!(next > t);
            prop_assert_eq!(e.prev_at_or_before(next), Some(next));
            // No instant of the pattern lies strictly between t and next.
            if let Some(prev) = e.prev_at_or_before(t) {
                prop_assert!(prev <= t);
                prop_assert_eq!(e.next_after(prev), Some(next));
            }
        }
    }
}
