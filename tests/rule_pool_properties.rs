//! Cross-crate rule-pool properties: serialization round-trips (rules are
//! data, the paper's regeneration story depends on it), pool statistics,
//! and structural invariants of generated pools.

use policy::{instantiate, PolicyGraph};
use proptest::prelude::*;
use sentinel::{Granularity, Rule, RuleClass};
use snoop::Ts;
use workload::{generate_enterprise, EnterpriseSpec};

#[test]
fn rules_serialize_round_trip() {
    let inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
    for (_, rule) in inst.pool.iter() {
        let json = serde_json::to_string(rule).unwrap();
        let back: Rule = serde_json::from_str(&json).unwrap();
        assert_eq!(*rule, back, "rule {} does not round-trip", rule.name);
    }
}

#[test]
fn whole_pool_serializes() {
    let g = generate_enterprise(&EnterpriseSpec::sized(30), 2);
    let inst = instantiate(&g, Ts::ZERO).unwrap();
    let json = serde_json::to_string(&inst.pool).unwrap();
    let back: sentinel::RulePool = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), inst.pool.len());
    assert_eq!(back.dump(), inst.pool.dump());
}

#[test]
fn generated_pools_have_expected_shape() {
    let g = generate_enterprise(&EnterpriseSpec::sized(50), 4);
    let inst = instantiate(&g, Ts::ZERO).unwrap();
    let stats = inst.pool.stats();
    // Every role contributes at least AAR + DAR + DISR + ENR.
    assert!(stats.total >= 50 * 4);
    assert_eq!(stats.total, stats.enabled, "all rules start enabled");
    assert_eq!(stats.administrative, 2);
    assert_eq!(stats.globalized, 3);
    assert!(stats.localized > 0);
    // Structural: every rule's event is a live detector node.
    for (_, r) in inst.pool.iter() {
        assert!((r.event.0 as usize) < inst.detector.node_count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Rule-count formula: for any generated enterprise the pool size is
    /// exactly the sum the generator's stats report, and scales with the
    /// constraint surface.
    #[test]
    fn pool_size_matches_stats(seed in 0u64..500, roles in 3usize..40) {
        let g = generate_enterprise(&EnterpriseSpec::sized(roles), seed);
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        prop_assert_eq!(inst.stats.total_rules(), inst.pool.len());
        // Lower bound: 4 rules per role + CA + 2 admin.
        prop_assert!(inst.pool.len() >= roles * 4 + 3);
    }

    /// Classification partition: every rule is in exactly one class and one
    /// granularity, and the class counts partition the pool.
    #[test]
    fn classes_partition_pool(seed in 0u64..500) {
        let g = generate_enterprise(&EnterpriseSpec::default(), seed);
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        let s = inst.pool.stats();
        prop_assert_eq!(
            s.administrative + s.activity_control + s.active_security,
            s.total
        );
        prop_assert_eq!(s.specialized + s.localized + s.globalized, s.total);
        // Administrative rules are globalized in this generator.
        for (_, r) in inst.pool.iter() {
            if r.class == RuleClass::Administrative {
                prop_assert_eq!(r.granularity, Granularity::Globalized);
            }
        }
    }

    /// The dump (OWTE text form) is injective enough: pools from different
    /// seeds differ, pools from the same seed match.
    #[test]
    fn dump_is_deterministic(seed in 0u64..500) {
        let g = generate_enterprise(&EnterpriseSpec::default(), seed);
        let a = instantiate(&g, Ts::ZERO).unwrap();
        let b = instantiate(&g, Ts::ZERO).unwrap();
        prop_assert_eq!(a.pool.dump(), b.pool.dump());
    }
}
