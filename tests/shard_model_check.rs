//! Bounded model checking of the sharded engine's cross-shard
//! constraint protocol (tier-1 for the sharding subsystem).
//!
//! The centerpiece: on a two-shard group over a small enterprise with a
//! cap-1 role and an SSD pair, *no interleaving* of client submissions,
//! protocol-message deliveries, coordinator crashes/restarts and
//! reservation-timeout probes drives the global activation count past
//! the cap, violates SoD on any shard, loses an acknowledged op, or
//! leaves the coordinator's membership view out of sync with the
//! engines at quiescence. And when the classic protocol bug is seeded —
//! acknowledging the client at *reserve* time instead of at apply time —
//! the checker finds it and shrinks it to its three-step core.
//!
//! Determinism is itself an invariant here (satellite of the sharding
//! work): reservation deadlines and probe timing come only from the
//! group's virtual clock and the explorer's schedule, so two identical
//! sweeps must agree state-for-state.

use policy::PolicyGraph;
use rbac::UserId;
use shard::{ClientOp, ShardGroup};
use sim::{
    explore, run_schedule, Budget, Outcome, ShardChoice, ShardInvariants, ShardWorld, SimWorld,
    Strategy, Violation,
};

/// Reservation lifetime in virtual-time units — short enough that the
/// explorer's `Tick` choice reaches the probe path inside the budget.
const TIMEOUT: u64 = 10;

/// The smallest enterprise exercising both cross-shard constraint
/// kinds: `Auditor` capped at one concurrent activation anywhere in the
/// group, and `Clerk` a member of an SSD set (so its activations are
/// membership-tracked and sync `Release` traffic to the coordinator
/// without needing a reservation).
fn shard_graph() -> PolicyGraph {
    let mut g = PolicyGraph::new("shard-mc");
    g.role("Auditor").max_active_users = Some(1);
    g.role("Clerk");
    g.role("Scribe");
    g.ssd_set("clerk-scribe", &["Clerk", "Scribe"], 2);
    for u in ["u_a", "u_b", "u_c", "u_d"] {
        g.user(u);
        g.assign(u, "Auditor");
        g.assign(u, "Clerk");
    }
    g
}

/// Two users the hash ring places on *different* shards of a 2-group —
/// the racing pair every test here revolves around.
fn cross_shard_pair(group: &ShardGroup) -> (UserId, UserId) {
    let users: Vec<UserId> = ["u_a", "u_b", "u_c", "u_d"]
        .iter()
        .map(|n| group.user_id(n).expect("user exists"))
        .collect();
    for a in &users {
        for b in &users {
            if group.shard_of(*a) != group.shard_of(*b) {
                return (*a, *b);
            }
        }
    }
    panic!("hash ring put all four users on one shard of two");
}

/// Acceptance sweep: every interleaving — submissions, deliveries in
/// any order, one coordinator crash/restart cycle, timeout probes — of
/// a script that races a capped activation on one shard against a
/// tracked (SSD-member) activation on the other keeps every invariant.
#[test]
fn exhaustive_shard_sweep_is_clean() {
    let graph = shard_graph();
    let probe = ShardGroup::new(&graph, 2, vec![], TIMEOUT, false).expect("policy shards");
    let (a, b) = cross_shard_pair(&probe);
    let auditor = probe.role_id("Auditor").expect("role exists");
    let clerk = probe.role_id("Clerk").expect("role exists");
    let script = vec![
        ClientOp::CreateSession(a),
        ClientOp::CreateSession(b),
        ClientOp::AddRole(a, auditor),
        ClientOp::AddRole(b, clerk),
    ];
    let world = ShardWorld::new(&graph, 2, script, TIMEOUT, false).expect("policy shards");
    assert!(
        !world.group().plan().cross_user_rules.is_empty(),
        "the sweep must run under a non-vacuous license: the analyzer \
         found no cross-user rules to coordinate"
    );
    let invariants = ShardInvariants::from_reference(&graph);
    let budget = Budget {
        max_steps: 8,
        max_crashes: 1,
        max_states: 2_000_000,
        ..Budget::default()
    };
    match explore(
        &world,
        &invariants,
        Strategy::Exhaustive { reduction: true },
        budget,
    ) {
        Outcome::Clean(stats) => {
            assert!(
                stats.complete,
                "sweep must cover the whole bounded space: {stats:?}"
            );
            assert!(
                stats.explored > 200,
                "suspiciously small shard sweep: {stats:?}"
            );
            assert!(
                stats.pruned_commute > 0,
                "coordinator-message commutation never fired: {stats:?}"
            );
            assert!(
                stats.pruned_fingerprint > 0,
                "fingerprint dedup never fired: {stats:?}"
            );
        }
        Outcome::Violation {
            violation,
            schedule,
            ..
        } => panic!(
            "invariant violation in the honest shard group: {violation}\nschedule:\n{}",
            schedule.script(&world)
        ),
    }
}

/// Seeded bug: `ack_on_reserve` tells the client "done" the moment the
/// coordinator grants the slot, before the home shard has applied
/// anything. The checker must find the lost ack and shrink it to the
/// three-step core: submit the capped activation, deliver its reserve
/// (the coordinator grants — and, corrupted, acks), coordinator dies
/// (the grant and the reservation die with it; nothing left can ever
/// resolve the op the client was told succeeded).
#[test]
fn shard_seeded_early_ack_is_found_and_minimized() {
    let graph = shard_graph();
    let probe = ShardGroup::new(&graph, 2, vec![], TIMEOUT, true).expect("policy shards");
    let (a, _) = cross_shard_pair(&probe);
    let auditor = probe.role_id("Auditor").expect("role exists");
    let script = vec![ClientOp::AddRole(a, auditor)];
    let world = ShardWorld::new(&graph, 2, script.clone(), TIMEOUT, true).expect("policy shards");
    let invariants = ShardInvariants::from_reference(&graph);
    let budget = Budget {
        max_steps: 6,
        max_crashes: 1,
        max_states: 2_000_000,
        ..Budget::default()
    };
    let outcome = explore(
        &world,
        &invariants,
        Strategy::Exhaustive { reduction: true },
        budget,
    );
    let Outcome::Violation {
        violation,
        schedule,
        ..
    } = outcome
    else {
        panic!("early-ack shard group passed the durability invariants");
    };
    let Violation::ShardAckLost { op, ref desc } = violation else {
        panic!("wrong violation reported: {violation}");
    };
    assert_eq!(op, 0, "the lost op is the first (and only) submission");
    assert_eq!(
        *desc,
        ClientOp::AddRole(a, auditor).to_string(),
        "the report must name the lost op"
    );
    assert_eq!(
        schedule.0,
        vec![
            ShardChoice::ClientOp,
            ShardChoice::Deliver { slot: 0 },
            ShardChoice::CoordCrash,
        ],
        "minimal schedule is submit / reserve reaches coordinator / \
         coordinator dies:\n{}",
        schedule.script(&world)
    );
    // The minimal schedule replays deterministically to the same
    // violation on its final step…
    let replayed = run_schedule(&world, &invariants, &schedule.0)
        .expect("minimal schedule stays enabled")
        .expect("minimal schedule still violates");
    assert_eq!(replayed, (violation, 2));
    // …and the same schedule is clean on the honest protocol: un-acked
    // work may die with the coordinator, acked work may not.
    let honest = ShardWorld::new(&graph, 2, script, TIMEOUT, false).expect("policy shards");
    assert!(
        run_schedule(&honest, &invariants, &schedule.0)
            .expect("schedule stays enabled")
            .is_none(),
        "the honest protocol must survive the same crash point"
    );
}

/// Validate the coordinator-message commutation rule against ground
/// truth: reduced and raw exhaustive sweeps agree on the verdict, and
/// the reduction actually reduces.
#[test]
fn shard_reduction_agrees_with_raw_tree_walk() {
    let graph = shard_graph();
    let probe = ShardGroup::new(&graph, 2, vec![], TIMEOUT, false).expect("policy shards");
    let (a, b) = cross_shard_pair(&probe);
    let auditor = probe.role_id("Auditor").expect("role exists");
    let clerk = probe.role_id("Clerk").expect("role exists");
    let script = vec![
        ClientOp::CreateSession(a),
        ClientOp::CreateSession(b),
        ClientOp::AddRole(a, auditor),
        ClientOp::AddRole(b, clerk),
    ];
    let invariants = ShardInvariants::from_reference(&graph);
    let budget = Budget {
        max_steps: 7,
        max_crashes: 1,
        max_states: 2_000_000,
        ..Budget::default()
    };
    let run = |reduction: bool| {
        let world =
            ShardWorld::new(&graph, 2, script.clone(), TIMEOUT, false).expect("policy shards");
        explore(
            &world,
            &invariants,
            Strategy::Exhaustive { reduction },
            budget.clone(),
        )
    };
    let (Outcome::Clean(reduced), Outcome::Clean(raw)) = (run(true), run(false)) else {
        panic!("shard sweeps disagree on the verdict");
    };
    assert!(reduced.complete && raw.complete);
    assert!(
        reduced.pruned_commute > 0,
        "the reduction never pruned anything: {reduced:?}"
    );
    assert!(
        raw.explored >= reduced.explored,
        "raw walk ({}) explored fewer states than the reduced one ({})",
        raw.explored,
        reduced.explored
    );
}

/// Determinism (satellite): reservation deadlines, probe timing and
/// every schedule step come from seeded/virtual sources only, so two
/// identically-built worlds fingerprint identically, still agree after
/// replaying the same schedule, and two identical sweeps — exhaustive
/// or seeded-random — produce identical statistics.
#[test]
fn shard_exploration_is_deterministic() {
    let graph = shard_graph();
    let probe = ShardGroup::new(&graph, 2, vec![], TIMEOUT, false).expect("policy shards");
    let (a, b) = cross_shard_pair(&probe);
    let auditor = probe.role_id("Auditor").expect("role exists");
    let script = vec![
        ClientOp::CreateSession(a),
        ClientOp::AddRole(a, auditor),
        ClientOp::AddRole(b, auditor),
    ];
    let mk = || ShardWorld::new(&graph, 2, script.clone(), TIMEOUT, false).expect("policy shards");
    assert_eq!(mk().fingerprint(), mk().fingerprint());

    // Drive both copies down the same schedule: lockstep fingerprints,
    // including across a timeout probe and a crash/restart cycle.
    let steps = [
        ShardChoice::ClientOp,
        ShardChoice::ClientOp,
        ShardChoice::Deliver { slot: 0 },
        ShardChoice::Tick,
        ShardChoice::CoordCrash,
        ShardChoice::CoordRestart,
    ];
    let (mut w1, mut w2) = (mk(), mk());
    for step in &steps {
        w1.apply_choice(step).expect("step enabled");
        w2.apply_choice(step).expect("step enabled");
        assert_eq!(
            w1.fingerprint(),
            w2.fingerprint(),
            "identical schedules diverged at {step}"
        );
    }

    let invariants = ShardInvariants::from_reference(&graph);
    let budget = Budget {
        max_steps: 7,
        max_crashes: 1,
        max_states: 2_000_000,
        ..Budget::default()
    };
    let sweep = |strategy: Strategy| match explore(&mk(), &invariants, strategy, budget.clone()) {
        Outcome::Clean(stats) => stats,
        Outcome::Violation { violation, .. } => panic!("honest group violated: {violation}"),
    };
    assert_eq!(
        sweep(Strategy::Exhaustive { reduction: true }),
        sweep(Strategy::Exhaustive { reduction: true }),
        "two identical exhaustive sweeps disagree"
    );
    assert_eq!(
        sweep(Strategy::Random { seed: 0xDECAF }),
        sweep(Strategy::Random { seed: 0xDECAF }),
        "two identical seeded-random sweeps disagree"
    );
}
