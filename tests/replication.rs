//! Replication property: for any random enterprise and trace, a replica
//! rebuilt from the primary's journal is state-identical — the determinism
//! that makes the paper's "distributed access control" future work
//! implementable as state-machine replication.

use owte_core::{replay, Engine, RecordingEngine};
use proptest::prelude::*;
use rbac::SessionId;
use snoop::Ts;
use workload::{drive, generate_enterprise, generate_trace, Driver, EnterpriseSpec, TraceSpec};

/// [`Driver`] over a [`RecordingEngine`]: every call lands on the primary,
/// which journals it; decisions are irrelevant here (denied requests are
/// journaled too).
struct Primary<'a>(&'a mut RecordingEngine);

impl Driver for Primary<'_> {
    type Session = SessionId;

    fn create_session(&mut self, user: usize) -> Option<SessionId> {
        let u = self
            .0
            .user_id(&workload::enterprise::user_name(user))
            .unwrap();
        self.0.create_session(u, &[]).ok()
    }

    fn delete_session(&mut self, user: usize, session: SessionId) {
        let u = self
            .0
            .user_id(&workload::enterprise::user_name(user))
            .unwrap();
        let _ = self.0.delete_session(u, session);
    }

    fn add_active_role(&mut self, user: usize, session: SessionId, role: usize) {
        let u = self
            .0
            .user_id(&workload::enterprise::user_name(user))
            .unwrap();
        let r = self
            .0
            .role_id(&workload::enterprise::role_name(role))
            .unwrap();
        let _ = self.0.add_active_role(u, session, r);
    }

    fn drop_active_role(&mut self, user: usize, session: SessionId, role: usize) {
        let u = self
            .0
            .user_id(&workload::enterprise::user_name(user))
            .unwrap();
        let r = self
            .0
            .role_id(&workload::enterprise::role_name(role))
            .unwrap();
        let _ = self.0.drop_active_role(u, session, r);
    }

    fn check_access(&mut self, session: SessionId, op: usize, obj: usize) {
        let (Ok(op), Ok(obj)) = (
            self.0.engine().system().op_by_name(&format!("op{op}")),
            self.0.engine().system().obj_by_name(&format!("obj{obj}")),
        ) else {
            return;
        };
        let _ = self.0.check_access(session, op, obj);
    }

    fn advance(&mut self, secs: u64) {
        let to = self.0.engine().now() + snoop::Dur::from_secs(secs);
        self.0.advance_to(to).unwrap();
    }

    fn set_context(&mut self, zone: &str) {
        self.0.set_context("zone", zone).unwrap();
    }
}

/// State equality with a failure context: `ctx` carries the failing case's
/// seeds so any panic is directly replayable.
fn assert_state_equal(a: &Engine, b: &Engine, ctx: &str) {
    let (sa, sb) = (a.system(), b.system());
    assert_eq!(
        sa.all_sessions().collect::<Vec<_>>(),
        sb.all_sessions().collect::<Vec<_>>(),
        "{ctx}: session sets differ"
    );
    for s in sa.all_sessions() {
        assert_eq!(
            sa.session_roles(s).unwrap(),
            sb.session_roles(s).unwrap(),
            "{ctx}: active roles differ for {s:?}"
        );
    }
    for r in sa.all_roles() {
        assert_eq!(
            sa.is_enabled(r).unwrap(),
            sb.is_enabled(r).unwrap(),
            "{ctx}: enablement differs for {r:?}"
        );
    }
    assert_eq!(
        a.log().entries(),
        b.log().entries(),
        "{ctx}: audit logs differ"
    );
    assert_eq!(a.now(), b.now(), "{ctx}: clocks differ");
}

/// Body of the replication property, callable with explicit seeds for a
/// one-command replay via [`replay_from_env`].
fn check_replica_equals_primary(ent_seed: u64, trace_seed: u64) {
    let ctx = format!(
        "[ent_seed={ent_seed} trace_seed={trace_seed}; replay: \
         OWTE_REPLAY_SEEDS={ent_seed},{trace_seed} cargo test --test replication \
         replay_from_env -- --ignored --nocapture]"
    );
    let spec = EnterpriseSpec {
        roles: 10,
        users: 12,
        permissions: 12,
        temporal_fraction: 0.3,
        duration_fraction: 0.3,
        context_fraction: 0.3,
        capped_fraction: 0.3,
        ..EnterpriseSpec::default()
    };
    let graph = generate_enterprise(&spec, ent_seed);
    let trace = generate_trace(
        &TraceSpec {
            steps: 150,
            users: spec.users,
            roles: spec.roles,
            objects: spec.permissions,
            w_context: 5,
            ..TraceSpec::default()
        },
        trace_seed,
    );
    let mut primary = RecordingEngine::from_policy(&graph, Ts::ZERO).unwrap();
    drive(&mut Primary(&mut primary), &trace, spec.users);
    let replica =
        replay(primary.journal()).unwrap_or_else(|e| panic!("{ctx}: journal replays: {e}"));
    assert_state_equal(primary.engine(), &replica, &ctx);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn replica_equals_primary(ent_seed in 0u64..500, trace_seed in 0u64..500) {
        check_replica_equals_primary(ent_seed, trace_seed);
    }

    /// The journal survives serialization (a real replica receives it over
    /// the wire).
    #[test]
    fn replica_from_serialized_journal(seed in 0u64..200) {
        let ctx = format!("[seed={seed}]");
        let spec = EnterpriseSpec::sized(8);
        let graph = generate_enterprise(&spec, seed);
        let trace = generate_trace(
            &TraceSpec {
                steps: 80,
                users: spec.users,
                roles: spec.roles,
                objects: spec.permissions,
                ..TraceSpec::default()
            },
            seed,
        );
        let mut primary = RecordingEngine::from_policy(&graph, Ts::ZERO).unwrap();
        drive(&mut Primary(&mut primary), &trace, spec.users);
        let wire = serde_json::to_vec(primary.journal()).unwrap();
        let journal: owte_core::Journal = serde_json::from_slice(&wire).unwrap();
        let replica = replay(&journal).unwrap_or_else(|e| panic!("{ctx}: replays: {e}"));
        assert_state_equal(primary.engine(), &replica, &ctx);
    }
}

/// One-command replay of a failing `replica_equals_primary` case:
///
/// ```text
/// OWTE_REPLAY_SEEDS=ent,trace cargo test --test replication \
///     replay_from_env -- --ignored --nocapture
/// ```
#[test]
#[ignore = "replay harness; set OWTE_REPLAY_SEEDS=ent_seed,trace_seed"]
fn replay_from_env() {
    let raw =
        std::env::var("OWTE_REPLAY_SEEDS").expect("set OWTE_REPLAY_SEEDS=ent_seed,trace_seed");
    let seeds: Vec<u64> = raw
        .split(',')
        .map(|p| p.trim().parse().expect("seeds must be integers"))
        .collect();
    assert_eq!(
        seeds.len(),
        2,
        "expected 2 comma-separated seeds, got {raw:?}"
    );
    check_replica_equals_primary(seeds[0], seeds[1]);
}
