//! The `rbacsh` administrative shell: a line-oriented interpreter over the
//! OWTE engine.
//!
//! The paper's administrators interact with a GUI; a Rust library's
//! administrators get a REPL. Every command goes through the same rule
//! pool as programmatic callers, so the shell doubles as a manual test
//! bench. The interpreter is a plain function of a line to an output
//! string, so it is fully unit-testable; `src/bin/rbacsh.rs` wraps it in a
//! stdin loop.

use owte_core::{Engine, EngineError};
use policy::PolicyGraph;
use rbac::SessionId;
use snoop::{Civil, Dur, Ts};

/// Shell state: an optional engine (until a policy is loaded) and command
/// history length bookkeeping.
pub struct Shell {
    engine: Option<Engine>,
}

impl Default for Shell {
    fn default() -> Shell {
        Shell::new()
    }
}

/// Parse `2h`, `30m`, `45s`, or plain seconds.
fn parse_dur(s: &str) -> Result<Dur, String> {
    let (num, unit) = match s.as_bytes().last() {
        Some(b'h') => (&s[..s.len() - 1], 3600),
        Some(b'm') => (&s[..s.len() - 1], 60),
        Some(b's') => (&s[..s.len() - 1], 1),
        _ => (s, 1),
    };
    num.parse::<u64>()
        .map(|n| Dur::from_secs(n * unit))
        .map_err(|_| format!("bad duration `{s}` (try 2h, 30m, 45s)"))
}

const HELP: &str = "\
commands:
  load-policy <<EOF … EOF    load a policy inline (heredoc)
  load-file <path>           load a policy from a .acp file
  save-policy <path>         write the current policy as DSL text
  policy                     print the current policy in DSL form
  rules [prefix]             list generated rules (| marks disabled)
  rule <name>                show one rule in OWTE syntax
  stats                      rule pool and generation statistics
  users | roles | sessions   list entities / open sessions
  session <user> [role…]     open a session (optionally with initial roles)
  close <user> <session#>    close a session
  activate <user> <session#> <role>
  drop <user> <session#> <role>
  access <session#> <op> <obj> [purpose]
  assign <user> <role> | deassign <user> <role>
  enable <role> | disable <role>
  context <key> <value>      external context event
  advance <dur>              advance the clock (e.g. 2h, 30m, 90s)
  clock                      show the logical time
  log [n]                    last n audit entries (default 10)
  alerts                     active-security alerts
  analyze [--strict]         static rule-pool analysis: termination proof,
                             dead/shadowed rules, coverage, SoD conflicts
                             and effect footprints; --strict fails (for
                             scripted pipelines) on any diagnostic
  analyze --plan             dump the compiled execution plan (per-event
                             dispatch tables, condition bytecode, baked
                             actions); errors if the pool is unlicensed
  dot policy | dot events | dot rules [--effects]
                             Graphviz DOT of the policy graph, the event
                             graph, or the rule-dependency graph
                             (--effects: interference edges, commutativity
                             classes as colors)
  help                       this text";

impl Shell {
    /// A shell with no policy loaded.
    pub fn new() -> Shell {
        Shell { engine: None }
    }

    /// A shell over an existing engine.
    pub fn with_engine(engine: Engine) -> Shell {
        Shell {
            engine: Some(engine),
        }
    }

    /// Load a policy from DSL text (starting the clock at the current
    /// engine time, or the timeline origin).
    pub fn load(&mut self, src: &str) -> Result<String, String> {
        let start = self.engine.as_ref().map_or(Ts::ZERO, Engine::now);
        let graph: PolicyGraph = policy::parse(src).map_err(|e| e.to_string())?;
        let engine = Engine::from_policy(&graph, start).map_err(|e| e.to_string())?;
        let stats = engine.stats();
        let out = format!(
            "loaded policy \"{}\": {} roles, {} users, {} rules, {} event nodes",
            graph.name,
            graph.roles.len(),
            graph.users.len(),
            stats.total_rules(),
            stats.event_nodes
        );
        self.engine = Some(engine);
        Ok(out)
    }

    fn engine(&mut self) -> Result<&mut Engine, String> {
        self.engine
            .as_mut()
            .ok_or_else(|| "no policy loaded (use load-policy)".to_string())
    }

    fn fmt_err(e: EngineError) -> String {
        e.to_string()
    }

    /// Execute one command line; returns the text to show.
    pub fn exec(&mut self, line: &str) -> Result<String, String> {
        let words: Vec<&str> = line.split_whitespace().collect();
        let Some(&cmd) = words.first() else {
            return Ok(String::new());
        };
        match (cmd, &words[1..]) {
            ("help", _) => Ok(HELP.to_string()),
            ("load-file", [path]) => {
                let src = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                self.load(&src)
            }
            ("save-policy", [path]) => {
                let text = {
                    let e = self.engine()?;
                    policy::print(e.policy())
                };
                std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
                Ok(format!("policy written to {path} ({} bytes)", text.len()))
            }
            ("policy", []) => {
                let e = self.engine()?;
                Ok(policy::print(e.policy()))
            }
            ("rules", rest) => {
                let e = self.engine()?;
                let prefix = rest.first().copied().unwrap_or("");
                let mut names: Vec<String> = e
                    .pool()
                    .iter()
                    .filter(|(_, r)| r.name.starts_with(prefix))
                    .map(|(_, r)| {
                        format!(
                            "{}{}  [{} {}]",
                            if r.enabled { " " } else { "|" },
                            r.name,
                            r.class,
                            r.granularity
                        )
                    })
                    .collect();
                names.sort();
                Ok(format!("{} rules\n{}", names.len(), names.join("\n")))
            }
            ("rule", [name]) => {
                let e = self.engine()?;
                let text = e.rule_text(name);
                text.ok_or_else(|| format!("no rule named `{name}`"))
            }
            ("stats", []) => {
                let e = self.engine()?;
                let p = e.pool().stats();
                let g = e.stats();
                Ok(format!(
                    "rules: {} total ({} enabled), {} checks\n\
                     classes: {} administrative, {} activity-control, {} active-security\n\
                     granularity: {} specialized, {} localized, {} globalized\n\
                     events: {} nodes; sessions: {}; denials logged: {}",
                    p.total,
                    p.enabled,
                    p.checks,
                    p.administrative,
                    p.activity_control,
                    p.active_security,
                    p.specialized,
                    p.localized,
                    p.globalized,
                    g.event_nodes,
                    e.system().session_count(),
                    e.log().denial_count(),
                ))
            }
            ("users", []) => {
                let e = self.engine()?;
                let names: Vec<String> = e
                    .system()
                    .all_users()
                    .filter_map(|u| e.system().user_name(u).ok().map(str::to_string))
                    .collect();
                Ok(names.join(", "))
            }
            ("roles", []) => {
                let e = self.engine()?;
                let mut out = Vec::new();
                for r in e.system().all_roles() {
                    let name = e.system().role_name(r).map_err(|x| x.to_string())?;
                    let enabled = e.system().is_enabled(r).map_err(|x| x.to_string())?;
                    let active = e
                        .system()
                        .active_users_of_role(r)
                        .map_err(|x| x.to_string())?;
                    out.push(format!(
                        "{name}{} ({active} active)",
                        if enabled { "" } else { " [disabled]" }
                    ));
                }
                Ok(out.join("\n"))
            }
            ("sessions", []) => {
                let e = self.engine()?;
                let mut out = Vec::new();
                for s in e.system().all_sessions() {
                    let user = e.system().session_user(s).map_err(|x| x.to_string())?;
                    let uname = e.system().user_name(user).map_err(|x| x.to_string())?;
                    let roles: Vec<String> = e
                        .system()
                        .session_roles(s)
                        .map_err(|x| x.to_string())?
                        .iter()
                        .filter_map(|&r| e.system().role_name(r).ok().map(str::to_string))
                        .collect();
                    out.push(format!("#{} {uname}: [{}]", s.0, roles.join(", ")));
                }
                if out.is_empty() {
                    Ok("no open sessions".to_string())
                } else {
                    Ok(out.join("\n"))
                }
            }
            ("session", [user, roles @ ..]) => {
                let e = self.engine()?;
                let u = e.user_id(user).map_err(Self::fmt_err)?;
                let rids = roles
                    .iter()
                    .map(|r| e.role_id(r))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(Self::fmt_err)?;
                let s = e.create_session(u, &rids).map_err(Self::fmt_err)?;
                Ok(format!("session #{} opened for {user}", s.0))
            }
            ("close", [user, sid]) => {
                let e = self.engine()?;
                let u = e.user_id(user).map_err(Self::fmt_err)?;
                let s = parse_session(sid)?;
                e.delete_session(u, s).map_err(Self::fmt_err)?;
                Ok(format!("session #{} closed", s.0))
            }
            ("activate", [user, sid, role]) => {
                let e = self.engine()?;
                let u = e.user_id(user).map_err(Self::fmt_err)?;
                let r = e.role_id(role).map_err(Self::fmt_err)?;
                let s = parse_session(sid)?;
                e.add_active_role(u, s, r).map_err(Self::fmt_err)?;
                Ok(format!("{role} activated in session #{}", s.0))
            }
            ("drop", [user, sid, role]) => {
                let e = self.engine()?;
                let u = e.user_id(user).map_err(Self::fmt_err)?;
                let r = e.role_id(role).map_err(Self::fmt_err)?;
                let s = parse_session(sid)?;
                e.drop_active_role(u, s, r).map_err(Self::fmt_err)?;
                Ok(format!("{role} dropped from session #{}", s.0))
            }
            ("access", [sid, op, obj, rest @ ..]) => {
                let e = self.engine()?;
                let s = parse_session(sid)?;
                let opid = e.system().op_by_name(op).map_err(|x| x.to_string())?;
                let objid = e.system().obj_by_name(obj).map_err(|x| x.to_string())?;
                let allowed = match rest {
                    [purpose] => e
                        .check_access_for_purpose(s, opid, objid, purpose)
                        .map_err(Self::fmt_err)?,
                    _ => e.check_access(s, opid, objid).map_err(Self::fmt_err)?,
                };
                Ok(format!(
                    "{} {op} on {obj} for session #{}",
                    if allowed { "ALLOW" } else { "DENY" },
                    s.0
                ))
            }
            ("assign", [user, role]) => {
                let e = self.engine()?;
                let u = e.user_id(user).map_err(Self::fmt_err)?;
                let r = e.role_id(role).map_err(Self::fmt_err)?;
                e.assign_user(u, r).map_err(Self::fmt_err)?;
                Ok(format!("{user} assigned to {role}"))
            }
            ("deassign", [user, role]) => {
                let e = self.engine()?;
                let u = e.user_id(user).map_err(Self::fmt_err)?;
                let r = e.role_id(role).map_err(Self::fmt_err)?;
                e.deassign_user(u, r).map_err(Self::fmt_err)?;
                Ok(format!("{user} deassigned from {role}"))
            }
            ("enable", [role]) => {
                let e = self.engine()?;
                let r = e.role_id(role).map_err(Self::fmt_err)?;
                e.enable_role(r).map_err(Self::fmt_err)?;
                Ok(format!("{role} enabled"))
            }
            ("disable", [role]) => {
                let e = self.engine()?;
                let r = e.role_id(role).map_err(Self::fmt_err)?;
                e.disable_role(r).map_err(Self::fmt_err)?;
                Ok(format!("{role} disabled"))
            }
            ("context", [key, value]) => {
                let e = self.engine()?;
                e.set_context(key, value).map_err(Self::fmt_err)?;
                Ok(format!("context {key} = {value}"))
            }
            ("advance", [dur]) => {
                let d = parse_dur(dur)?;
                let e = self.engine()?;
                let report = e.advance(d).map_err(Self::fmt_err)?;
                Ok(format!(
                    "advanced to {} ({} temporal rule firings)",
                    Civil::from_ts(e.now()),
                    report.fired + report.else_taken
                ))
            }
            ("clock", []) => {
                let e = self.engine()?;
                Ok(format!("{}", Civil::from_ts(e.now())))
            }
            ("log", rest) => {
                let n: usize = rest
                    .first()
                    .map_or(Ok(10), |s| s.parse().map_err(|_| "bad count".to_string()))?;
                let e = self.engine()?;
                let entries = e.log().entries();
                let start = entries.len().saturating_sub(n);
                Ok(entries
                    .iter()
                    .skip(start)
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            ("dot", ["policy"]) => {
                let e = self.engine()?;
                Ok(e.policy().to_dot())
            }
            ("dot", ["events"]) => {
                let e = self.engine()?;
                Ok(e.event_graph_dot())
            }
            ("dot", ["rules"]) => {
                let e = self.engine()?;
                Ok(e.rule_graph_dot())
            }
            ("dot", ["rules", "--effects"]) => {
                let e = self.engine()?;
                Ok(e.effect_graph_dot())
            }
            ("analyze", ["--plan"]) => {
                let e = self.engine()?;
                e.plan_text().ok_or_else(|| {
                    "no compiled plan: the pool is not licensed for compilation \
                     (not proved terminating, error diagnostics present, or \
                     compilation disabled)"
                        .to_string()
                })
            }
            ("analyze", rest) => {
                let strict = match rest {
                    [] => false,
                    ["--strict"] => true,
                    _ => return Err("usage: analyze [--strict|--plan]".to_string()),
                };
                let e = self.engine()?;
                let report = e.analyze();
                let mut out = report.to_string().trim_end().to_string();
                out.push_str(&format!("\neffects: {}", report.effects.summary()));
                if e.proved_acyclic() {
                    out.push_str("\nexecutor: cascade-depth bookkeeping skipped (proved acyclic)");
                }
                if strict && !report.diagnostics.is_empty() {
                    // Strict mode makes every finding fatal so scripted
                    // pipelines (CI `effects-check`) fail on warnings too.
                    return Err(format!(
                        "{out}\nstrict: {} diagnostic(s) present",
                        report.diagnostics.len()
                    ));
                }
                Ok(out)
            }
            ("alerts", []) => {
                let e = self.engine()?;
                let alerts = e.alerts();
                if alerts.is_empty() {
                    Ok("no alerts".to_string())
                } else {
                    Ok(alerts.join("\n"))
                }
            }
            _ => Err(format!("unknown command `{line}` (try `help`)")),
        }
    }
}

fn parse_session(s: &str) -> Result<SessionId, String> {
    s.trim_start_matches('#')
        .parse::<u32>()
        .map(SessionId)
        .map_err(|_| format!("bad session id `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: &str = r#"
        policy "t" {
          roles Teller, Vault;
          users alice;
          assign alice -> Teller;
          permission serve = serve on counter;
          grant serve -> Teller;
        }
    "#;

    fn shell() -> Shell {
        let mut sh = Shell::new();
        sh.load(POLICY).unwrap();
        sh
    }

    #[test]
    fn requires_loaded_policy() {
        let mut sh = Shell::new();
        assert!(sh.exec("roles").unwrap_err().contains("no policy loaded"));
        assert!(sh.exec("help").is_ok(), "help works without a policy");
    }

    #[test]
    fn load_reports_stats() {
        let mut sh = Shell::new();
        let out = sh.load(POLICY).unwrap();
        assert!(out.contains("2 roles"));
        assert!(out.contains("rules"));
        // Bad policy text is a readable error.
        assert!(sh.load("nonsense").is_err());
    }

    #[test]
    fn session_workflow() {
        let mut sh = shell();
        let out = sh.exec("session alice Teller").unwrap();
        assert!(out.contains("session #0"));
        assert_eq!(
            sh.exec("access 0 serve counter").unwrap(),
            "ALLOW serve on counter for session #0"
        );
        sh.exec("drop alice 0 Teller").unwrap();
        assert_eq!(
            sh.exec("access 0 serve counter").unwrap(),
            "DENY serve on counter for session #0"
        );
        let out = sh.exec("sessions").unwrap();
        assert!(out.contains("#0 alice"));
        sh.exec("close alice 0").unwrap();
        assert_eq!(sh.exec("sessions").unwrap(), "no open sessions");
    }

    #[test]
    fn denied_activation_is_an_error_with_rule_message() {
        let mut sh = shell();
        sh.exec("session alice").unwrap();
        let err = sh.exec("activate alice 0 Vault").unwrap_err();
        assert!(err.contains("Access Denied Cannot Activate Vault"), "{err}");
    }

    #[test]
    fn rules_and_stats_views() {
        let mut sh = shell();
        let out = sh.exec("rules AAR").unwrap();
        assert!(out.contains("AAR1_Teller"));
        let out = sh.exec("rule CA").unwrap();
        assert!(out.starts_with("RULE [ CA"));
        assert!(
            out.contains("ON    checkAccess"),
            "event shown by name: {out}"
        );
        assert!(sh.exec("rule nope").is_err());
        let out = sh.exec("stats").unwrap();
        assert!(out.contains("activity-control"));
        let out = sh.exec("policy").unwrap();
        assert!(out.contains("policy \"t\""));
    }

    #[test]
    fn clock_and_advance() {
        let mut sh = shell();
        assert_eq!(sh.exec("clock").unwrap(), "2000-01-01 00:00:00");
        sh.exec("advance 2h").unwrap();
        assert_eq!(sh.exec("clock").unwrap(), "2000-01-01 02:00:00");
        sh.exec("advance 90m").unwrap();
        assert_eq!(sh.exec("clock").unwrap(), "2000-01-01 03:30:00");
        assert!(sh.exec("advance nonsense").is_err());
    }

    #[test]
    fn admin_and_log() {
        let mut sh = shell();
        sh.exec("assign alice Vault").unwrap();
        sh.exec("session alice Vault").unwrap();
        sh.exec("deassign alice Vault").unwrap();
        sh.exec("disable Teller").unwrap();
        let out = sh.exec("roles").unwrap();
        assert!(out.contains("Teller [disabled]"));
        sh.exec("enable Teller").unwrap();
        let log = sh.exec("log 5").unwrap();
        assert!(log.contains("fired"));
        assert_eq!(sh.exec("alerts").unwrap(), "no alerts");
    }

    #[test]
    fn unknown_commands_and_names() {
        let mut sh = shell();
        assert!(sh.exec("frobnicate").is_err());
        assert!(sh
            .exec("session nobody")
            .unwrap_err()
            .contains("unknown name"));
        assert!(sh.exec("activate alice zero Teller").is_err());
        assert_eq!(sh.exec("").unwrap(), "");
    }

    #[test]
    fn save_and_load_file_round_trip() {
        let mut sh = shell();
        let path = std::env::temp_dir().join("rbacsh_roundtrip_test.acp");
        let path = path.to_str().unwrap().to_string();
        let out = sh.exec(&format!("save-policy {path}")).unwrap();
        assert!(out.contains("written"));
        let mut sh2 = Shell::new();
        let out = sh2.exec(&format!("load-file {path}")).unwrap();
        assert!(out.contains("loaded policy \"t\""));
        assert_eq!(sh.exec("policy").unwrap(), sh2.exec("policy").unwrap());
        let _ = std::fs::remove_file(&path);
        assert!(sh.exec("load-file /no/such/file.acp").is_err());
    }

    #[test]
    fn dot_outputs() {
        let mut sh = shell();
        assert!(sh.exec("dot policy").unwrap().starts_with("graph policy {"));
        assert!(sh
            .exec("dot events")
            .unwrap()
            .starts_with("digraph events {"));
        let rules = sh.exec("dot rules").unwrap();
        assert!(rules.starts_with("digraph rules {"), "{rules}");
        assert!(rules.contains("AAR1_Teller"));
    }

    #[test]
    fn analyze_reports_clean_verdict() {
        let mut sh = shell();
        let out = sh.exec("analyze").unwrap();
        assert!(out.contains("PROVED-TERMINATING"), "{out}");
        assert!(out.contains("0 errors"));
        assert!(out.contains("proved acyclic"), "{out}");
        assert!(out.contains("commutativity classes"), "{out}");
        // Listed in help.
        assert!(sh.exec("help").unwrap().contains("analyze"));
    }

    #[test]
    fn analyze_strict_gates_on_diagnostics() {
        // Strict agrees with the plain report: passes iff no findings…
        let mut sh = shell();
        let plain = sh.exec("analyze").unwrap();
        assert_eq!(
            sh.exec("analyze --strict").is_ok(),
            plain.contains("0 errors, 0 warnings"),
            "{plain}"
        );
        assert!(sh.exec("analyze --bogus").is_err());
        // …while a DSD set defeated by a common senior — a Warning, so
        // the DenyOnError load gate lets it through — fails strict.
        let mut warny = Shell::new();
        warny
            .load(
                r#"
                policy "w" {
                  roles Boss, A, B;
                  users bob;
                  hierarchy Boss -> A;
                  hierarchy Boss -> B;
                  dsd "ab" { A, B } cardinality 2;
                  assign bob -> Boss;
                  permission p = op on obj;
                  grant p -> A;
                }
                "#,
            )
            .unwrap();
        assert!(warny.exec("analyze").is_ok(), "plain analyze only reports");
        let err = warny.exec("analyze --strict").unwrap_err();
        assert!(err.contains("strict:"), "{err}");
        assert!(err.contains("sod-hierarchy-conflict"), "{err}");
    }

    #[test]
    fn analyze_plan_dumps_dispatch_and_bytecode() {
        let mut sh = shell();
        let out = sh.exec("analyze --plan").unwrap();
        assert!(out.starts_with("compiled plan:"), "{out}");
        assert!(out.contains("on checkAccess"), "{out}");
        assert!(out.contains("rule CA"), "{out}");
        assert!(sh.exec("help").unwrap().contains("--plan"));
        // Unknown flags still fail with the usage line.
        let usage = sh.exec("analyze --plan --strict").unwrap_err();
        assert!(usage.contains("usage:"), "{usage}");
    }

    #[test]
    fn dot_effects_exports_interference_view() {
        let mut sh = shell();
        let out = sh.exec("dot rules --effects").unwrap();
        assert!(out.starts_with("digraph effects {"), "{out}");
        assert!(out.contains("AAR1_Teller"), "{out}");
        assert!(out.contains("fillcolor"), "{out}");
    }

    #[test]
    fn duration_parser() {
        assert_eq!(parse_dur("2h").unwrap(), Dur::from_hours(2));
        assert_eq!(parse_dur("30m").unwrap(), Dur::from_mins(30));
        assert_eq!(parse_dur("45s").unwrap(), Dur::from_secs(45));
        assert_eq!(parse_dur("7").unwrap(), Dur::from_secs(7));
        assert!(parse_dur("h").is_err());
    }
}
