//! `rbacsh` — interactive administrative shell over the OWTE engine.
//!
//! ```text
//! $ cargo run --bin rbacsh
//! rbacsh> load-policy <<EOF
//! policy "demo" { roles Clerk; users ann; assign ann -> Clerk; }
//! EOF
//! rbacsh> session ann Clerk
//! session #0 opened for ann
//! ```
//!
//! Also usable non-interactively: `rbacsh < commands.txt`. In that mode
//! the process exits nonzero if any command failed, so scripted
//! pipelines (e.g. CI running `analyze --strict` over generated pools)
//! can gate on the result.

use active_authz::shell::Shell;
use std::io::{self, BufRead, Write};

fn main() -> io::Result<()> {
    let mut shell = Shell::new();
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    let interactive = atty_stdin();
    let mut failed = false;
    if interactive {
        println!("rbacsh — OWTE RBAC administrative shell (`help` for commands, ctrl-d to exit)");
    }
    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            print!("rbacsh> ");
            stdout.flush()?;
        }
        let Some(line) = lines.next() else { break };
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        // Heredoc-style policy loading: `load-policy <<EOF` … `EOF`.
        if let Some(rest) = trimmed.strip_prefix("load-policy") {
            let terminator = rest.trim().strip_prefix("<<").unwrap_or("EOF").to_string();
            let terminator = if terminator.is_empty() {
                "EOF".into()
            } else {
                terminator
            };
            let mut src = String::new();
            for l in lines.by_ref() {
                let l = l?;
                if l.trim() == terminator {
                    break;
                }
                src.push_str(&l);
                src.push('\n');
            }
            match shell.load(&src) {
                Ok(out) => println!("{out}"),
                Err(err) => {
                    eprintln!("error: {err}");
                    failed = true;
                }
            }
            continue;
        }
        match shell.exec(trimmed) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(err) => {
                eprintln!("error: {err}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    Ok(())
}

/// Minimal interactive-terminal heuristic without extra dependencies:
/// assume interactive when the TERM env var is set and stdin is a tty-ish
/// environment. (We deliberately avoid a libc dependency; worst case the
/// prompt is printed when piping, which is harmless.)
fn atty_stdin() -> bool {
    std::env::var_os("RBACSH_NO_PROMPT").is_none()
}
