//! # active-authz — active (OWTE) authorization rules for RBAC
//!
//! A production-quality Rust reproduction of *"Active Authorization Rules
//! for Enforcing Role-Based Access Control and its Extensions"*
//! (Adaikkalavan & Chakravarthy, ICDE 2005). The facade re-exports the
//! workspace crates:
//!
//! | Crate | Role |
//! |-------|------|
//! | [`snoop`] | SnoopIB composite-event detection substrate |
//! | [`sentinel`] | OWTE (On-When-Then-Else) active rule system |
//! | [`rbac`] | ANSI INCITS 359-2004 reference monitor |
//! | [`gtrbac`] | Generalized Temporal RBAC constraints |
//! | [`policy`] | High-level specification + rule generation |
//! | [`owte_core`] | The rule-driven engine and the direct baseline |
//! | [`workload`] | Seeded enterprise/trace generators |
//!
//! See `examples/quickstart.rs` for the paper's enterprise-XYZ walkthrough.

pub mod shell;

pub use gtrbac;
pub use owte_core;
pub use policy;
pub use rbac;
pub use sentinel;
pub use snoop;
pub use workload;

pub use owte_core::{DirectEngine, Engine, EngineError};
pub use policy::PolicyGraph;
pub use snoop::{Civil, Dur, Ts};
