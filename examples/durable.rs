//! Crash-tolerant enforcement: the engine journals every operation to a
//! write-ahead log on disk before applying it, snapshots periodically,
//! and recovers its exact state — sessions, active roles, audit log,
//! clock, even half-detected composite events — after a "process restart".
//!
//! Run with: `cargo run --example durable`

use owte_core::{DurableConfig, DurableEngine, FileStorage};
use policy::PolicyGraph;
use snoop::Ts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("owte-durable-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut graph = PolicyGraph::enterprise_xyz();
    graph.user("alice");
    graph.assign("alice", "PM");

    let config = DurableConfig {
        snapshot_every: Some(8),
        ..DurableConfig::default()
    };

    // First "process": create the durable store and serve some requests.
    let (sessions, denials, clock) = {
        let storage = FileStorage::open(&dir)?;
        let mut engine = DurableEngine::create(storage, &graph, Ts::ZERO, config.clone())?;
        let alice = engine.user_id("alice")?;
        let pm = engine.role_id("PM")?;
        let s = engine.create_session(alice, &[pm])?;
        let read = engine.engine().system().op_by_name("read")?;
        let po = engine.engine().system().obj_by_name("purchase_order")?;
        for _ in 0..10 {
            engine.check_access(s, read, po)?;
        }
        engine.advance_to(Ts::from_secs(3600))?;
        println!(
            "primary: {} ops journaled, snapshot covers {} ops, {} segment files in {}",
            engine.op_count(),
            engine.snapshot_ops(),
            std::fs::read_dir(&dir)?.count(),
            dir.display(),
        );
        (
            engine.engine().system().session_count(),
            engine.engine().log().denial_count(),
            engine.engine().now(),
        )
    }; // engine dropped: the "process" exits without any shutdown ritual

    // Second "process": recover from storage alone.
    let storage = FileStorage::open(&dir)?;
    let recovered = DurableEngine::open(storage, config)?;
    println!(
        "recovered: {} ops, {} sessions, {} denials, clock at {}",
        recovered.op_count(),
        recovered.engine().system().session_count(),
        recovered.engine().log().denial_count(),
        recovered.engine().now(),
    );
    assert_eq!(recovered.engine().system().session_count(), sessions);
    assert_eq!(recovered.engine().log().denial_count(), denials);
    assert_eq!(recovered.engine().now(), clock);
    println!("state verified identical — durability holds");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
