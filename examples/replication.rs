//! Distributed access control (the paper's §7 future work), built on the
//! engine's determinism: a primary engine journals every external
//! operation; a replica replays the journal and reaches the identical
//! state — sessions, active roles, enabled flags, audit log, clock.
//!
//! Run with: `cargo run --example replication`

use owte_core::{replay, RecordingEngine};
use policy::PolicyGraph;
use snoop::{Dur, Ts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut graph = PolicyGraph::enterprise_xyz();
    graph.user("alice");
    graph.assign("alice", "PM");
    graph.role("Timed").max_activation = Some(Dur::from_hours(1));
    graph.assign("alice", "Timed");

    // The primary serves requests and records the journal.
    let mut primary = RecordingEngine::from_policy(&graph, Ts::ZERO)?;
    let alice = primary.user_id("alice")?;
    let pm = primary.role_id("PM")?;
    let timed = primary.role_id("Timed")?;
    let s = primary.create_session(alice, &[pm])?;
    primary.add_active_role(alice, s, timed)?;
    let read = primary.engine().system().op_by_name("read")?;
    let po = primary.engine().system().obj_by_name("purchase_order")?;
    println!(
        "primary: alice reads the purchase order: {}",
        primary.check_access(s, read, po)?
    );
    // Two hours pass: the Δ rule expires the Timed activation.
    primary.advance_to(Ts::from_secs(2 * 3600))?;
    println!(
        "primary: Timed still active after 2h: {}",
        primary.engine().system().session_roles(s)?.contains(&timed)
    );

    // Ship the journal (here: through JSON, as a real replica would
    // receive it) and replay it on a fresh node.
    let wire = serde_json::to_vec(primary.journal())?;
    println!(
        "\njournal: {} operations, {} bytes on the wire",
        primary.journal().len(),
        wire.len()
    );
    let journal: owte_core::Journal = serde_json::from_slice(&wire)?;
    let replica = replay(&journal)?;

    println!("\nreplica state equals primary:");
    println!(
        "  clock:        {} == {}",
        replica.now(),
        primary.engine().now()
    );
    println!(
        "  sessions:     {} == {}",
        replica.system().session_count(),
        primary.engine().system().session_count()
    );
    println!(
        "  audit length: {} == {}",
        replica.log().len(),
        primary.engine().log().len()
    );
    assert_eq!(replica.log().entries(), primary.engine().log().entries());
    println!("  audit logs are byte-identical ✓");
    Ok(())
}
