//! Hospital: Generalized Temporal RBAC in a health-care domain (§1 names it
//! as the domain needing "extensive temporal constraints").
//!
//! * the day-doctor role is enabled only 8 a.m.–4 p.m. (periodic enabling);
//! * nurse activations auto-expire after 2 hours (Rule 7's Δ);
//! * Nurse and Doctor cannot both be off 10 a.m.–5 p.m. (Rule 6's
//!   disabling-time SoD, "availability is a primary concern");
//! * SysAdmin can only be enabled together with SysAudit (Rule 8's
//!   post-condition CFD).
//!
//! Time is fully simulated: the example walks one hospital day.
//!
//! Run with: `cargo run --example hospital`

use active_authz::{Civil, Engine, Ts};

const HOSPITAL: &str = r#"
    policy "hospital" {
      roles Doctor, Nurse, DayDoctor, SysAdmin, SysAudit;
      users dana, nina;
      assign dana -> Doctor, DayDoctor;
      assign nina -> Nurse;
      enable DayDoctor daily 08:00-16:00;
      max_activation Nurse 2h;
      disabling_sod "availability" { Doctor, Nurse } daily 10:00-17:00;
      post_condition SysAdmin requires SysAudit;
    }
"#;

fn clock(h: u32, m: u32) -> Ts {
    Civil::new(2000, 1, 5, h, m, 0).to_ts()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The day begins at 6 a.m.
    let mut e = Engine::from_source(HOSPITAL, clock(6, 0))?;
    let dana = e.user_id("dana")?;
    let nina = e.user_id("nina")?;
    let day_doctor = e.role_id("DayDoctor")?;
    let doctor = e.role_id("Doctor")?;
    let nurse = e.role_id("Nurse")?;
    let sysadmin = e.role_id("SysAdmin")?;
    let sysaudit = e.role_id("SysAudit")?;

    let sd = e.create_session(dana, &[])?;
    let sn = e.create_session(nina, &[])?;

    println!("06:00  dana tries to start her day-doctor shift early:");
    match e.add_active_role(dana, sd, day_doctor) {
        Err(err) => println!("       refused: {err}"),
        Ok(()) => unreachable!("shift starts at 8"),
    }

    e.advance_to(clock(8, 30))?;
    println!("08:30  the calendar rule enabled DayDoctor at 08:00;");
    e.add_active_role(dana, sd, day_doctor)?;
    println!("       dana activates it: ok");

    e.advance_to(clock(9, 0))?;
    e.add_active_role(nina, sn, nurse)?;
    println!("09:00  nina activates Nurse (Δ = 2h starts ticking)");

    e.advance_to(clock(11, 30))?;
    println!(
        "11:30  nina's activation expired at 11:00: nurse active = {}",
        e.system().session_roles(sn)?.contains(&nurse)
    );
    e.add_active_role(nina, sn, nurse)?;
    println!("       she re-activates for another 2 hours");

    println!("12:00  maintenance wants both Doctor and Nurse roles off:");
    e.advance_to(clock(12, 0))?;
    e.disable_role(doctor)?;
    println!("       Doctor disabled: ok (Nurse still enabled)");
    match e.disable_role(nurse) {
        Err(err) => println!("       Nurse refused: {err}"),
        Ok(()) => unreachable!("disabling-time SoD must refuse"),
    }
    e.enable_role(doctor)?;
    println!("       Doctor re-enabled");

    println!("12:30  the auditor wants SysAdmin enabled:");
    e.advance_to(clock(12, 30))?;
    e.disable_role(sysaudit)?;
    e.disable_role(sysadmin)?;
    e.enable_role(sysadmin)?;
    println!(
        "       post-condition: SysAdmin enabled = {}, SysAudit enabled = {}",
        e.system().is_enabled(sysadmin)?,
        e.system().is_enabled(sysaudit)?
    );

    e.advance_to(clock(16, 30))?;
    println!(
        "16:30  shift over: DayDoctor enabled = {}, dana still active = {}",
        e.system().is_enabled(day_doctor)?,
        e.system().session_roles(sd)?.contains(&day_doctor)
    );

    println!("\nfull audit trail:\n{}", e.log().report());
    Ok(())
}
