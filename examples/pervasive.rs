//! Pervasive computing: context-aware RBAC driven by external sensor
//! events (§3 of the paper — "when a user moves from one location to
//! another, external events can trigger some rules that
//! activate/deactivate roles"; conditions check "whether the network is
//! secure or insecure").
//!
//! Nina's ward-nurse role follows her physical location; Ralph's
//! remote-analyst role follows the network's security state.
//!
//! Run with: `cargo run --example pervasive`

use active_authz::{Engine, Ts};

const PERVASIVE: &str = r#"
    policy "pervasive" {
      roles WardNurse, RemoteAnalyst;
      users nina, ralph;
      assign nina -> WardNurse;
      assign ralph -> RemoteAnalyst;
      permission read_chart = read on patient_chart;
      permission run_query = query on research_db;
      grant read_chart -> WardNurse;
      grant run_query -> RemoteAnalyst;
      context WardNurse requires location = ward;
      context RemoteAnalyst requires network = secure;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut e = Engine::from_source(PERVASIVE, Ts::ZERO)?;
    let nina = e.user_id("nina")?;
    let ralph = e.user_id("ralph")?;
    let nurse = e.role_id("WardNurse")?;
    let analyst = e.role_id("RemoteAnalyst")?;
    let read = e.system().op_by_name("read")?;
    let chart = e.system().obj_by_name("patient_chart")?;

    let sn = e.create_session(nina, &[])?;
    let sr = e.create_session(ralph, &[])?;

    println!("the generated context rule for WardNurse:");
    println!(
        "{}\n",
        e.pool()
            .get_by_name("CTX_WardNurse")
            .expect("generated")
            .to_owte_string()
    );

    println!("nina badges in at the cafeteria:");
    e.set_context("location", "cafeteria")?;
    match e.add_active_role(nina, sn, nurse) {
        Err(err) => println!("  WardNurse refused: {err}"),
        Ok(()) => unreachable!("wrong location"),
    }

    println!("\nnina walks onto the ward (location sensor event):");
    e.set_context("location", "ward")?;
    e.add_active_role(nina, sn, nurse)?;
    println!(
        "  WardNurse active; chart access = {}",
        e.check_access(sn, read, chart)?
    );

    println!("\nthe VPN comes up; ralph activates RemoteAnalyst:");
    e.set_context("network", "secure")?;
    e.add_active_role(ralph, sr, analyst)?;
    println!("  RemoteAnalyst active");

    println!("\nnina leaves the ward — her role is deactivated by the CTX rule:");
    e.set_context("location", "hallway")?;
    println!(
        "  WardNurse active = {}",
        e.system().session_roles(sn)?.contains(&nurse)
    );
    println!("  chart access     = {}", e.check_access(sn, read, chart)?);
    println!(
        "  ralph unaffected = {}",
        e.system().session_roles(sr)?.contains(&analyst)
    );

    println!("\nthe network is flagged insecure — ralph loses his role too:");
    e.set_context("network", "insecure")?;
    println!(
        "  RemoteAnalyst active = {}",
        e.system().session_roles(sr)?.contains(&analyst)
    );

    println!("\naudit trail:\n{}", e.log().report());
    Ok(())
}
