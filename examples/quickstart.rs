//! Quickstart: the paper's enterprise XYZ (§5, Figure 1) end to end.
//!
//! A purchase department and an approval department share a Clerk role;
//! placing and approving purchase orders must be separated (static SoD).
//! The policy is written in the high-level DSL, the OWTE rules are
//! generated, and every request below is decided by those rules.
//!
//! Run with: `cargo run --example quickstart`

use active_authz::{Engine, Ts};

const XYZ: &str = r#"
    policy "XYZ" {
      roles PM, PC, AM, AC, Clerk;
      users alice, bob;
      hierarchy PM -> PC -> Clerk;      # purchase manager > purchase clerk
      hierarchy AM -> AC -> Clerk;      # approval manager > approval clerk
      ssd "purchase-approval" { PC, AC } cardinality 2;
      permission place_order = create on purchase_order;
      permission approve_order = approve on purchase_order;
      permission read_order = read on purchase_order;
      grant place_order -> PC;
      grant approve_order -> AC;
      grant read_order -> Clerk;
      assign alice -> PM;
      assign bob -> AC;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::from_source(XYZ, Ts::ZERO)?;
    let stats = engine.stats();
    println!(
        "policy instantiated: {} rules generated over {} event nodes",
        stats.total_rules(),
        stats.event_nodes
    );
    println!("rule classes: {:?}\n", engine.pool().stats());

    // The rule generated for PC is the AAR₂ variant, exactly as §5 says.
    println!(
        "generated activation rule for PC:\n{}\n",
        engine
            .pool()
            .get_by_name("AAR2_PC")
            .expect("generated")
            .to_owte_string()
    );

    let alice = engine.user_id("alice")?;
    let bob = engine.user_id("bob")?;
    let pm = engine.role_id("PM")?;
    let pc = engine.role_id("PC")?;
    let ac = engine.role_id("AC")?;
    let create = engine.system().op_by_name("create")?;
    let approve = engine.system().op_by_name("approve")?;
    let po = engine.system().obj_by_name("purchase_order")?;

    // Alice (purchase manager) opens a session and works.
    let session = engine.create_session(alice, &[pm])?;
    println!("alice activates PM: ok");
    println!(
        "alice creates a purchase order:  allowed = {}",
        engine.check_access(session, create, po)?
    );
    println!(
        "alice approves a purchase order: allowed = {} (AC's permission, not hers)",
        engine.check_access(session, approve, po)?
    );

    // The hierarchy lets her activate the junior purchase-clerk role…
    engine.add_active_role(alice, session, pc)?;
    println!("alice activates junior role PC: ok");

    // …but the static SoD (inherited through PM ⪰ PC) forbids ever
    // assigning her to the approval side.
    match engine.assign_user(alice, ac) {
        Err(e) => println!("assigning alice to AC is refused: {e}"),
        Ok(()) => unreachable!("SSD must forbid this"),
    }

    // Bob (approval clerk) approves but cannot place orders.
    let bob_session = engine.create_session(bob, &[ac])?;
    println!(
        "bob approves a purchase order:   allowed = {}",
        engine.check_access(bob_session, approve, po)?
    );
    println!(
        "bob creates a purchase order:    allowed = {}",
        engine.check_access(bob_session, create, po)?
    );

    println!("\naudit log:\n{}", engine.log().report());
    Ok(())
}
