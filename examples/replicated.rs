//! A 3-node replicated authorization service, end to end: the leader
//! journals every operation and ships CRC-framed WAL records over a
//! lossy transport; followers journal-before-apply and answer
//! `check_access` from lock-free snapshots bounded by the temporal
//! validity horizon; when the leader dies, a promoted follower recovers
//! from its own durable WAL, re-ships from the last acked index, and
//! fences the old leader — which later rejoins as a follower of the new
//! term.
//!
//! Run with: `cargo run --release --example replicated`
//!
//! Exits nonzero if any step of the narrative fails, so CI can run it as
//! an acceptance check.

use repl::{state_matches, Cluster, NetFaultPlan, NodeId, ReadOutcome, ReplConfig};
use sim::{apply_client_op, tiny_enterprise, SimOp};

fn converged(c: &Cluster) -> bool {
    let li = c.leader().expect("leader up");
    let leader = c.node_engine(li).unwrap();
    (0..c.len()).filter(|&n| n != li && c.is_up(n)).all(|n| {
        let f = c.node_engine(n).unwrap();
        f.op_count() == leader.op_count() && state_matches(leader.engine(), f.engine())
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = tiny_enterprise();
    // A deliberately hostile network: a third of all messages lost, a
    // fifth duplicated, frequent reordering. Retransmission with
    // exponential backoff rides over all of it.
    let config = ReplConfig {
        net: NetFaultPlan {
            p_drop: 0.33,
            p_duplicate: 0.2,
            p_reorder: 0.25,
            scripted: Vec::new(),
        },
        net_seed: 42,
        ..ReplConfig::default()
    };
    let mut c = Cluster::new(&graph, 3, config)?;
    let mut sessions: Vec<Option<rbac::SessionId>> = vec![None; 2];

    println!("== 3-node cluster, leader n0, term {} ==", c.term());

    // Client traffic: move into the clerk window, open a session,
    // activate the role.
    let script = [
        SimOp::Advance { secs: 10 * 3600 }, // 10:00, inside clerk's window
        SimOp::CreateSession { user: 0 },
        SimOp::AddActiveRole {
            user: 0,
            role: "clerk".into(),
        },
    ];
    for op in &script {
        let op = op.clone();
        c.with_leader(|d| {
            apply_client_op(d, &mut sessions, &op);
        })?;
    }
    let delivered = c.settle();
    let stats = c.transport().stats();
    println!(
        "shipped {} ops over the lossy wire: {} sends, {} dropped, {} duplicated, {} bytes",
        c.commit(),
        stats.sends,
        stats.dropped,
        stats.duplicated,
        stats.bytes_sent
    );
    println!("  ({delivered} deliveries until settled)");
    assert!(converged(&c), "followers converged to the leader");

    // Followers answer authorization queries from their snapshots.
    let s = sessions[0].expect("session created");
    let (w, claims) = {
        let sys = c.node_engine(0).unwrap().engine().system();
        (sys.op_by_name("write")?, sys.obj_by_name("claims")?)
    };
    let at = c.leader_now()?;
    for n in 1..3 {
        let outcome = c.read_at(n, s, w, claims, at)?;
        println!("follower n{n} answers check_access(write, claims): {outcome:?}");
        assert_eq!(outcome, ReadOutcome::Granted);
    }

    // Partition n2, push one more op so it lags, then kill the leader.
    c.transport_mut().partition(NodeId(0), NodeId(2));
    c.with_leader(|d| {
        apply_client_op(
            d,
            &mut sessions,
            &SimOp::CheckAccess {
                user: 0,
                op: "write".into(),
                obj: "claims".into(),
            },
        );
    })?;
    c.settle();
    let lag = c.acked_index(2);
    println!(
        "\n== partition n0⊥n2, one more op: n1 at {}, n2 acked only {lag} ==",
        c.node_engine(1).unwrap().op_count()
    );
    c.crash(0)?;
    c.transport_mut().heal();
    println!("== leader n0 power-fails; promoting n1 ==");

    // The promoted follower recovers from its own WAL and re-ships to
    // the lagging follower from its last acked index.
    c.promote(1)?;
    println!(
        "n1 leads term {}: recovered {} ops from its own WAL, re-shipping to n2 from index {}",
        c.term(),
        c.node_engine(1).unwrap().op_count(),
        c.next_index(2)
    );
    assert_eq!(c.term(), 2);
    assert_eq!(c.next_index(2), lag, "re-ship resumes at the acked index");
    c.settle();
    assert!(converged(&c), "n2 caught up from the new leader");

    // The replicated session keeps working across the failover.
    assert!(
        c.check_access_via(2, s, w, claims)?,
        "session survives failover"
    );
    println!("session s{} still authorized through the new leader", {
        use rbac::SessionId;
        let SessionId(raw) = s;
        raw
    });

    // The fenced old leader rejoins as a follower.
    c.restart(0)?;
    c.settle();
    println!(
        "\n== n0 rejoins: recovered {} ops from its own disk, fenced to term {}, converged: {} ==",
        c.node_engine(0).unwrap().op_count(),
        c.node_term(0),
        converged(&c)
    );
    assert_eq!(c.node_term(0), 2, "rejoining node is fenced");
    assert!(converged(&c), "old leader converged as a follower");

    println!("\nall replication expectations held");
    Ok(())
}
