//! Policy change and rule regeneration (§5): "when there is a change in the
//! policy — for example, the shift time of role 'day doctor' is changed
//! from (8 a.m. to 4 p.m.) to (9 a.m. to 5 p.m.) — it can be easily changed
//! in the high level specification and the corresponding rules can be
//! regenerated", instead of hand-editing low-level semantic descriptors.
//!
//! The example changes the shift *while sessions are live* and shows that
//! only the day-doctor rules are rewritten.
//!
//! Run with: `cargo run --example policy_change`

use active_authz::{Civil, Engine, Ts};
use policy::DailyWindow;
use workload::{generate_enterprise, EnterpriseSpec};

fn clock(h: u32, m: u32) -> Ts {
    Civil::new(2000, 1, 5, h, m, 0).to_ts()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size enterprise (100 roles) plus the day-doctor role.
    let mut graph = generate_enterprise(&EnterpriseSpec::sized(100), 7);
    graph.user("dana");
    graph.role("DayDoctor").enabling = Some(DailyWindow {
        start_h: 8,
        start_m: 0,
        end_h: 16,
        end_m: 0,
    });
    graph.assign("dana", "DayDoctor");

    let mut e = Engine::from_policy(&graph, clock(8, 30))?;
    println!(
        "enterprise instantiated: {} roles, {} rules, {} event nodes",
        graph.roles.len(),
        e.pool().len(),
        e.stats().event_nodes
    );

    let dana = e.user_id("dana")?;
    let day = e.role_id("DayDoctor")?;
    let s = e.create_session(dana, &[day])?;
    println!(
        "08:30  dana is on shift (8–16): active = {}",
        e.system().session_roles(s)?.contains(&day)
    );

    // HR moves the shift to 9–17. One line in the high-level spec…
    let mut new = graph.clone();
    new.role("DayDoctor").enabling = Some(DailyWindow {
        start_h: 9,
        start_m: 0,
        end_h: 17,
        end_m: 0,
    });
    let report = e.apply_policy(&new)?;
    println!("\npolicy change applied:");
    println!("  full rebuild:      {}", report.full_rebuild);
    println!("  roles regenerated: {:?}", report.regenerated_roles);
    println!(
        "  rules rewritten:   {} of {}",
        report.rules_rewritten, report.total_rules
    );

    // …and the behaviour follows immediately:
    println!("\n08:30  under the new shift dana is too early:");
    println!(
        "       DayDoctor enabled = {}, dana active = {}",
        e.system().is_enabled(day)?,
        e.system().session_roles(s)?.contains(&day)
    );

    e.advance_to(clock(9, 30))?;
    e.add_active_role(dana, s, day)?;
    println!("09:30  shift opened at 9: dana re-activates: ok");

    e.advance_to(clock(16, 30))?;
    println!(
        "16:30  previously end-of-shift, now still working: active = {}",
        e.system().session_roles(s)?.contains(&day)
    );

    e.advance_to(clock(17, 30))?;
    println!(
        "17:30  new shift end passed: active = {}",
        e.system().session_roles(s)?.contains(&day)
    );

    // Contrast: a structural change (new role) falls back to full rebuild.
    let mut bigger = new.clone();
    bigger.role("NightDoctor");
    let report = e.apply_policy(&bigger)?;
    println!(
        "\nadding a brand-new role forces a full rebuild: {}",
        report.full_rebuild
    );
    Ok(())
}
