//! Active security (§4.3.3): the system detects malicious activity and
//! reacts "without human intervention".
//!
//! Mallory probes the vault role; after 5 denials in a minute an internal
//! security alert fires, and after 12 the activity-control rules are
//! disabled entirely (lockdown) until an administrator re-enables them —
//! the paper's "some critical authorization rules are disabled and the
//! administrators are alerted".
//!
//! Run with: `cargo run --example active_security`

use active_authz::{Engine, Ts};
use sentinel::RuleClass;

const BANK: &str = r#"
    policy "bank" {
      roles Teller, Vault;
      users alice, mallory;
      assign alice -> Teller;
      permission open_vault = open on vault_door;
      permission serve = serve on counter;
      grant open_vault -> Vault;
      grant serve -> Teller;
      active_security "probe"  threshold 5  within 60s actions alert;
      active_security "storm"  threshold 12 within 60s actions alert, disable_activity;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut e = Engine::from_source(BANK, Ts::ZERO)?;
    let alice = e.user_id("alice")?;
    let mallory = e.user_id("mallory")?;
    let teller = e.role_id("Teller")?;
    let vault = e.role_id("Vault")?;
    let serve = e.system().op_by_name("serve")?;
    let counter = e.system().obj_by_name("counter")?;

    let sa = e.create_session(alice, &[teller])?;
    let sm = e.create_session(mallory, &[])?;

    println!(
        "normal operation: alice serves a customer: allowed = {}\n",
        e.check_access(sa, serve, counter)?
    );

    println!("mallory starts probing the Vault role…");
    for attempt in 1..=14 {
        let result = e.add_active_role(mallory, sm, vault);
        let alerts = e.alerts().len();
        println!(
            "  attempt {attempt:2}: {} (alerts so far: {alerts})",
            if result.is_err() {
                "denied"
            } else {
                "granted!?"
            }
        );
    }

    println!("\nalerts raised:");
    for a in e.alerts() {
        println!("  ⚠ {a}");
    }

    println!("\nlockdown in force — even alice is refused now:");
    match e.check_access(sa, serve, counter) {
        Ok(false) => println!("  alice serves a customer: allowed = false"),
        other => println!("  unexpected: {other:?}"),
    }

    println!("\nadministrator reviews the report and re-enables the rules:");
    let n = e.enable_rule_class(RuleClass::ActivityControl);
    println!("  {n} activity-control rules re-enabled");
    println!(
        "  alice serves a customer: allowed = {}",
        e.check_access(sa, serve, counter)?
    );

    println!("\nadministrator report (last entries):");
    let report = e.log().report();
    for line in report
        .lines()
        .rev()
        .take(8)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("  {line}");
    }
    Ok(())
}
