//! Concurrent deployment: many reader threads, one administrator.
//!
//! `SharedEngine` serializes writes through a mutex but answers
//! `checkAccess` grants from a published immutable snapshot — readers
//! scale with cores while OWTE semantics (denials audited, active
//! security fed) are preserved on the locked path.
//!
//! Run: `cargo run --example concurrent`

use owte_core::{Engine, SharedEngine};
use policy::PolicyGraph;
use snoop::Ts;
use std::thread;

fn main() {
    let mut g = PolicyGraph::enterprise_xyz();
    g.user("alice");
    g.user("bob");
    g.assign("alice", "PM");
    g.assign("bob", "AC");

    let engine = SharedEngine::new(Engine::from_policy(&g, Ts::ZERO).unwrap());
    let alice = engine.user_id("alice").unwrap();
    let pm = engine.role_id("PM").unwrap();
    let session = engine.create_session(alice, &[pm]).unwrap();
    let (create, po) = engine.with(|e| {
        (
            e.system().op_by_name("create").unwrap(),
            e.system().obj_by_name("purchase_order").unwrap(),
        )
    });

    // Eight reader threads hammer checkAccess while the main thread plays
    // administrator, deactivating and re-activating the role.
    thread::scope(|scope| {
        for worker in 0..8 {
            let e = engine.clone();
            scope.spawn(move || {
                let mut granted = 0u32;
                for _ in 0..5_000 {
                    if e.check_access(session, create, po).unwrap() {
                        granted += 1;
                    }
                }
                println!("reader {worker}: {granted}/5000 grants");
            });
        }
        for _ in 0..20 {
            engine.drop_active_role(alice, session, pm).unwrap();
            engine.add_active_role(alice, session, pm).unwrap();
        }
    });

    let (fast, slow) = engine.read_stats();
    let snap = engine.snapshot().expect("published");
    println!("\nread path: {fast} lock-free grants, {slow} locked reads");
    println!(
        "snapshot epoch {} (fast path armed: {}), valid until: {:?}",
        snap.epoch(),
        snap.has_fast_path(),
        snap.valid_until()
    );
    // Every denial that happened while the role was dropped went through
    // the locked engine and is in the audit log.
    println!("audited denials: {}", engine.denial_count());
}
