//! Bounded model checking of the durable OWTE stack, end to end:
//!
//! 1. **Exhaustive sweep** — every interleaving of client ops, GTRBAC
//!    timer firings and crash/restart points on the tiny reference
//!    enterprise satisfies every invariant (SoD, cardinality, cascade
//!    bound, no acked-op loss, recovery ≡ prefix replay).
//! 2. **Seeded bugs** — an engine built from a doctored policy (SoD sets
//!    stripped) and a journal that acknowledges before syncing are both
//!    caught, each reported as a minimal replayable schedule.
//! 3. **Seeded-random sweep** — the CI strategy on a generated medium
//!    enterprise/workload, too big to exhaust.
//!
//! Exits nonzero if any honest sweep finds a violation or a seeded bug
//! goes unnoticed, so CI can run it as a gate.
//!
//! Run with: `cargo run --release --example model_check`
//! (`OWTE_MC_SEED=n` reseeds the random sweep.)

use owte_core::DurableConfig;
use sim::{
    check, explore, strip_sod, tiny_enterprise, tiny_ops, Budget, CheckConfig, Invariants, Outcome,
    Strategy, World,
};
use workload::{EnterpriseSpec, TraceSpec};

fn main() {
    let mut failed = false;

    // --- 1. Exhaustive sweep over the tiny enterprise. -----------------
    let graph = tiny_enterprise();
    let config = DurableConfig {
        snapshot_every: Some(4),
        ..DurableConfig::default()
    };
    let world = World::new(&graph, tiny_ops(), config).expect("tiny policy instantiates");
    let invariants = Invariants::from_reference(&graph);
    let budget = Budget {
        max_steps: 10,
        max_crashes: 1,
        max_states: 2_000_000,
        ..Budget::default()
    };
    println!("== exhaustive sweep: tiny enterprise, 1 crash budget ==");
    match explore(
        &world,
        &invariants,
        Strategy::Exhaustive { reduction: true },
        budget.clone(),
    ) {
        Outcome::Clean(stats) => println!(
            "CLEAN — {} states explored, {} fingerprint-pruned, {} stutter-pruned, complete={}",
            stats.explored, stats.pruned_fingerprint, stats.pruned_stutter, stats.complete
        ),
        Outcome::Violation {
            violation,
            schedule,
            stats,
        } => {
            failed = true;
            println!(
                "VIOLATION after {} states: {violation}\nminimal schedule:\n{}",
                stats.explored,
                schedule.script(&world)
            );
        }
    }

    // --- 2a. Seeded bug: SoD sets stripped from the engine's policy. ---
    println!("\n== seeded bug: engine built with SoD sets stripped ==");
    let doctored = strip_sod(tiny_enterprise());
    let world = World::new(&doctored, tiny_ops(), DurableConfig::default())
        .expect("doctored policy instantiates");
    let no_crash = Budget {
        max_crashes: 0,
        ..budget.clone()
    };
    match explore(
        &world,
        &invariants,
        Strategy::Exhaustive { reduction: true },
        no_crash,
    ) {
        Outcome::Violation {
            violation,
            schedule,
            stats,
        } => println!(
            "caught after {} states: {violation}\nminimal schedule:\n{}",
            stats.explored,
            schedule.script(&world)
        ),
        Outcome::Clean(_) => {
            failed = true;
            println!("MISSED: the under-enforcing engine passed the reference invariants");
        }
    }

    // --- 2b. Seeded bug: acknowledge journal appends before syncing. ---
    println!("== seeded bug: sync_on_append disabled ==");
    let lossy = DurableConfig {
        sync_on_append: false,
        snapshot_every: None,
        ..DurableConfig::default()
    };
    let world = World::new(&graph, tiny_ops(), lossy).expect("tiny policy instantiates");
    match explore(
        &world,
        &invariants,
        Strategy::Exhaustive { reduction: true },
        budget,
    ) {
        Outcome::Violation {
            violation,
            schedule,
            stats,
        } => println!(
            "caught after {} states: {violation}\nminimal schedule:\n{}",
            stats.explored,
            schedule.script(&world)
        ),
        Outcome::Clean(_) => {
            failed = true;
            println!("MISSED: unsynced acknowledgements passed the durability invariants");
        }
    }

    // --- 3. Seeded-random sweep on a generated medium enterprise. ------
    let seed = std::env::var("OWTE_MC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xA11CE);
    println!("== seeded-random sweep: generated medium enterprise (seed {seed}) ==");
    let report = check(&CheckConfig {
        enterprise: EnterpriseSpec::sized(10),
        trace: TraceSpec {
            steps: 40,
            users: 20,
            roles: 10,
            objects: 20,
            w_context: 5,
            ..TraceSpec::default()
        },
        ent_seed: seed,
        trace_seed: seed ^ 0x5EED,
        durable: DurableConfig {
            snapshot_every: Some(8),
            ..DurableConfig::default()
        },
        strategy: Strategy::Random { seed },
        budget: Budget {
            max_steps: 24,
            max_crashes: 2,
            max_schedules: 128,
            ..Budget::default()
        },
    });
    println!("{report}");
    failed |= !report.is_clean();

    if failed {
        std::process::exit(1);
    }
}
